//! Stock firmware: the collective algorithms of Table 1.
//!
//! | Collective | Eager          | Rendezvous                      |
//! |------------|----------------|---------------------------------|
//! | Bcast      | One-to-all     | One-to-all / recursive doubling |
//! | Reduce     | Ring           | All-to-one / binomial tree      |
//! | Gather     | Ring           | All-to-one / binomial tree      |
//! | All-to-all | Linear         | Linear                          |
//!
//! plus send/recv, scatter, allgather (ring), allreduce (reduce+bcast),
//! reduce-scatter (ring) and barrier. "Binary tree" collectives use the
//! binomial shape (contiguous vrank subtrees), the standard realization of
//! tree reduce/gather in MPI implementations.
//!
//! Every program is a [`CollectiveProgram`]; the uC executes whatever is
//! loaded in its [`FirmwareTable`], so all of these can be replaced at
//! runtime — the paper's "collectives without re-synthesis" property.

use std::sync::Arc;

use crate::command::{CollOp, DataLoc};
use crate::config::Algorithm;
use crate::firmware::{CollectiveProgram, FirmwareTable, FwEnv, Place, Sched};

/// Tag namespace stride separating phases of composed collectives.
const PHASE_TAG: u64 = 1 << 24;

fn src_place(env: &FwEnv) -> Place {
    match env.src {
        DataLoc::Stream => Place::Stream,
        _ => Place::src(0),
    }
}

fn dst_place(env: &FwEnv) -> Place {
    match env.dst {
        DataLoc::Stream => Place::Stream,
        _ => Place::dst(0),
    }
}

fn dst_at(env: &FwEnv, off: u64) -> Place {
    match env.dst {
        DataLoc::Stream => Place::Stream,
        _ => Place::dst(off),
    }
}

/// Point-to-point send to `env.root`.
pub struct SendProgram;

impl CollectiveProgram for SendProgram {
    fn name(&self) -> &str {
        "send"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        if env.bytes == 0 {
            return;
        }
        s.send(env.root, src_place(env), env.bytes, 0);
    }

    fn planning_cycles(&self, _env: &FwEnv) -> u64 {
        // Point-to-point fast path: no pattern computation in firmware.
        24
    }
}

/// Point-to-point receive from `env.root`.
pub struct RecvProgram;

impl CollectiveProgram for RecvProgram {
    fn name(&self) -> &str {
        "recv"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        if env.bytes == 0 {
            return;
        }
        s.recv(env.root, dst_place(env), env.bytes, 0);
    }

    fn planning_cycles(&self, _env: &FwEnv) -> u64 {
        24
    }
}

/// Broadcast over the *destination* buffer (MPI bcast semantics: one buffer,
/// root provides it, everyone else receives it).
pub struct BcastProgram;

impl CollectiveProgram for BcastProgram {
    fn name(&self) -> &str {
        "bcast"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        let len = env.bytes;
        if len == 0 || env.size == 1 {
            return;
        }
        match env.algorithm {
            Algorithm::RecursiveDoubling => binomial_bcast(env, s, len),
            _ => {
                // One-to-all.
                if env.rank == env.root {
                    for v in 1..env.size {
                        s.send(env.from_vrank(v), dst_place(env), len, v as u64);
                    }
                } else {
                    s.recv(env.root, dst_place(env), len, env.vrank() as u64);
                }
            }
        }
    }
}

/// Binomial-tree broadcast: recv from the parent, then fan out to
/// progressively closer children (the "recursive doubling" row of Table 1).
fn binomial_bcast(env: &FwEnv, s: &mut Sched, len: u64) {
    let vrank = env.vrank();
    let size = env.size;
    let mut mask = 1u32;
    while mask < size {
        if vrank & mask != 0 {
            let parent = env.from_vrank(vrank - mask);
            s.recv(parent, dst_place(env), len, u64::from(mask));
            // The received data feeds the fan-out below.
            s.wait_all();
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < size {
            let child = env.from_vrank(vrank + mask);
            s.send(child, dst_place(env), len, u64::from(mask));
        }
        mask >>= 1;
    }
}

/// Reduce to `env.root`.
pub struct ReduceProgram;

impl CollectiveProgram for ReduceProgram {
    fn name(&self) -> &str {
        "reduce"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        let len = env.bytes;
        if len == 0 {
            return;
        }
        if env.size == 1 {
            s.copy(src_place(env), dst_place(env), len);
            return;
        }
        match env.algorithm {
            Algorithm::Ring => ring_reduce(env, s, len),
            Algorithm::BinaryTree => binomial_reduce(env, s, len),
            _ => all_to_one_reduce(env, s, len),
        }
    }
}

/// Ring reduce: partials accumulate along the chain v1 → v2 → … → v0(root).
fn ring_reduce(env: &FwEnv, s: &mut Sched, len: u64) {
    let v = env.vrank();
    let size = env.size;
    let next = env.from_vrank((v + 1) % size);
    if v == 1 {
        s.send(next, src_place(env), len, 0);
    } else if v == 0 {
        let prev = env.from_vrank(size - 1);
        s.recv_combine(prev, src_place(env), dst_place(env), len, 0);
    } else {
        let prev = env.from_vrank(v - 1);
        s.recv_combine_send(prev, src_place(env), next, len, 0, 0);
    }
}

/// All-to-one reduce: every rank sends to the root, which folds serially.
/// Simple and latency-optimal for small messages; in-cast-bound for large
/// ones (Fig. 12's motivation for switching to the tree).
fn all_to_one_reduce(env: &FwEnv, s: &mut Sched, len: u64) {
    let v = env.vrank();
    if v != 0 {
        s.send(env.root, src_place(env), len, u64::from(v));
        return;
    }
    if env.eager {
        // Eager arrivals buffer in the RBM concurrently; only the folds
        // serialize (accumulator dependency).
        let mut acc = src_place(env);
        for peer_v in 1..env.size {
            let peer = env.from_vrank(peer_v);
            s.recv_combine(peer, acc, dst_place(env), len, u64::from(peer_v));
            s.wait_all();
            acc = dst_place(env);
        }
        return;
    }
    // Rendezvous: post every landing zone up front so all peers WRITE in
    // parallel, then fold as the dones arrive.
    let landings: Vec<Place> = (1..env.size).map(|_| s.alloc_scratch(len)).collect();
    let recvs: Vec<(u32, Place, u64, u64)> = (1..env.size)
        .map(|peer_v| {
            (
                env.from_vrank(peer_v),
                landings[(peer_v - 1) as usize],
                len,
                u64::from(peer_v),
            )
        })
        .collect();
    // Inits only; the folds below wait for each done in turn.
    let inits: Vec<_> = recvs.clone();
    s.post_inits(&inits);
    let mut acc = src_place(env);
    for peer_v in 1..env.size {
        let peer = env.from_vrank(peer_v);
        s.wait_done(peer, u64::from(peer_v));
        s.combine(landings[(peer_v - 1) as usize], acc, dst_place(env), len);
        s.wait_all();
        acc = dst_place(env);
    }
}

/// Binomial-tree reduce: subtree partials climb toward the root.
fn binomial_reduce(env: &FwEnv, s: &mut Sched, len: u64) {
    let vrank = env.vrank();
    let size = env.size;
    let is_root = vrank == 0;
    let mut acc = src_place(env);
    let scratch_acc = if is_root {
        dst_place(env)
    } else {
        s.alloc_scratch(len)
    };
    // Enumerate children (ascending mask) and the parent, if any.
    let mut children: Vec<(u32, u32)> = Vec::new(); // (rank, mask)
    let mut parent: Option<(u32, u32)> = None;
    let mut mask = 1u32;
    while mask < size {
        if vrank & mask == 0 {
            if vrank + mask < size {
                children.push((env.from_vrank(vrank + mask), mask));
            }
            mask <<= 1;
        } else {
            parent = Some((env.from_vrank(vrank - mask), mask));
            break;
        }
    }
    if env.eager {
        for &(child, mask) in &children {
            s.recv_combine(child, acc, scratch_acc, len, u64::from(mask));
            s.wait_all();
            acc = scratch_acc;
        }
    } else {
        // Rendezvous: all child landing zones announced up front so the
        // subtree partials transfer in parallel; folds follow the dones.
        let landings: Vec<Place> = children.iter().map(|_| s.alloc_scratch(len)).collect();
        let recvs: Vec<(u32, Place, u64, u64)> = children
            .iter()
            .zip(&landings)
            .map(|(&(child, mask), &pl)| (child, pl, len, u64::from(mask)))
            .collect();
        s.post_inits(&recvs);
        for (&(child, mask), &landing) in children.iter().zip(&landings) {
            s.wait_done(child, u64::from(mask));
            s.combine(landing, acc, scratch_acc, len);
            s.wait_all();
            acc = scratch_acc;
        }
    }
    if let Some((parent, mask)) = parent {
        s.send(parent, acc, len, u64::from(mask));
        return;
    }
    if is_root && acc == src_place(env) {
        // Degenerate case (size == 1 handled by caller; unreachable here).
        s.copy(acc, dst_place(env), len);
    }
}

/// Gather to `env.root`: rank `r`'s block lands at `dst + r*bytes`.
pub struct GatherProgram;

impl CollectiveProgram for GatherProgram {
    fn name(&self) -> &str {
        "gather"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        let b = env.bytes;
        if b == 0 {
            return;
        }
        if env.size == 1 {
            s.copy(src_place(env), dst_at(env, 0), b);
            return;
        }
        match env.algorithm {
            Algorithm::Ring => ring_gather(env, s, b),
            Algorithm::BinaryTree => binomial_gather(env, s, b),
            _ => {
                // All-to-one.
                let v = env.vrank();
                if v != 0 {
                    s.send(env.root, src_place(env), b, u64::from(v));
                } else {
                    let recvs: Vec<(u32, crate::firmware::Place, u64, u64)> = (1..env.size)
                        .map(|peer_v| {
                            let peer = env.from_vrank(peer_v);
                            (peer, dst_at(env, u64::from(peer) * b), b, u64::from(peer_v))
                        })
                        .collect();
                    s.recv_many(&recvs);
                    s.copy(src_place(env), dst_at(env, u64::from(env.rank) * b), b);
                }
            }
        }
    }
}

/// Ring gather: blocks accumulate along the chain toward the root.
fn ring_gather(env: &FwEnv, s: &mut Sched, b: u64) {
    let v = env.vrank();
    let size = env.size;
    if v == 1 {
        s.send(env.from_vrank(2 % size), src_place(env), b, 0);
    } else if v == 0 {
        // Root: receive the chain's (size-1) blocks, then scatter them into
        // their absolute positions.
        let landing = s.alloc_scratch(b * u64::from(size - 1));
        let Place::Buf(lbuf, loff) = landing else {
            unreachable!()
        };
        s.recv(
            env.from_vrank(size - 1),
            Place::Buf(lbuf, loff),
            b * u64::from(size - 1),
            0,
        );
        s.wait_all();
        for chain_idx in 0..size - 1 {
            // Block at chain position i belongs to vrank i+1.
            let owner = env.from_vrank(chain_idx + 1);
            s.copy(
                Place::Buf(lbuf, loff + u64::from(chain_idx) * b),
                dst_at(env, u64::from(owner) * b),
                b,
            );
        }
        s.copy(src_place(env), dst_at(env, u64::from(env.rank) * b), b);
    } else {
        // Middle of the chain: prepend received blocks, append own.
        let landing = s.alloc_scratch(b * u64::from(v));
        let Place::Buf(lbuf, loff) = landing else {
            unreachable!()
        };
        s.recv(
            env.from_vrank(v - 1),
            Place::Buf(lbuf, loff),
            b * u64::from(v - 1),
            0,
        );
        s.copy(
            src_place(env),
            Place::Buf(lbuf, loff + u64::from(v - 1) * b),
            b,
        );
        s.wait_all();
        s.send(
            env.from_vrank((v + 1) % size),
            Place::Buf(lbuf, loff),
            b * u64::from(v),
            0,
        );
    }
}

/// Binomial gather: contiguous vrank-block subtrees merge upward.
fn binomial_gather(env: &FwEnv, s: &mut Sched, b: u64) {
    let vrank = env.vrank();
    let size = env.size;
    // Scratch holds blocks for vranks [vrank, vrank + subtree).
    let max_subtree = {
        // Largest power of two not exceeding what this node can own.
        let mut m = 1u32;
        while vrank & m == 0 && m < size {
            m <<= 1;
        }
        m.min(size - vrank)
    };
    let multi = max_subtree > 1;
    let stage = if multi {
        s.alloc_scratch(b * u64::from(max_subtree))
    } else {
        src_place(env)
    };
    let Place::Buf(sbuf, soff) = stage else {
        unreachable!()
    };
    if multi {
        s.copy(src_place(env), Place::Buf(sbuf, soff), b);
    }
    let mut mask = 1u32;
    let mut subtree = 1u32;
    let mut child_recvs: Vec<(u32, Place, u64, u64)> = Vec::new();
    let mut send_up: Option<(u32, u32)> = None;
    while mask < size {
        if vrank & mask == 0 {
            if vrank + mask < size {
                let child = env.from_vrank(vrank + mask);
                let child_sub = mask.min(size - (vrank + mask));
                child_recvs.push((
                    child,
                    Place::Buf(sbuf, soff + u64::from(mask) * b),
                    b * u64::from(child_sub),
                    u64::from(mask),
                ));
                subtree += child_sub;
            }
            mask <<= 1;
        } else {
            send_up = Some((env.from_vrank(vrank - mask), mask));
            break;
        }
    }
    // All child landing zones announced together: subtrees arrive in
    // parallel where the tree allows.
    s.recv_many(&child_recvs);
    if let Some((parent, mask)) = send_up {
        s.wait_all();
        s.send(
            parent,
            Place::Buf(sbuf, soff),
            b * u64::from(subtree),
            u64::from(mask),
        );
        return;
    }
    // Root: place every block at its absolute position.
    debug_assert_eq!(subtree, size);
    s.wait_all();
    for v in 0..size {
        let owner = env.from_vrank(v);
        s.copy(
            Place::Buf(sbuf, soff + u64::from(v) * b),
            dst_at(env, u64::from(owner) * b),
            b,
        );
    }
}

/// Scatter from `env.root` (linear).
pub struct ScatterProgram;

impl CollectiveProgram for ScatterProgram {
    fn name(&self) -> &str {
        "scatter"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        let b = env.bytes;
        if b == 0 {
            return;
        }
        if env.size == 1 {
            s.copy(src_place(env), dst_place(env), b);
            return;
        }
        if env.rank == env.root {
            for v in 1..env.size {
                let peer = env.from_vrank(v);
                s.send(peer, Place::src(u64::from(peer) * b), b, u64::from(v));
            }
            s.copy(Place::src(u64::from(env.rank) * b), dst_place(env), b);
        } else {
            s.recv(env.root, dst_place(env), b, u64::from(env.vrank()));
        }
    }
}

/// Ring allgather: `size-1` pipelined block rotations.
pub struct AllGatherProgram;

impl CollectiveProgram for AllGatherProgram {
    fn name(&self) -> &str {
        "allgather"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        let b = env.bytes;
        if b == 0 {
            return;
        }
        let size = env.size;
        let rank = env.rank;
        s.copy(src_place(env), dst_at(env, u64::from(rank) * b), b);
        if size == 1 {
            return;
        }
        s.wait_all();
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        for step in 0..size - 1 {
            let send_block = (rank + size - step) % size;
            let recv_block = (rank + 2 * size - step - 1) % size;
            s.send(
                next,
                dst_at(env, u64::from(send_block) * b),
                b,
                u64::from(step),
            );
            s.recv(
                prev,
                dst_at(env, u64::from(recv_block) * b),
                b,
                u64::from(step),
            );
            s.wait_all();
        }
    }
}

/// All-reduce. Two compositions, selected by the runtime algorithm:
///
/// - default: reduce to rank 0 then broadcast (latency-oriented);
/// - [`Algorithm::Ring`]: ring reduce-scatter followed by ring allgather —
///   the bandwidth-optimal composition (2·(p-1)/p · bytes per link), the
///   kind of finer-grained tuning §4.4.4 earmarks as future firmware work.
pub struct AllReduceProgram;

impl CollectiveProgram for AllReduceProgram {
    fn name(&self) -> &str {
        "allreduce"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        if env.bytes == 0 {
            return;
        }
        if env.algorithm == Algorithm::Ring && env.size > 1 && !matches!(env.src, DataLoc::Stream) {
            ring_allreduce(env, s);
            return;
        }
        let mut sub = env.clone();
        sub.root = 0;
        s.set_tag_namespace(PHASE_TAG);
        ReduceProgram.build(&sub, s);
        s.wait_all();
        s.set_tag_namespace(2 * PHASE_TAG);
        BcastProgram.build(&sub, s);
        s.set_tag_namespace(0);
    }
}

/// Ring allreduce over the full vector: the vector is cut into `size`
/// blocks; `size-1` reduce-scatter rotations leave each rank with one
/// fully-reduced block, and `size-1` allgather rotations circulate the
/// reduced blocks. Works for any vector length (blocks may be uneven; the
/// final partial block is padded into the last range).
fn ring_allreduce(env: &FwEnv, s: &mut Sched) {
    let size = env.size;
    let rank = env.rank;
    let total = env.bytes;
    // Block boundaries: even split aligned to whole elements (the plugin
    // combines element-wise), remainder on the last block.
    let dsize = env.dtype.size() as u64;
    let base = (total / u64::from(size)) / dsize * dsize;
    let bounds = |blk: u32| -> (u64, u64) {
        let start = u64::from(blk) * base;
        let end = if blk == size - 1 { total } else { start + base };
        (start, end)
    };
    if base == 0 {
        // Degenerate tiny vectors: fall back to reduce+bcast semantics by
        // funnelling through rank 0 directly.
        let mut sub = env.clone();
        sub.root = 0;
        s.set_tag_namespace(PHASE_TAG);
        ReduceProgram.build(&sub, s);
        s.wait_all();
        s.set_tag_namespace(2 * PHASE_TAG);
        BcastProgram.build(&sub, s);
        s.set_tag_namespace(0);
        return;
    }
    // Work in dst: copy src there once; all rotations update dst in place.
    s.copy(src_place(env), dst_place(env), total);
    s.wait_all();
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    let at = |blk: u32| -> (Place, u64) {
        let (start, end) = bounds(blk);
        (Place::dst(start), end - start)
    };
    s.set_tag_namespace(PHASE_TAG);
    // Phase 1: reduce-scatter rotations.
    for step in 0..size - 1 {
        let send_block = (rank + 2 * size - step - 1) % size;
        let recv_block = (rank + 2 * size - step - 2) % size;
        let (spl, slen) = at(send_block);
        let (rpl, rlen) = at(recv_block);
        s.send(next, spl, slen, u64::from(step));
        s.recv_combine(prev, rpl, rpl, rlen, u64::from(step));
        s.wait_all();
    }
    s.set_tag_namespace(2 * PHASE_TAG);
    // Phase 2: allgather rotations (each rank's fully-reduced block is its
    // own after phase 1).
    for step in 0..size - 1 {
        let send_block = (rank + size - step) % size;
        let recv_block = (rank + 2 * size - step - 1) % size;
        let (spl, slen) = at(send_block);
        let (rpl, rlen) = at(recv_block);
        s.send(next, spl, slen, u64::from(step));
        s.recv(prev, rpl, rlen, u64::from(step));
        s.wait_all();
    }
    s.set_tag_namespace(0);
}

/// Ring reduce-scatter: each rank ends with its fully-reduced block.
pub struct ReduceScatterProgram;

impl CollectiveProgram for ReduceScatterProgram {
    fn name(&self) -> &str {
        "reduce_scatter"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        let b = env.bytes;
        if b == 0 {
            return;
        }
        let size = env.size;
        let rank = env.rank;
        if size == 1 {
            s.copy(src_place(env), dst_place(env), b);
            return;
        }
        // Working vector in scratch.
        let work = s.alloc_scratch(b * u64::from(size));
        let Place::Buf(wbuf, woff) = work else {
            unreachable!()
        };
        let at = |blk: u32| Place::Buf(wbuf, woff + u64::from(blk) * b);
        s.copy(src_place(env), Place::Buf(wbuf, woff), b * u64::from(size));
        s.wait_all();
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        for step in 0..size - 1 {
            let send_block = (rank + 2 * size - step - 1) % size;
            let recv_block = (rank + 2 * size - step - 2) % size;
            s.send(next, at(send_block), b, u64::from(step));
            s.recv_combine(prev, at(recv_block), at(recv_block), b, u64::from(step));
            s.wait_all();
        }
        // After size-1 rotations this rank's own block is fully reduced.
        s.copy(at(rank), dst_place(env), b);
    }
}

/// Linear all-to-all: direct pairwise exchange (Table 1's only row without
/// algorithmic variants).
pub struct AllToAllProgram;

impl CollectiveProgram for AllToAllProgram {
    fn name(&self) -> &str {
        "alltoall"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        let b = env.bytes;
        if b == 0 {
            return;
        }
        let rank = env.rank;
        if env.eager {
            for peer in 0..env.size {
                if peer == rank {
                    s.copy(
                        Place::src(u64::from(rank) * b),
                        dst_at(env, u64::from(rank) * b),
                        b,
                    );
                } else {
                    s.send(peer, Place::src(u64::from(peer) * b), b, 0);
                    s.recv(peer, dst_at(env, u64::from(peer) * b), b, 0);
                }
            }
            return;
        }
        // Rendezvous: announce every landing zone first so all peers WRITE
        // concurrently, then issue our sends, then collect the dones.
        let recvs: Vec<(u32, Place, u64, u64)> = (0..env.size)
            .filter(|&p| p != rank)
            .map(|p| (p, dst_at(env, u64::from(p) * b), b, 0))
            .collect();
        s.post_inits(&recvs);
        for peer in 0..env.size {
            if peer == rank {
                s.copy(
                    Place::src(u64::from(rank) * b),
                    dst_at(env, u64::from(rank) * b),
                    b,
                );
            } else {
                s.send(peer, Place::src(u64::from(peer) * b), b, 0);
            }
        }
        for peer in 0..env.size {
            if peer != rank {
                s.wait_done(peer, 0);
            }
        }
    }
}

/// Barrier: 1-byte all-to-one followed by 1-byte one-to-all, rooted at 0.
pub struct BarrierProgram;

impl CollectiveProgram for BarrierProgram {
    fn name(&self) -> &str {
        "barrier"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        if env.size == 1 {
            return;
        }
        let token = s.alloc_scratch(1);
        if env.rank == 0 {
            for peer in 1..env.size {
                let landing = s.alloc_scratch(1);
                s.recv(peer, landing, 1, u64::from(peer));
            }
            s.wait_all();
            for peer in 1..env.size {
                s.send(peer, token, 1, PHASE_TAG + u64::from(peer));
            }
        } else {
            s.send(0, token, 1, u64::from(env.rank));
            let landing = s.alloc_scratch(1);
            s.recv(0, landing, 1, PHASE_TAG + u64::from(env.rank));
        }
    }
}

/// No-op: measures invocation latency (Fig. 8).
pub struct NopProgram;

impl CollectiveProgram for NopProgram {
    fn name(&self) -> &str {
        "nop"
    }

    fn build(&self, _env: &FwEnv, _s: &mut Sched) {}

    fn planning_cycles(&self, _env: &FwEnv) -> u64 {
        0
    }
}

/// Loads the stock firmware into `table`.
pub fn register_stock(table: &mut FirmwareTable) {
    table.load(CollOp::Nop, Arc::new(NopProgram));
    table.load(CollOp::Send, Arc::new(SendProgram));
    table.load(CollOp::Recv, Arc::new(RecvProgram));
    table.load(CollOp::Bcast, Arc::new(BcastProgram));
    table.load(CollOp::Reduce, Arc::new(ReduceProgram));
    table.load(CollOp::Gather, Arc::new(GatherProgram));
    table.load(CollOp::Scatter, Arc::new(ScatterProgram));
    table.load(CollOp::AllGather, Arc::new(AllGatherProgram));
    table.load(CollOp::AllReduce, Arc::new(AllReduceProgram));
    table.load(CollOp::ReduceScatter, Arc::new(ReduceScatterProgram));
    table.load(CollOp::AllToAll, Arc::new(AllToAllProgram));
    table.load(CollOp::Barrier, Arc::new(BarrierProgram));
}
