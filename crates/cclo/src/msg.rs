//! The ACCL+ lightweight message protocol (paper §4.4.2).
//!
//! Every CCLO-level message carries a fixed-size *signature* ahead of the
//! payload: rank ids, message type, length, tag and a sequence number. The
//! Tx system packetizes it, the Rx system parses it, and the RxBuf manager
//! uses it to reassemble and match eager messages. Rendezvous control
//! messages (`RndzvInit`/`RndzvDone`) are signature-only and additionally
//! carry the receiver's resolved buffer address.

use bytes::Bytes;

/// Size of the wire signature, in bytes (one 64 B datapath beat).
pub const SIGNATURE_BYTES: usize = 64;

/// Magic value guarding against framing bugs.
const MAGIC: u32 = 0xACC1_06E5;

/// CCLO message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    /// Eager data message: payload follows the signature.
    Eager = 0,
    /// Rendezvous init: receiver announces its result buffer address.
    RndzvInit = 1,
    /// Rendezvous done: sender announces WRITE completion.
    RndzvDone = 2,
}

impl MsgType {
    fn from_u8(v: u8) -> MsgType {
        match v {
            0 => MsgType::Eager,
            1 => MsgType::RndzvInit,
            2 => MsgType::RndzvDone,
            other => panic!("corrupt message signature: type {other}"),
        }
    }
}

/// The parsed message signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSignature {
    /// Sending rank within the communicator.
    pub src_rank: u32,
    /// Destination rank within the communicator.
    pub dst_rank: u32,
    /// Message type.
    pub mtype: MsgType,
    /// Payload length in bytes (excluding the signature itself).
    pub payload_len: u64,
    /// Message tag (collective-internal matching key).
    pub tag: u64,
    /// Per-(src,dst) sequence number maintained by the Tx system.
    pub seq: u64,
    /// Rendezvous buffer address (init) — zero otherwise.
    pub addr: u64,
    /// Communicator id.
    pub comm: u32,
}

impl MsgSignature {
    /// Serializes the signature into its 64-byte wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = [0u8; SIGNATURE_BYTES];
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        buf[4] = self.mtype as u8;
        buf[8..12].copy_from_slice(&self.src_rank.to_le_bytes());
        buf[12..16].copy_from_slice(&self.dst_rank.to_le_bytes());
        buf[16..24].copy_from_slice(&self.payload_len.to_le_bytes());
        buf[24..32].copy_from_slice(&self.tag.to_le_bytes());
        buf[32..40].copy_from_slice(&self.seq.to_le_bytes());
        buf[40..48].copy_from_slice(&self.addr.to_le_bytes());
        buf[48..52].copy_from_slice(&self.comm.to_le_bytes());
        Bytes::copy_from_slice(&buf)
    }

    /// Parses a 64-byte wire signature.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is too short or the magic does not match —
    /// both indicate framing bugs, which must fail loudly in simulation.
    pub fn decode(buf: &[u8]) -> MsgSignature {
        assert!(
            buf.len() >= SIGNATURE_BYTES,
            "signature needs {SIGNATURE_BYTES} bytes, got {}",
            buf.len()
        );
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        assert_eq!(magic, MAGIC, "corrupt message signature (bad magic)");
        MsgSignature {
            mtype: MsgType::from_u8(buf[4]),
            src_rank: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            dst_rank: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            payload_len: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            tag: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
            seq: u64::from_le_bytes(buf[32..40].try_into().unwrap()),
            addr: u64::from_le_bytes(buf[40..48].try_into().unwrap()),
            comm: u32::from_le_bytes(buf[48..52].try_into().unwrap()),
        }
    }
}

/// Element datatypes supported by the streaming plugins (Listing 1's
/// `dataType` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Unsigned byte.
    U8,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// IEEE 754 single precision.
    F32,
    /// IEEE 754 double precision.
    F64,
    /// Q16.16 fixed point (the DLRM use case computes in 32-bit fixed point).
    Fx32,
}

impl DType {
    /// Element size in bytes.
    pub const fn size(self) -> usize {
        match self {
            DType::U8 => 1,
            DType::I32 | DType::F32 | DType::Fx32 => 4,
            DType::I64 | DType::F64 => 8,
        }
    }
}

/// Reduction functions implementable by the binary streaming plugin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceFn {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise product.
    Prod,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> MsgSignature {
        MsgSignature {
            src_rank: 3,
            dst_rank: 5,
            mtype: MsgType::Eager,
            payload_len: 123_456,
            tag: 0xdead_beef,
            seq: 42,
            addr: 0,
            comm: 1,
        }
    }

    #[test]
    fn signature_roundtrips() {
        let s = sig();
        let wire = s.encode();
        assert_eq!(wire.len(), SIGNATURE_BYTES);
        assert_eq!(MsgSignature::decode(&wire), s);
    }

    #[test]
    fn rndzv_init_carries_address() {
        let s = MsgSignature {
            mtype: MsgType::RndzvInit,
            addr: 0x1234_5678_9abc,
            ..sig()
        };
        let back = MsgSignature::decode(&s.encode());
        assert_eq!(back.mtype, MsgType::RndzvInit);
        assert_eq!(back.addr, 0x1234_5678_9abc);
    }

    #[test]
    #[should_panic(expected = "bad magic")]
    fn garbage_is_rejected() {
        MsgSignature::decode(&[0u8; SIGNATURE_BYTES]);
    }

    #[test]
    #[should_panic(expected = "needs 64 bytes")]
    fn short_buffer_is_rejected() {
        MsgSignature::decode(&[0u8; 10]);
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::U8.size(), 1);
        assert_eq!(DType::I32.size(), 4);
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::Fx32.size(), 4);
        assert_eq!(DType::I64.size(), 8);
        assert_eq!(DType::F64.size(), 8);
    }
}
