//! CCLO engine configuration: clocking, control-plane costs, buffer pools,
//! communicators, and runtime-tunable collective algorithm selection.

use accl_net::NodeAddr;
use accl_poe::SessionId;
use accl_sim::time::Dur;
use serde::{Deserialize, Serialize};

/// Which algorithm a collective uses (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Root sends to every rank directly (bcast/scatter), or every rank
    /// sends to the root (gather/reduce "all-to-one").
    OneToAll,
    /// Recursive doubling: log2(p) rounds of pairwise exchanges.
    RecursiveDoubling,
    /// Ring pass around the communicator.
    Ring,
    /// Binary tree rooted at the collective's root.
    BinaryTree,
    /// Direct pairwise exchange (all-to-all "linear").
    Linear,
}

/// Runtime-tunable algorithm selection thresholds (paper §4.4.4: "tuning of
/// the algorithms ... can be done at runtime by setting configuration
/// parameters to the CCLO engine").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AlgoConfig {
    /// Messages at or below this size use the eager protocol when `Auto`.
    pub eager_max_bytes: u64,
    /// Bcast switches from one-to-all to recursive doubling at this rank
    /// count (rendezvous only).
    pub bcast_recursive_min_ranks: u32,
    /// Reduce/gather switch from all-to-one to a binary tree above this
    /// message size (rendezvous; avoids root in-cast).
    pub tree_min_bytes: u64,
    /// All-reduce switches to the bandwidth-optimal ring composition
    /// (reduce-scatter + allgather) at and above this size.
    pub allreduce_ring_min_bytes: u64,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        AlgoConfig {
            eager_max_bytes: 16 * 1024,
            bcast_recursive_min_ranks: 5,
            tree_min_bytes: 64 * 1024,
            allreduce_ring_min_bytes: 256 * 1024,
        }
    }
}

impl AlgoConfig {
    /// Algorithm for a broadcast of `bytes` over `ranks` ranks.
    pub fn bcast(&self, ranks: u32, rendezvous: bool) -> Algorithm {
        if rendezvous && ranks >= self.bcast_recursive_min_ranks {
            Algorithm::RecursiveDoubling
        } else {
            Algorithm::OneToAll
        }
    }

    /// Algorithm for reduce/gather of `bytes` (Table 1: eager→ring;
    /// rendezvous→all-to-one below the tree threshold, binary tree above).
    pub fn reduce_like(&self, bytes: u64, rendezvous: bool) -> Algorithm {
        if !rendezvous {
            Algorithm::Ring
        } else if bytes > self.tree_min_bytes {
            Algorithm::BinaryTree
        } else {
            Algorithm::OneToAll
        }
    }

    /// Algorithm for an all-reduce of `bytes`: the ring composition above
    /// its threshold, otherwise the reduce+bcast composition using
    /// [`AlgoConfig::reduce_like`]'s choice.
    pub fn allreduce(&self, bytes: u64, advanced: bool) -> Algorithm {
        if bytes >= self.allreduce_ring_min_bytes {
            Algorithm::Ring
        } else {
            self.reduce_like(bytes, advanced)
        }
    }

    /// Whether a message of `bytes` should go eager under `Auto`, given the
    /// transport supports rendezvous at all.
    pub fn pick_eager(&self, bytes: u64, rendezvous_available: bool) -> bool {
        !rendezvous_available || bytes <= self.eager_max_bytes
    }
}

/// Legacy-ACCL emulation (the Fig. 13 baseline): the predecessor engine ran
/// its micro-controller at a lower clock and performed packet reassembly in
/// firmware, serializing per-packet work through the uC.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LegacyUcConfig {
    /// Legacy uC clock, MHz (ACCL's MicroBlaze ran around 100 MHz).
    pub clock_mhz: f64,
    /// uC cycles spent per received packet (reassembly bookkeeping).
    pub per_packet_cycles: u64,
    /// Extra uC cycles per collective step (more orchestration in firmware).
    pub per_step_extra_cycles: u64,
}

impl Default for LegacyUcConfig {
    fn default() -> Self {
        LegacyUcConfig {
            clock_mhz: 100.0,
            per_packet_cycles: 50,
            per_step_extra_cycles: 300,
        }
    }
}

/// Adaptive (phi-accrual-style) watchdog configuration.
///
/// When set on [`CcloConfig::adaptive_watchdog`], the uC replaces the fixed
/// `collective_timeout_us` threshold with deadlines derived from observed
/// progress inter-arrival history (see `accl_sim::detector`): a *suspect*
/// deadline that raises a counter and span without aborting, and a
/// *confirm* deadline that aborts like the fixed watchdog. Until
/// `min_samples` gaps are observed the uC falls back to the permissive
/// `cap_us` bound (or the fixed timeout if that is smaller), so cold-start
/// calls on slow links are not killed by an uncalibrated detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveWatchdogCfg {
    /// Gap samples required before adaptive deadlines are trusted.
    pub min_samples: u32,
    /// Milli-phi threshold of the suspect level (e.g. 4000 = 4.0).
    pub suspect_phi_milli: u64,
    /// Milli-phi threshold of the confirm (abort) level.
    pub confirm_phi_milli: u64,
    /// Additive deviation floor, µs (guards against zero-variance history).
    pub jitter_floor_us: u64,
    /// Lower clamp on any computed deadline, µs.
    pub floor_us: u64,
    /// Upper clamp on any computed deadline — and the cold-start fallback
    /// when history is insufficient — µs.
    pub cap_us: u64,
}

impl Default for AdaptiveWatchdogCfg {
    fn default() -> Self {
        AdaptiveWatchdogCfg {
            min_samples: 4,
            suspect_phi_milli: 4_000,
            confirm_phi_milli: 8_000,
            jitter_floor_us: 50,
            floor_us: 100,
            cap_us: 100_000,
        }
    }
}

/// Full CCLO engine configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CcloConfig {
    /// Engine clock, MHz (250 in the microbenchmarks, 115 in the DLRM
    /// design due to routing pressure).
    pub clock_mhz: f64,
    /// uC cycles to receive + decode a command.
    pub uc_cmd_decode_cycles: u64,
    /// uC cycles to issue one coarse-grained control op.
    pub uc_op_issue_cycles: u64,
    /// uC cycles to process one notification (DMP done, rendezvous ctrl).
    pub uc_notif_cycles: u64,
    /// DMP cycles to decode and launch one microcode instruction.
    pub dmp_instr_cycles: u64,
    /// Internal datapath width in bytes per cycle (64 B AXI-Stream).
    pub datapath_bytes_per_cycle: u64,
    /// RBM-to-DMP match discovery quantum, cycles (models DMP polling).
    pub rbm_poll_cycles: u64,
    /// Number of Rx buffers in the eager pool.
    pub rx_buf_count: u32,
    /// Size of each Rx buffer, bytes (eager messages must fit).
    pub rx_buf_bytes: u64,
    /// Scratch region base address in device memory (collective internals).
    pub scratch_base: u64,
    /// Scratch region size, bytes.
    pub scratch_bytes: u64,
    /// Legacy-ACCL mode (Fig. 13 baseline) when set.
    pub legacy_uc: Option<LegacyUcConfig>,
    /// Collective watchdog: if the active call makes no progress for this
    /// many microseconds while blocked on remote events (`WaitAll` with
    /// outstanding network work, `WaitRndzvDone`), the uC aborts it
    /// locally, releases its Rx buffers, and completes the command with an
    /// error status. `None` disables the watchdog (a stalled call then
    /// parks forever and is reported by the simulator's stall watchdog).
    pub collective_timeout_us: Option<u64>,
    /// Command-queue admission bound: at most this many calls may be
    /// pending (active + queued) per engine. Submissions beyond the bound
    /// complete immediately with [`CmdStatus::Busy`](crate::command::CmdStatus)
    /// instead of queueing without limit. `None` keeps the queue unbounded.
    #[serde(default)]
    pub max_pending_calls: Option<u32>,
    /// When set, the RBM notifies the uC each time the eager Rx buffer
    /// pool runs dry, so watchdog aborts under pool starvation complete
    /// with [`CmdStatus::ResourceExhausted`](crate::command::CmdStatus)
    /// instead of a generic timeout. Off by default (the notification is
    /// an extra event and perturbs event timelines).
    #[serde(default)]
    pub notify_rx_exhaustion: bool,
    /// Adaptive failure detection: when set, the stall watchdog derives
    /// its deadlines from observed per-peer progress inter-arrival history
    /// instead of the fixed `collective_timeout_us`, with a two-level
    /// suspect/confirm escalation. `None` (the default) keeps the fixed
    /// watchdog behaviour bit-identical to previous versions.
    #[serde(default)]
    pub adaptive_watchdog: Option<AdaptiveWatchdogCfg>,
    /// Algorithm selection thresholds.
    pub algo: AlgoConfig,
}

impl Default for CcloConfig {
    fn default() -> Self {
        CcloConfig {
            clock_mhz: 250.0,
            uc_cmd_decode_cycles: 100,
            uc_op_issue_cycles: 60,
            uc_notif_cycles: 40,
            dmp_instr_cycles: 16,
            datapath_bytes_per_cycle: 64,
            rbm_poll_cycles: 32,
            rx_buf_count: 16,
            rx_buf_bytes: 16 << 20,
            scratch_base: 0x4000_0000,
            scratch_bytes: 512 << 20,
            legacy_uc: None,
            collective_timeout_us: None,
            max_pending_calls: None,
            notify_rx_exhaustion: false,
            adaptive_watchdog: None,
            algo: AlgoConfig::default(),
        }
    }
}

impl CcloConfig {
    /// Duration of `cycles` engine clock cycles.
    pub fn cycles(&self, cycles: u64) -> Dur {
        Dur::for_cycles(cycles, self.clock_mhz)
    }

    /// Datapath bandwidth in Gb/s (64 B/cycle at 250 MHz = 128 Gb/s).
    pub fn datapath_gbps(&self) -> f64 {
        self.datapath_bytes_per_cycle as f64 * self.clock_mhz * 1e6 * 8.0 / 1e9
    }

    /// The legacy-ACCL preset used as the Fig. 13 comparison baseline.
    pub fn legacy_accl() -> Self {
        CcloConfig {
            legacy_uc: Some(LegacyUcConfig::default()),
            ..Self::default()
        }
    }
}

/// A communicator: the ordered group of ranks this CCLO belongs to, and the
/// POE session carrying traffic to each peer. Lives in the CCLO's
/// configuration memory, written by the host over MMIO (paper §4.4.1).
#[derive(Debug, Clone)]
pub struct CommunicatorCfg {
    /// This CCLO's rank.
    pub rank: u32,
    /// Per-rank (fabric address, local session id); entry `rank` is unused.
    pub peers: Vec<(NodeAddr, SessionId)>,
}

impl CommunicatorCfg {
    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.peers.len() as u32
    }

    /// The POE session to use for `peer_rank`.
    pub fn session(&self, peer_rank: u32) -> SessionId {
        assert_ne!(peer_rank, self.rank, "no session to self");
        self.peers[peer_rank as usize].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapath_bandwidth() {
        let cfg = CcloConfig::default();
        assert!((cfg.datapath_gbps() - 128.0).abs() < 1e-9);
        assert_eq!(cfg.cycles(250), Dur::from_us(1));
    }

    #[test]
    fn table1_algorithm_selection() {
        let algo = AlgoConfig::default();
        // Bcast: one-to-all small rank counts, recursive doubling at scale
        // (rendezvous only).
        assert_eq!(algo.bcast(4, true), Algorithm::OneToAll);
        assert_eq!(algo.bcast(8, true), Algorithm::RecursiveDoubling);
        assert_eq!(algo.bcast(8, false), Algorithm::OneToAll);
        // Reduce: eager→ring; rendezvous→all-to-one small, tree large.
        assert_eq!(algo.reduce_like(8 << 10, false), Algorithm::Ring);
        assert_eq!(algo.reduce_like(8 << 10, true), Algorithm::OneToAll);
        assert_eq!(algo.reduce_like(128 << 10, true), Algorithm::BinaryTree);
    }

    #[test]
    fn eager_choice_respects_transport() {
        let algo = AlgoConfig::default();
        assert!(algo.pick_eager(1024, true));
        assert!(!algo.pick_eager(1 << 20, true));
        // UDP/TCP have no rendezvous: always eager.
        assert!(algo.pick_eager(1 << 20, false));
    }

    #[test]
    #[should_panic(expected = "no session to self")]
    fn self_session_panics() {
        let cfg = CommunicatorCfg {
            rank: 0,
            peers: vec![(NodeAddr(0), SessionId(0)), (NodeAddr(1), SessionId(1))],
        };
        cfg.session(0);
    }
}
