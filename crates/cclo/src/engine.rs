//! Per-node assembly of the CCLO engine.
//!
//! Instantiates and wires the control plane (uC) and data plane (DMP, RBM,
//! Tx/Rx systems) of one CCLO, and exposes the endpoints the outside world
//! needs: the command port (host driver or FPGA kernels), the kernel data
//! stream, and the POE-facing upward interface. The platform layer
//! (`accl-core`) builds one engine per FPGA next to its POE and memory bus.

use std::sync::Arc;

use accl_mem::MemAddr;
use accl_poe::iface::PoeUpward;
use accl_sim::prelude::*;

use crate::command::CollOp;
use crate::config::{AlgoConfig, CcloConfig, CommunicatorCfg};
use crate::dmp::{ports as dmp_ports, Dmp};
use crate::firmware::{CollectiveProgram, FirmwareTable};
use crate::rbm::{ports as rbm_ports, Rbm};
use crate::rxsys::{ports as rx_ports, RxSys};
use crate::txsys::{ports as tx_ports, TxFallback, TxSys};
use crate::uc::{ports as uc_ports, TransportFailover, Uc};

/// Construction parameters for one CCLO engine.
pub struct CcloEngineSpec {
    /// Engine configuration.
    pub cfg: CcloConfig,
    /// The node's memory bus.
    pub mem_bus: ComponentId,
    /// The node's POE component (its `TX_CMD`/`TX_DATA` ports are driven).
    pub poe: ComponentId,
    /// Whether that POE supports rendezvous (RDMA).
    pub rendezvous_capable: bool,
    /// Whether the POE is reliable (TCP/RDMA): eager collectives may then
    /// use advanced algorithms; unreliable UDP sticks to simple patterns
    /// that minimize loss exposure (§4.4.4).
    pub reliable: bool,
    /// Base address of the engine's scratch region.
    pub scratch_mem: MemAddr,
}

/// Handles to one assembled CCLO engine.
pub struct CcloEngine {
    /// The embedded controller.
    pub uc: ComponentId,
    /// The data-movement processor.
    pub dmp: ComponentId,
    /// The Rx buffer manager.
    pub rbm: ComponentId,
    /// The Tx system.
    pub txsys: ComponentId,
    /// The Rx system.
    pub rxsys: ComponentId,
}

impl CcloEngine {
    /// Builds and wires the engine into `sim`.
    pub fn build(sim: &mut Simulator, prefix: &str, spec: &CcloEngineSpec) -> CcloEngine {
        let uc = sim.reserve(format!("{prefix}.uc"));
        let dmp = sim.reserve(format!("{prefix}.dmp"));
        let rbm = sim.reserve(format!("{prefix}.rbm"));
        let txsys = sim.reserve(format!("{prefix}.txsys"));
        let rxsys = sim.reserve(format!("{prefix}.rxsys"));

        // Resource labels are scoped by node ("n0.cclo" -> "n0") so stall
        // reports and the deadlock detector name the owning node.
        let scope = prefix.split('.').next().unwrap_or(prefix);
        let mut uc_comp = Uc::new(
            spec.cfg,
            FirmwareTable::stock(),
            dmp,
            txsys,
            spec.rendezvous_capable,
            spec.reliable,
            spec.scratch_mem,
        );
        uc_comp.set_rbm(rbm);
        uc_comp.set_resource_label(format!("cclo.jobq({scope})"));
        sim.install(uc, uc_comp);
        sim.install(
            dmp,
            Dmp::new(
                spec.cfg,
                spec.mem_bus,
                rbm,
                txsys,
                Endpoint::new(uc, uc_ports::DMP_DONE),
            ),
        );
        let mut rbm_comp = Rbm::new(spec.cfg);
        rbm_comp.set_resource_label(format!("cclo.rxbuf({scope})"));
        if spec.cfg.notify_rx_exhaustion {
            rbm_comp.set_exhaustion_notify(Endpoint::new(uc, uc_ports::NOTIF));
        }
        sim.install(rbm, rbm_comp);
        sim.install(
            txsys,
            TxSys::new(
                Endpoint::new(spec.poe, accl_poe::ports::TX_CMD),
                Endpoint::new(spec.poe, accl_poe::ports::TX_DATA),
                Endpoint::new(dmp, dmp_ports::TX_DONE),
                spec.cfg.cycles(4),
            ),
        );
        sim.install(
            rxsys,
            RxSys::new(
                Endpoint::new(rbm, rbm_ports::META),
                Endpoint::new(rbm, rbm_ports::DATA),
                Endpoint::new(uc, uc_ports::NOTIF),
                spec.cfg.cycles(4),
            ),
        );
        CcloEngine {
            uc,
            dmp,
            rbm,
            txsys,
            rxsys,
        }
    }

    /// The endpoint commands are submitted to (host driver or kernels).
    pub fn cmd(&self) -> Endpoint {
        Endpoint::new(self.uc, uc_ports::CMD)
    }

    /// The endpoint kernels push stream data to (Listing 2's `data.push`).
    pub fn stream_in(&self) -> Endpoint {
        Endpoint::new(self.dmp, dmp_ports::STREAM_IN)
    }

    /// The upward interface handed to the POE at its construction.
    pub fn poe_upward(&self) -> PoeUpward {
        PoeUpward {
            rx_meta: Endpoint::new(self.rxsys, rx_ports::POE_META),
            rx_data: Endpoint::new(self.rxsys, rx_ports::POE_DATA),
            tx_done: Endpoint::new(self.txsys, tx_ports::POE_DONE),
        }
    }

    /// Installs a communicator into the engine's configuration memory.
    pub fn set_communicator(&self, sim: &mut Simulator, id: u32, cfg: CommunicatorCfg) {
        sim.component_mut::<Uc>(self.uc).set_communicator(id, cfg);
    }

    /// Loads (or replaces) collective firmware at runtime.
    pub fn load_firmware(
        &self,
        sim: &mut Simulator,
        op: CollOp,
        program: Arc<dyn CollectiveProgram>,
    ) {
        sim.component_mut::<Uc>(self.uc).load_firmware(op, program);
    }

    /// Tunes the algorithm-selection thresholds at runtime (§4.4.4).
    pub fn set_algo_config(&self, sim: &mut Simulator, algo: AlgoConfig) {
        sim.component_mut::<Uc>(self.uc).set_algo_config(algo);
    }

    /// Routes kernel-stream output chunks to `ep` (streaming collectives).
    pub fn set_kernel_out(&self, sim: &mut Simulator, ep: Endpoint) {
        sim.component_mut::<Dmp>(self.dmp).set_kernel_out(ep);
    }

    /// Arms a standby POE for graceful degradation: after `threshold`
    /// session errors on the primary, the Tx system retargets its command
    /// and data streams to `tx_cmd`/`tx_data` and the uC downgrades its
    /// protocol selection to `profile` (e.g. no rendezvous over TCP).
    pub fn set_tx_fallback(
        &self,
        sim: &mut Simulator,
        tx_cmd: Endpoint,
        tx_data: Endpoint,
        profile: TransportFailover,
        threshold: u64,
    ) {
        sim.component_mut::<TxSys>(self.txsys)
            .set_fallback(TxFallback {
                tx_cmd,
                tx_data,
                notify: Endpoint::new(self.uc, uc_ports::FAILOVER),
                profile,
                threshold,
            });
    }
}
