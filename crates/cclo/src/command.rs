//! The CCLO command interface: what hosts and FPGA kernels invoke.
//!
//! Mirrors the MPI-like API of Listing 1 — op, datatype, count, root,
//! reduce function, communicator, flags — with the buffer arguments
//! generalized to [`DataLoc`] so the same command structure serves both
//! memory-based (MPI-like) and streaming collectives (Listing 2).

use accl_mem::MemAddr;
use accl_sim::prelude::*;
use accl_sim::trace::SpanId;

use crate::msg::{DType, ReduceFn};

/// Collective operations implemented by the stock firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollOp {
    /// No-op: measures pure invocation latency (Fig. 8).
    Nop,
    /// Point-to-point send to `root`.
    Send,
    /// Point-to-point receive from `root`.
    Recv,
    /// Broadcast from `root`.
    Bcast,
    /// Reduce to `root`.
    Reduce,
    /// Gather to `root`.
    Gather,
    /// Scatter from `root`.
    Scatter,
    /// All-gather.
    AllGather,
    /// All-reduce.
    AllReduce,
    /// Reduce-scatter (block distribution).
    ReduceScatter,
    /// All-to-all personalized exchange.
    AllToAll,
    /// Barrier.
    Barrier,
    /// A user-registered collective (firmware slot `n`).
    Custom(u16),
}

impl CollOp {
    /// Static label for the op (span attributes want `&'static str`).
    pub fn name(self) -> &'static str {
        match self {
            CollOp::Nop => "nop",
            CollOp::Send => "send",
            CollOp::Recv => "recv",
            CollOp::Bcast => "bcast",
            CollOp::Reduce => "reduce",
            CollOp::Gather => "gather",
            CollOp::Scatter => "scatter",
            CollOp::AllGather => "allgather",
            CollOp::AllReduce => "allreduce",
            CollOp::ReduceScatter => "reduce_scatter",
            CollOp::AllToAll => "alltoall",
            CollOp::Barrier => "barrier",
            CollOp::Custom(_) => "custom",
        }
    }
}

/// Where a collective's data comes from / goes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLoc {
    /// A memory buffer (virtual for Coyote, physical-device for Vitis).
    Mem(MemAddr),
    /// The CCLO's kernel data stream (streaming collectives, Listing 2).
    Stream,
    /// No data (NOP, barrier, or ops where this side is unused).
    None,
}

/// Synchronization protocol selection (paper §4.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncProto {
    /// Let the engine pick per its runtime configuration.
    Auto,
    /// Force eager (Rx-buffered) messages.
    Eager,
    /// Force rendezvous (handshake + direct placement). RDMA only.
    Rendezvous,
}

/// A command submitted to the CCLO engine.
#[derive(Debug, Clone, Copy)]
pub struct CcloCommand {
    /// The collective to execute.
    pub op: CollOp,
    /// Element count.
    pub count: u64,
    /// Element datatype.
    pub dtype: DType,
    /// Root rank (send/recv peer for point-to-point ops).
    pub root: u32,
    /// User tag namespace (collective steps sub-allocate within it).
    pub tag: u64,
    /// Communicator id.
    pub comm: u32,
    /// Reduction function (reduce-like ops).
    pub func: ReduceFn,
    /// Input data location.
    pub src: DataLoc,
    /// Output data location.
    pub dst: DataLoc,
    /// Synchronization protocol.
    pub sync: SyncProto,
    /// Where to deliver the [`CcloDone`] completion.
    pub reply_to: Endpoint,
    /// Caller ticket echoed in the completion.
    pub ticket: u64,
    /// Causal parent for the engine's `uc.call` span ([`SpanId::NONE`]
    /// when the caller does not trace).
    pub span: SpanId,
}

impl CcloCommand {
    /// Total payload bytes of this command.
    pub fn bytes(&self) -> u64 {
        self.count * self.dtype.size() as u64
    }
}

/// Outcome written into a command completion.
///
/// Hardware command queues report errors in the completion record rather
/// than out of band; the driver turns non-`Ok` statuses into typed errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdStatus {
    /// The collective ran to completion.
    Ok,
    /// The uC's collective watchdog expired while the call was blocked on
    /// remote progress; the call was aborted locally.
    TimedOut,
    /// The engine's command queue was full at submission; the command was
    /// rejected without side effects and may be retried.
    Busy,
    /// The call was aborted while a bounded engine resource (the eager Rx
    /// buffer pool) was exhausted — local starvation, not remote silence.
    ResourceExhausted,
}

/// Completion of a CCLO command.
#[derive(Debug, Clone, Copy)]
pub struct CcloDone {
    /// Ticket from the originating command.
    pub ticket: u64,
    /// The operation that completed.
    pub op: CollOp,
    /// Payload bytes moved (per the command's count × dtype).
    pub bytes: u64,
    /// Completion status (error completions carry [`CmdStatus::TimedOut`]).
    pub status: CmdStatus,
}

#[cfg(test)]
mod tests {
    use super::*;
    use accl_sim::event::{ComponentId, Endpoint};

    #[test]
    fn command_bytes() {
        let cmd = CcloCommand {
            op: CollOp::Bcast,
            count: 256,
            dtype: DType::F32,
            root: 0,
            tag: 0,
            comm: 0,
            func: ReduceFn::Sum,
            src: DataLoc::None,
            dst: DataLoc::None,
            sync: SyncProto::Auto,
            reply_to: Endpoint::of(component_id(0)),
            ticket: 0,
            span: SpanId::NONE,
        };
        assert_eq!(cmd.bytes(), 1024);
    }

    fn component_id(_i: u32) -> ComponentId {
        // Use a simulator to mint a real id.
        let mut sim = accl_sim::sim::Simulator::new(0);
        sim.reserve("x")
    }
}
