//! The embedded micro-controller: the CCLO's flexible control plane.
//!
//! Receives commands from the host or FPGA kernels, selects protocol and
//! algorithm per its runtime configuration (Table 1), runs the loaded
//! firmware to obtain the per-rank schedule, and issues coarse-grained
//! control operations: microcode to the DMP, rendezvous control messages to
//! the Tx system. Every issue costs uC cycles at the engine clock — the uC
//! is sequential and slow, which is exactly why the firmware only issues
//! coarse commands to latency-optimized hardware blocks (paper §4.4.1).
//!
//! Commands execute strictly FIFO (one collective at a time per engine);
//! within a call, DMP instructions pipeline freely until a `WaitAll` or a
//! rendezvous dependency blocks the op stream.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use accl_mem::MemAddr;

use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

use crate::command::{CcloCommand, CcloDone, CmdStatus, CollOp, DataLoc, SyncProto};
use crate::config::{CcloConfig, CommunicatorCfg};
use crate::dmp::{ports as dmp_ports, DmpDone, Microcode, RDst, RSrc};
use crate::firmware::{BufRef, FirmwareTable, FwEnv, FwOp, SlotDst, SlotSrc};
use crate::msg::{MsgSignature, MsgType};
use crate::rbm::{ports as rbm_ports, MatchKey, RbmPurge};
use crate::rxsys::UcNotif;
use crate::txsys::{ports as tx_ports, TxJob};

/// Ports of the [`Uc`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Command submissions ([`super::CcloCommand`]).
    pub const CMD: PortId = PortId(0);
    /// DMP completions ([`super::DmpDone`]).
    pub const DMP_DONE: PortId = PortId(1);
    /// Rendezvous notifications from the Rx system ([`super::UcNotif`]).
    pub const NOTIF: PortId = PortId(2);
    /// Internal sequencing events.
    pub const STEP: PortId = PortId(3);
    /// Collective-watchdog expiry (self-scheduled).
    pub const TIMEOUT: PortId = PortId(4);
    /// Transport-failover notifications from the Tx system
    /// ([`super::TransportFailover`]).
    pub const FAILOVER: PortId = PortId(5);
}

/// Announcement that the Tx path switched to a fallback POE. The uC adopts
/// the new transport's capabilities for all subsequent protocol and
/// algorithm selection; the call that triggered the switch has already
/// been aborted by the watchdog and is reissued by the host driver.
#[derive(Debug, Clone, Copy)]
pub struct TransportFailover {
    /// Whether the fallback POE supports rendezvous.
    pub rendezvous_capable: bool,
    /// Whether the fallback transport is reliable.
    pub reliable: bool,
}

/// Self-scheduled watchdog token. A firing is acted on only if the call it
/// was armed for is still active and nothing progressed since it was armed
/// (`gen` unchanged); progress events simply let stale tokens lapse.
#[derive(Debug, Clone, Copy)]
struct UcTimeout {
    /// The watched call's sequence number.
    seq: u64,
    /// Progress generation at arming time.
    gen: u64,
    /// Escalation level this token was armed at. Fixed-threshold watchdogs
    /// always arm at [`DetectLevel::Confirm`] (a firing aborts directly);
    /// the adaptive detector arms at Suspect first and only a subsequent
    /// Confirm firing aborts.
    level: DetectLevel,
}

/// Detector stream key for local DMP completions (per-peer streams use the
/// peer's rank, which is always below this).
const LOCAL_STREAM: u32 = u32::MAX;

/// Why the current call's op stream is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Ready to issue the next op (a STEP event is in flight).
    Stepping,
    /// Waiting for outstanding DMP instructions.
    WaitAll,
    /// Waiting for a rendezvous done from `(peer, tag)`.
    RndzvDone(u32, u64),
}

/// The active call's execution state.
struct CallState {
    cmd: CcloCommand,
    env: FwEnv,
    ops: VecDeque<FwOp>,
    outstanding: u32,
    /// Tickets of DMP instructions issued but not yet completed (moved to
    /// the orphan set if the call aborts).
    issued: BTreeSet<u64>,
    /// Rendezvous sends parked until the peer's init arrives (the op
    /// stream keeps flowing — "FIFO queues allow multiple in-flight
    /// instructions", §4.4.1).
    parked: Vec<crate::firmware::DmpInstr>,
    blocked: Blocked,
    scratch_base: u64,
    /// Monotone call sequence number (validates watchdog tokens).
    seq: u64,
    /// The call's open `uc.call` span.
    span: SpanId,
}

/// The embedded controller component.
pub struct Uc {
    cfg: CcloConfig,
    firmware: FirmwareTable,
    communicators: BTreeMap<u32, CommunicatorCfg>,
    dmp: ComponentId,
    txsys: ComponentId,
    /// Whether the attached POE supports rendezvous (RDMA).
    rendezvous_capable: bool,
    /// Whether the transport is reliable (advanced eager algorithms OK).
    reliable: bool,
    /// Base of the scratch region (platform-specific address space).
    scratch_mem: MemAddr,
    queue: VecDeque<CcloCommand>,
    call: Option<CallState>,
    next_ticket: u64,
    /// Received rendezvous inits: (peer, tag) → FIFO of landing addresses.
    inits: BTreeMap<(u32, u64), VecDeque<u64>>,
    /// Received rendezvous dones: (peer, tag) → count.
    dones: BTreeMap<(u32, u64), u32>,
    calls_completed: u64,
    /// The node's RBM (abort cleanup); unset in control-plane-only tests.
    rbm: Option<ComponentId>,
    /// Calls started so far (mints [`CallState::seq`]).
    call_seq: u64,
    /// Bumped on every completion/notification; stale watchdog tokens
    /// compare against it.
    progress_gen: u64,
    /// Tickets of aborted calls whose DMP completions are still in flight.
    orphans: BTreeSet<u64>,
    orphans_reaped: u64,
    calls_aborted: u64,
    /// Transport failovers observed (the Tx system announced a POE swap).
    failovers_observed: u64,
    /// Commands rejected at admission because the queue was full.
    calls_rejected: u64,
    /// RBM pool-exhaustion notifications since the active call started;
    /// classifies watchdog aborts as [`CmdStatus::ResourceExhausted`].
    rx_exhausted_events: u64,
    /// Adaptive failure detector (present when
    /// [`CcloConfig::adaptive_watchdog`] is set); learns per-stream
    /// inter-arrival gaps and replaces the fixed watchdog threshold.
    detector: Option<FailureDetector>,
    /// Suspect-level watchdog firings (soft suspicion, no abort).
    suspicions: u64,
    /// Resource name of the command queue for stall diagnosis.
    resource: String,
}

impl Uc {
    /// Creates a uC driving the given DMP and Tx system.
    pub fn new(
        cfg: CcloConfig,
        firmware: FirmwareTable,
        dmp: ComponentId,
        txsys: ComponentId,
        rendezvous_capable: bool,
        reliable: bool,
        scratch_mem: MemAddr,
    ) -> Self {
        let detector = Self::build_detector(&cfg);
        Uc {
            cfg,
            firmware,
            communicators: BTreeMap::new(),
            dmp,
            txsys,
            rendezvous_capable,
            reliable,
            scratch_mem,
            queue: VecDeque::new(),
            call: None,
            next_ticket: 0,
            inits: BTreeMap::new(),
            dones: BTreeMap::new(),
            calls_completed: 0,
            rbm: None,
            call_seq: 0,
            progress_gen: 0,
            orphans: BTreeSet::new(),
            orphans_reaped: 0,
            calls_aborted: 0,
            failovers_observed: 0,
            calls_rejected: 0,
            rx_exhausted_events: 0,
            detector,
            suspicions: 0,
            resource: "cclo.jobq".to_string(),
        }
    }

    /// Scopes the command queue's resource name for stall diagnosis
    /// (e.g. `"cclo.jobq(n0)"`).
    pub fn set_resource_label(&mut self, label: impl Into<String>) {
        self.resource = label.into();
    }

    /// Wires the node's RBM so aborts can release its Rx buffers.
    pub fn set_rbm(&mut self, rbm: ComponentId) {
        self.rbm = Some(rbm);
    }

    /// Installs a communicator in the configuration memory (host MMIO).
    pub fn set_communicator(&mut self, id: u32, cfg: CommunicatorCfg) {
        self.communicators.insert(id, cfg);
    }

    /// Replaces the firmware serving `op` (no re-synthesis required).
    pub fn load_firmware(
        &mut self,
        op: CollOp,
        program: std::sync::Arc<dyn crate::firmware::CollectiveProgram>,
    ) {
        self.firmware.load(op, program);
    }

    /// Updates the runtime algorithm-selection configuration.
    pub fn set_algo_config(&mut self, algo: crate::config::AlgoConfig) {
        self.cfg.algo = algo;
    }

    /// Calls completed so far.
    pub fn calls_completed(&self) -> u64 {
        self.calls_completed
    }

    /// Calls aborted by the collective watchdog so far.
    pub fn calls_aborted(&self) -> u64 {
        self.calls_aborted
    }

    /// DMP completions reaped for already-aborted calls.
    pub fn orphans_reaped(&self) -> u64 {
        self.orphans_reaped
    }

    /// Transport failovers announced by the Tx system so far.
    pub fn failovers_observed(&self) -> u64 {
        self.failovers_observed
    }

    /// Commands rejected with [`CmdStatus::Busy`] at admission so far.
    pub fn calls_rejected(&self) -> u64 {
        self.calls_rejected
    }

    /// Suspect-level watchdog firings so far (adaptive detector only).
    pub fn suspicions(&self) -> u64 {
        self.suspicions
    }

    /// Forgets a peer's inter-arrival history in the adaptive detector.
    /// Called on rejoin: gaps measured against the peer's previous
    /// incarnation say nothing about the new one.
    pub fn reset_peer_history(&mut self, peer: u32) {
        if let Some(det) = &mut self.detector {
            det.reset_peer(peer);
        }
    }

    /// Forgets ALL inter-arrival history. Called on the node's own
    /// restart: a rebooted uC has no memory of any cadence.
    pub fn reset_all_history(&mut self) {
        self.detector = Self::build_detector(&self.cfg);
    }

    fn build_detector(cfg: &CcloConfig) -> Option<FailureDetector> {
        cfg.adaptive_watchdog.map(|a| {
            FailureDetector::new(DetectorCfg {
                min_samples: a.min_samples as usize,
                suspect_phi_milli: a.suspect_phi_milli,
                confirm_phi_milli: a.confirm_phi_milli,
                jitter_floor: Dur::from_us(a.jitter_floor_us),
                floor: Dur::from_us(a.floor_us),
                cap: Dur::from_us(a.cap_us),
            })
        })
    }

    fn comm(&self, id: u32) -> &CommunicatorCfg {
        self.communicators
            .get(&id)
            .unwrap_or_else(|| panic!("communicator {id} not configured"))
    }

    /// Builds the firmware environment for a command (protocol + algorithm
    /// selection per the runtime config).
    fn build_env(&self, cmd: &CcloCommand) -> FwEnv {
        let comm = self.comm(cmd.comm);
        let bytes = cmd.bytes();
        let eager = match cmd.sync {
            SyncProto::Eager => true,
            SyncProto::Rendezvous => {
                assert!(
                    self.rendezvous_capable,
                    "rendezvous requires an RDMA-capable POE"
                );
                false
            }
            SyncProto::Auto => self.cfg.algo.pick_eager(bytes, self.rendezvous_capable),
        };
        // Streaming calls always run eager steps where streams are touched,
        // and simple algorithms avoid re-reading consumed streams.
        let streaming = matches!(cmd.src, DataLoc::Stream) || matches!(cmd.dst, DataLoc::Stream);
        // Advanced (tree / recursive-doubling) algorithms are safe under
        // rendezvous or any reliable transport; unreliable UDP keeps the
        // simple patterns (§4.4.4).
        let advanced = !eager || self.reliable;
        let algorithm = match cmd.op {
            CollOp::Bcast => {
                if streaming {
                    crate::config::Algorithm::OneToAll
                } else {
                    self.cfg.algo.bcast(comm.size(), advanced)
                }
            }
            CollOp::Reduce | CollOp::Gather => {
                if streaming && eager {
                    // Ring needs only single-pass stream access.
                    self.cfg.algo.reduce_like(bytes, false)
                } else {
                    self.cfg.algo.reduce_like(bytes, advanced)
                }
            }
            CollOp::AllReduce => {
                if streaming {
                    self.cfg.algo.reduce_like(bytes, false)
                } else {
                    self.cfg.algo.allreduce(bytes, advanced)
                }
            }
            CollOp::AllGather | CollOp::ReduceScatter => crate::config::Algorithm::Ring,
            _ => crate::config::Algorithm::Linear,
        };
        FwEnv {
            rank: comm.rank,
            size: comm.size(),
            count: cmd.count,
            dtype: cmd.dtype,
            func: cmd.func,
            root: cmd.root,
            bytes,
            eager,
            algorithm,
            src: cmd.src,
            dst: cmd.dst,
        }
    }

    /// Starts the next queued call, if idle.
    fn maybe_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.call.is_some() {
            return;
        }
        let Some(cmd) = self.queue.pop_front() else {
            return;
        };
        self.rx_exhausted_events = 0;
        let env = self.build_env(&cmd);
        let program = self.firmware.get(cmd.op).clone();
        let schedule = {
            let mut sched = crate::firmware::Sched::new(&env);
            program.build(&env, &mut sched);
            sched.finish()
        };
        assert!(
            schedule.scratch_bytes <= self.cfg.scratch_bytes,
            "schedule needs {} B scratch, engine has {}",
            schedule.scratch_bytes,
            self.cfg.scratch_bytes
        );
        let decode_cycles = self.cfg.uc_cmd_decode_cycles
            + program.planning_cycles(&env)
            + self
                .cfg
                .legacy_uc
                .map_or(0, |l| l.per_step_extra_cycles * schedule.ops.len() as u64);
        let planning = self.cfg.cycles(decode_cycles);
        ctx.stats().add("uc.decode_cycles", decode_cycles);
        let mut span = SpanId::NONE;
        if ctx.spans_enabled() {
            span = ctx.span_begin_attrs(
                "uc.call",
                cmd.span,
                &[
                    Attr {
                        key: "op",
                        value: AttrValue::Str(cmd.op.name()),
                    },
                    Attr {
                        key: "bytes",
                        value: AttrValue::Bytes(cmd.bytes()),
                    },
                ],
            );
            ctx.span_interval("uc.decode", span, ctx.now(), ctx.now() + planning);
        }
        let seq = self.call_seq;
        self.call_seq += 1;
        self.call = Some(CallState {
            cmd,
            env,
            ops: schedule.ops.into(),
            outstanding: 0,
            issued: BTreeSet::new(),
            parked: Vec::new(),
            blocked: Blocked::Stepping,
            scratch_base: 0,
            seq,
            span,
        });
        ctx.send_self(ports::STEP, planning, ());
    }

    /// Arms the collective watchdog for the active call's current blocked
    /// state. Stale tokens (progress happened, or another call is active)
    /// lapse harmlessly at expiry. With the adaptive detector the first
    /// deadline is armed at the Suspect level; otherwise the fixed
    /// threshold arms directly at Confirm.
    fn arm_timeout(&mut self, ctx: &mut Ctx<'_>) {
        let level = if self.detector.is_some() {
            DetectLevel::Suspect
        } else {
            DetectLevel::Confirm
        };
        self.arm_timeout_at(ctx, level);
    }

    /// Arms one watchdog deadline at `level` for the active call.
    fn arm_timeout_at(&mut self, ctx: &mut Ctx<'_>, level: DetectLevel) {
        let Some(call) = &self.call else {
            return;
        };
        if call.blocked == Blocked::Stepping {
            return; // a STEP event is in flight: the op stream is moving
        }
        let wait = match (&self.detector, self.cfg.adaptive_watchdog) {
            (Some(det), Some(acfg)) => {
                // Adaptive deadline for the stream(s) the call blocks on;
                // below `min_samples` fall back to the fixed threshold (or
                // the permissive cap when none is configured).
                let learned = match call.blocked {
                    Blocked::RndzvDone(peer, _) => det.wait(peer, level),
                    Blocked::WaitAll => det.max_wait(level),
                    Blocked::Stepping => unreachable!("checked above"),
                };
                learned.unwrap_or_else(|| {
                    Dur::from_us(self.cfg.collective_timeout_us.unwrap_or(acfg.cap_us))
                })
            }
            _ => {
                let Some(us) = self.cfg.collective_timeout_us else {
                    return;
                };
                Dur::from_us(us)
            }
        };
        ctx.send_self(
            ports::TIMEOUT,
            wait,
            UcTimeout {
                seq: call.seq,
                gen: self.progress_gen,
                level,
            },
        );
    }

    /// Aborts the active call: outstanding DMP work is disowned (its
    /// completions will be reaped as orphans), the call's eager Rx buffers
    /// and pending matches are released via the RBM, rendezvous
    /// bookkeeping under its tag is dropped, and the command completes
    /// with an error status. The next queued command then starts — a
    /// wedged collective no longer head-of-line-blocks the engine.
    fn abort_call(&mut self, ctx: &mut Ctx<'_>, status: CmdStatus) {
        let Some(call) = self.call.take() else {
            return;
        };
        self.orphans.extend(call.issued.iter().copied());
        let user_tag = call.cmd.tag;
        self.inits.retain(|(_, tag), _| tag >> 32 != user_tag);
        self.dones.retain(|(_, tag), _| tag >> 32 != user_tag);
        let issue_cost = self.cfg.cycles(self.cfg.uc_op_issue_cycles);
        if let Some(rbm) = self.rbm {
            ctx.send(
                Endpoint::new(rbm, rbm_ports::PURGE),
                issue_cost,
                RbmPurge {
                    comm: call.cmd.comm,
                    user_tag,
                },
            );
        }
        self.calls_aborted += 1;
        ctx.stats().add("uc.collective_timeouts", 1);
        if ctx.spans_enabled() {
            ctx.span_instant("uc.abort", call.span);
        }
        ctx.span_end(call.span);
        ctx.send(
            call.cmd.reply_to,
            issue_cost,
            CcloDone {
                ticket: call.cmd.ticket,
                op: call.cmd.op,
                bytes: 0,
                status,
            },
        );
        self.maybe_start(ctx);
    }

    /// Resolves a buffer reference to a platform address.
    fn resolve_buf(&self, call: &CallState, buf: BufRef, off: u64) -> MemAddr {
        let loc = match buf {
            BufRef::Src => call.cmd.src,
            BufRef::Dst => call.cmd.dst,
            BufRef::Scratch => {
                return match self.scratch_mem {
                    MemAddr::Virt(base) => MemAddr::Virt(base + call.scratch_base + off),
                    MemAddr::Phys(t, base) => MemAddr::Phys(t, base + call.scratch_base + off),
                };
            }
        };
        match loc {
            DataLoc::Mem(addr) => addr.offset(off),
            DataLoc::Stream => panic!("buffer reference into a stream location"),
            DataLoc::None => panic!("buffer reference but command has no {buf:?} buffer"),
        }
    }

    fn resolve_src(&self, call: &CallState, slot: SlotSrc) -> RSrc {
        match slot {
            SlotSrc::Mem(buf, off) => RSrc::Mem(self.resolve_buf(call, buf, off)),
            SlotSrc::EagerRx { peer, tag } => RSrc::Eager(MatchKey {
                comm: call.cmd.comm,
                src_rank: peer,
                tag: self.wire_tag(call, tag),
            }),
            SlotSrc::Stream => RSrc::Stream,
        }
    }

    /// Resolves and issues one DMP instruction (inits already available
    /// for rendezvous sends).
    fn issue_dmp(
        &mut self,
        ctx: &mut Ctx<'_>,
        call: &mut CallState,
        instr: crate::firmware::DmpInstr,
    ) {
        let issue_cost = self.cfg.cycles(self.cfg.uc_op_issue_cycles);
        let resolved_res = match instr.res {
            SlotDst::Mem(buf, off) => RDst::Mem(self.resolve_buf(call, buf, off)),
            SlotDst::Stream => RDst::Stream,
            SlotDst::EagerTx { peer, tag } => {
                let comm = self.comm(call.cmd.comm);
                RDst::Eager {
                    session: comm.session(peer),
                    sig: self.signature(call, peer, MsgType::Eager, instr.len, tag, 0),
                }
            }
            SlotDst::RndzvTx { peer, tag } => {
                let key = (peer, self.wire_tag(call, tag));
                let addr = self
                    .inits
                    .get_mut(&key)
                    .and_then(std::collections::VecDeque::pop_front)
                    .expect("issue_dmp called without an available init");
                let comm = self.comm(call.cmd.comm);
                RDst::Rndzv {
                    session: comm.session(peer),
                    remote_addr: addr,
                    done_sig: self.signature(call, peer, MsgType::RndzvDone, 0, tag, 0),
                }
            }
        };
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        call.outstanding += 1;
        call.issued.insert(ticket);
        ctx.stats()
            .add("uc.issue_cycles", self.cfg.uc_op_issue_cycles);
        let mc = Microcode {
            ticket,
            op0: self.resolve_src(call, instr.op0),
            op1: instr.op1.map(|s| self.resolve_src(call, s)),
            res: resolved_res,
            len: instr.len,
            dtype: call.env.dtype,
            func: call.env.func,
            span: call.span,
        };
        ctx.send(Endpoint::new(self.dmp, dmp_ports::INSTR), issue_cost, mc);
    }

    /// Issues parked rendezvous sends whose inits arrived — strictly in
    /// program order. In-order issuance keeps the Tx stream faithful to
    /// the algorithm's send priority (a binomial root must serve its
    /// deepest subtree first even if a shallow child's init races ahead);
    /// the firmware programs post all inits before depending on any done,
    /// so in-order parking cannot deadlock.
    fn unpark(&mut self, ctx: &mut Ctx<'_>) {
        let Some(mut call) = self.call.take() else {
            return;
        };
        while let Some(&instr) = call.parked.first() {
            let SlotDst::RndzvTx { peer, tag } = instr.res else {
                unreachable!("only rendezvous sends park")
            };
            let key = (peer, self.wire_tag(&call, tag));
            if self.inits.get(&key).is_some_and(|q| !q.is_empty()) {
                call.parked.remove(0);
                self.issue_dmp(ctx, &mut call, instr);
            } else {
                break;
            }
        }
        self.call = Some(call);
    }

    /// Namespaces program tags under the user's call tag.
    fn wire_tag(&self, call: &CallState, tag: u64) -> u64 {
        (call.cmd.tag << 32) | tag
    }

    fn signature(
        &self,
        call: &CallState,
        peer: u32,
        mtype: MsgType,
        payload_len: u64,
        tag: u64,
        addr: u64,
    ) -> MsgSignature {
        MsgSignature {
            src_rank: call.env.rank,
            dst_rank: peer,
            mtype,
            payload_len,
            tag: self.wire_tag(call, tag),
            seq: 0,
            addr,
            comm: call.cmd.comm,
        }
    }

    /// Executes ops until the stream blocks or the call completes.
    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let Some(mut call) = self.call.take() else {
            return;
        };
        call.blocked = Blocked::Stepping;
        let issue_cost = self.cfg.cycles(self.cfg.uc_op_issue_cycles);
        loop {
            let Some(&op) = call.ops.front() else {
                if call.outstanding == 0 && call.parked.is_empty() {
                    // Call complete.
                    self.calls_completed += 1;
                    ctx.stats().add("uc.calls", 1);
                    ctx.span_end(call.span);
                    ctx.send(
                        call.cmd.reply_to,
                        issue_cost,
                        CcloDone {
                            ticket: call.cmd.ticket,
                            op: call.cmd.op,
                            bytes: call.cmd.bytes(),
                            status: CmdStatus::Ok,
                        },
                    );
                    self.call = None;
                    self.maybe_start(ctx);
                    return;
                }
                call.blocked = Blocked::WaitAll;
                self.call = Some(call);
                self.arm_timeout(ctx);
                return;
            };
            match op {
                FwOp::WaitAll => {
                    if call.outstanding > 0 || !call.parked.is_empty() {
                        call.blocked = Blocked::WaitAll;
                        self.call = Some(call);
                        self.arm_timeout(ctx);
                        return;
                    }
                    call.ops.pop_front();
                    continue;
                }
                FwOp::Dmp(instr) => {
                    call.ops.pop_front();
                    // Rendezvous sends whose peer has not announced a
                    // landing zone yet are parked; the op stream continues
                    // (symmetric exchanges would deadlock otherwise).
                    if let SlotDst::RndzvTx { peer, tag } = instr.res {
                        let key = (peer, self.wire_tag(&call, tag));
                        let has_init = self.inits.get(&key).is_some_and(|q| !q.is_empty());
                        if !has_init {
                            call.parked.push(instr);
                            call.blocked = Blocked::Stepping;
                            self.call = Some(call);
                            ctx.send_self(ports::STEP, issue_cost, ());
                            return;
                        }
                    }
                    self.issue_dmp(ctx, &mut call, instr);
                    call.blocked = Blocked::Stepping;
                    self.call = Some(call);
                    ctx.send_self(ports::STEP, issue_cost, ());
                    return;
                }
                FwOp::RndzvRecvInit {
                    peer,
                    buf,
                    off,
                    len,
                    tag,
                } => {
                    call.ops.pop_front();
                    let addr = self.resolve_buf(&call, buf, off);
                    let MemAddr::Virt(vaddr) = addr else {
                        panic!("rendezvous landing buffers need unified virtual memory (Coyote)")
                    };
                    let comm = self.comm(call.cmd.comm);
                    let session = comm.session(peer);
                    let sig = self.signature(&call, peer, MsgType::RndzvInit, 0, tag, vaddr);
                    let _ = len; // the sender's instruction carries the length

                    ctx.stats()
                        .add("uc.issue_cycles", self.cfg.uc_op_issue_cycles);
                    ctx.send(
                        Endpoint::new(self.txsys, tx_ports::JOB),
                        issue_cost,
                        TxJob::Ctrl {
                            session,
                            sig,
                            span: call.span,
                        },
                    );
                    call.blocked = Blocked::Stepping;
                    self.call = Some(call);
                    ctx.send_self(ports::STEP, issue_cost, ());
                    return;
                }
                FwOp::WaitRndzvDone { peer, tag } => {
                    let key = (peer, self.wire_tag(&call, tag));
                    let count = self.dones.entry(key).or_insert(0);
                    if *count > 0 {
                        *count -= 1;
                        call.ops.pop_front();
                        continue;
                    }
                    call.blocked = Blocked::RndzvDone(peer, key.1);
                    self.call = Some(call);
                    self.arm_timeout(ctx);
                    return;
                }
            }
        }
    }

    /// Re-enters the step loop if the blocker cleared.
    fn unblock(&mut self, ctx: &mut Ctx<'_>) {
        let Some(call) = &self.call else {
            return;
        };
        let ready = match call.blocked {
            Blocked::Stepping => false, // a STEP event is already in flight
            Blocked::WaitAll => call.outstanding == 0 && call.parked.is_empty(),
            Blocked::RndzvDone(peer, tag) => self.dones.get(&(peer, tag)).copied().unwrap_or(0) > 0,
        };
        if ready {
            let cost = self.cfg.cycles(self.cfg.uc_notif_cycles);
            if let Some(c) = &mut self.call {
                c.blocked = Blocked::Stepping;
            }
            ctx.send_self(ports::STEP, cost, ());
        }
    }
}

impl Component for Uc {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::CMD => {
                let cmd = payload.downcast::<CcloCommand>();
                assert!(
                    self.firmware.has(cmd.op),
                    "no firmware loaded for {:?}",
                    cmd.op
                );
                let pending = self.queue.len() + usize::from(self.call.is_some());
                let full = self
                    .cfg
                    .max_pending_calls
                    .is_some_and(|cap| pending >= cap as usize);
                if full {
                    // Admission rejected: complete immediately with Busy
                    // after the decode cost (the uC still has to look at
                    // the command to turn it away). No call state is
                    // created, so the caller may retry freely.
                    self.calls_rejected += 1;
                    ctx.stats().add("uc.busy_rejections", 1);
                    ctx.send(
                        cmd.reply_to,
                        self.cfg.cycles(self.cfg.uc_cmd_decode_cycles),
                        CcloDone {
                            ticket: cmd.ticket,
                            op: cmd.op,
                            bytes: 0,
                            status: CmdStatus::Busy,
                        },
                    );
                    return;
                }
                self.queue.push_back(cmd);
                self.maybe_start(ctx);
            }
            ports::STEP => {
                payload.downcast::<()>();
                self.step(ctx);
            }
            ports::DMP_DONE => {
                let done = payload.downcast::<DmpDone>();
                self.progress_gen += 1;
                if let Some(det) = &mut self.detector {
                    det.observe(LOCAL_STREAM, ctx.now());
                }
                if self.orphans.remove(&done.ticket) {
                    // Completion of an instruction belonging to an aborted
                    // call: reap it without touching the current call.
                    self.orphans_reaped += 1;
                    return;
                }
                let call = self
                    .call
                    .as_mut()
                    .expect("DMP completion with no active call");
                assert!(
                    call.issued.remove(&done.ticket),
                    "unexpected DMP completion"
                );
                call.outstanding -= 1;
                self.unblock(ctx);
                self.arm_timeout(ctx);
            }
            ports::NOTIF => {
                let notif = payload.downcast::<UcNotif>();
                if let UcNotif::RxExhausted = notif {
                    // Pool starvation is not forward progress: it must not
                    // lapse pending watchdog tokens. It only recolors a
                    // later abort as resource exhaustion.
                    self.rx_exhausted_events += 1;
                    ctx.stats().add("uc.rx_exhausted_notifs", 1);
                    return;
                }
                self.progress_gen += 1;
                if let Some(det) = &mut self.detector {
                    let src = match &notif {
                        UcNotif::RndzvInit(sig) | UcNotif::RndzvDone(sig) => sig.src_rank,
                        UcNotif::RxExhausted => unreachable!("handled above"),
                    };
                    det.observe(src, ctx.now());
                }
                ctx.stats().add("uc.notifs", 1);
                if ctx.spans_enabled() {
                    if let Some(call) = &self.call {
                        ctx.span_instant("uc.notif", call.span);
                    }
                }
                match notif {
                    UcNotif::RxExhausted => unreachable!("handled above"),
                    UcNotif::RndzvInit(sig) => {
                        self.inits
                            .entry((sig.src_rank, sig.tag))
                            .or_default()
                            .push_back(sig.addr);
                        self.unpark(ctx);
                    }
                    UcNotif::RndzvDone(sig) => {
                        *self.dones.entry((sig.src_rank, sig.tag)).or_insert(0) += 1;
                    }
                }
                self.unblock(ctx);
                self.arm_timeout(ctx);
            }
            ports::TIMEOUT => {
                let token = payload.downcast::<UcTimeout>();
                let expired = match &self.call {
                    Some(call) => {
                        call.seq == token.seq
                            && self.progress_gen == token.gen
                            && call.blocked != Blocked::Stepping
                    }
                    None => false,
                };
                if expired {
                    if token.level == DetectLevel::Suspect {
                        // Soft suspicion: record it, then escalate to a
                        // Confirm deadline under the SAME progress
                        // generation — any progress before it fires still
                        // lapses the token and clears the suspicion.
                        self.suspicions += 1;
                        ctx.stats().add("uc.suspects", 1);
                        if ctx.spans_enabled() {
                            if let Some(call) = &self.call {
                                ctx.span_instant("uc.suspect", call.span);
                            }
                        }
                        self.arm_timeout_at(ctx, DetectLevel::Confirm);
                        return;
                    }
                    // A watchdog expiry while the eager pool ran dry during
                    // the call is local starvation, not remote silence.
                    let status = if self.rx_exhausted_events > 0 {
                        CmdStatus::ResourceExhausted
                    } else {
                        CmdStatus::TimedOut
                    };
                    self.abort_call(ctx, status);
                }
            }
            ports::FAILOVER => {
                let fo = payload.downcast::<TransportFailover>();
                self.rendezvous_capable = fo.rendezvous_capable;
                self.reliable = fo.reliable;
                self.failovers_observed += 1;
                ctx.stats().add("uc.transport_failovers", 1);
            }
            other => panic!("uC has no port {other:?}"),
        }
    }

    fn parked_work(&self) -> Option<ParkedWork> {
        let call = self.call.as_ref()?;
        let op = match call.blocked {
            Blocked::Stepping => format!("{:?}: issuing ops", call.cmd.op),
            Blocked::WaitAll => format!(
                "{:?}: WaitAll ({} DMP ops outstanding, {} parked rendezvous sends)",
                call.cmd.op,
                call.outstanding,
                call.parked.len()
            ),
            Blocked::RndzvDone(peer, tag) => format!(
                "{:?}: waiting rendezvous done from rank {peer} (wire tag {tag:#x})",
                call.cmd.op
            ),
        };
        Some(ParkedWork {
            rank: Some(call.env.rank),
            op,
        })
    }

    fn resource_state(&self) -> Option<ResourceState> {
        let pending = self.queue.len() as u64 + u64::from(self.call.is_some());
        if pending == 0 && self.cfg.max_pending_calls.is_none() {
            return None;
        }
        Some(ResourceState::gauges_only(vec![ResourceGauge {
            name: self.resource.clone(),
            used: pending,
            capacity: self.cfg.max_pending_calls.map(u64::from),
        }]))
    }

    fn state_digest(&self) -> Option<u64> {
        // Call lifecycle totals plus admission/abort accounting: the
        // control plane's entire externally-visible trajectory.
        let mut h = 0u64;
        for v in [
            self.calls_completed,
            self.calls_aborted,
            self.calls_rejected,
            self.orphans_reaped,
            self.failovers_observed,
            self.rx_exhausted_events,
            self.next_ticket,
            self.call_seq,
            self.queue.len() as u64,
            self.orphans.len() as u64,
            self.suspicions,
        ] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        if let Some(det) = &self.detector {
            det.fold_digest(&mut h);
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CcloConfig;
    use crate::firmware::{FirmwareTable, Place, Sched};
    use crate::txsys::TxJob;
    use accl_mem::MemTarget;
    use accl_net::NodeAddr;
    use accl_poe::iface::SessionId;
    use accl_sim::prelude::{Endpoint, Mailbox, Simulator, Time};
    use std::sync::Arc;

    /// A harness wiring a uC to mailboxes standing in for the DMP and Tx
    /// system, so control-plane behaviour can be observed in isolation.
    struct Harness {
        sim: Simulator,
        uc: ComponentId,
        dmp: ComponentId,
        #[allow(dead_code)] // kept for tests that grow Tx-job checks
        txsys: ComponentId,
        done: ComponentId,
        rbm: ComponentId,
    }

    fn harness(rendezvous: bool) -> Harness {
        harness_with(rendezvous, CcloConfig::default())
    }

    fn harness_with(rendezvous: bool, cfg: CcloConfig) -> Harness {
        let mut sim = Simulator::new(0);
        let dmp = sim.add("dmp", Mailbox::<Microcode>::new());
        let txsys = sim.add("txsys", Mailbox::<TxJob>::new());
        let done = sim.add("done", Mailbox::<crate::command::CcloDone>::new());
        let rbm = sim.add("rbm", Mailbox::<crate::rbm::RbmPurge>::new());
        let mut uc = Uc::new(
            cfg,
            FirmwareTable::stock(),
            dmp,
            txsys,
            rendezvous,
            true,
            MemAddr::Phys(MemTarget::Device, 0x4000_0000),
        );
        uc.set_rbm(rbm);
        uc.set_communicator(
            0,
            CommunicatorCfg {
                rank: 0,
                peers: vec![
                    (NodeAddr(0), SessionId(0)),
                    (NodeAddr(1), SessionId(1)),
                    (NodeAddr(2), SessionId(2)),
                ],
            },
        );
        let uc = sim.add("uc", uc);
        Harness {
            sim,
            uc,
            dmp,
            txsys,
            done,
            rbm,
        }
    }

    fn cmd(h: &Harness, op: CollOp, count: u64, root: u32, sync: SyncProto) -> CcloCommand {
        CcloCommand {
            op,
            count,
            dtype: crate::msg::DType::I32,
            root,
            tag: 3,
            comm: 0,
            func: crate::msg::ReduceFn::Sum,
            src: DataLoc::Mem(MemAddr::Phys(MemTarget::Device, 0x1000)),
            dst: DataLoc::Mem(MemAddr::Phys(MemTarget::Device, 0x2000)),
            sync,
            reply_to: Endpoint::of(h.done),
            ticket: 9,
            span: SpanId::NONE,
        }
    }

    #[test]
    fn nop_completes_after_decode_cost() {
        let mut h = harness(false);
        let mut c = cmd(&h, CollOp::Nop, 0, 0, SyncProto::Auto);
        c.src = DataLoc::None;
        c.dst = DataLoc::None;
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 1);
        assert_eq!(done.items()[0].1.ticket, 9);
        // Decode (100 cy @ 250 MHz = 0.4 us) + completion issue cost.
        let t = done.items()[0].0.as_us_f64();
        assert!((0.3..1.5).contains(&t), "NOP at {t} us");
        assert_eq!(h.sim.component::<Uc>(h.uc).calls_completed(), 1);
    }

    #[test]
    fn eager_send_issues_one_microcode_with_signature() {
        let mut h = harness(false);
        let c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        h.sim.run();
        let mc = h.sim.component::<Mailbox<Microcode>>(h.dmp);
        assert_eq!(mc.len(), 1);
        let m = &mc.items()[0].1;
        assert_eq!(m.len, 1024);
        match &m.res {
            RDst::Eager { session, sig } => {
                assert_eq!(*session, SessionId(1));
                assert_eq!(sig.src_rank, 0);
                assert_eq!(sig.dst_rank, 1);
                assert_eq!(sig.payload_len, 1024);
                // Tag namespaced under the user tag.
                assert_eq!(sig.tag >> 32, 3);
            }
            other => panic!("expected eager result, got {other:?}"),
        }
        // The call is still open until the DMP reports completion.
        assert_eq!(
            h.sim
                .component::<Mailbox<crate::command::CcloDone>>(h.done)
                .len(),
            0
        );
        let ticket = mc.items()[0].1.ticket;
        h.sim.post(
            Endpoint::new(h.uc, ports::DMP_DONE),
            h.sim.now(),
            DmpDone { ticket },
        );
        h.sim.run();
        assert_eq!(
            h.sim
                .component::<Mailbox<crate::command::CcloDone>>(h.done)
                .len(),
            1
        );
    }

    #[test]
    fn rendezvous_send_parks_until_init_and_issues_in_order() {
        let mut h = harness(true);
        // A bcast from rank 0 over 3 ranks, rendezvous: two RndzvTx sends
        // (to ranks 1 and 2, in one-to-all order 1 then 2... with 3 ranks
        // the selection is OneToAll).
        let c = cmd(&h, CollOp::Bcast, 4096, 0, SyncProto::Rendezvous);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        h.sim.run();
        // No init yet: nothing issued, both parked.
        assert_eq!(h.sim.component::<Mailbox<Microcode>>(h.dmp).len(), 0);
        // Rank 2's init arrives FIRST — but program order sends to rank 1
        // first, so nothing can issue yet (in-order unparking).
        let init = |src_rank: u32, tag_low: u64| {
            crate::rxsys::UcNotif::RndzvInit(crate::msg::MsgSignature {
                src_rank,
                dst_rank: 0,
                mtype: crate::msg::MsgType::RndzvInit,
                payload_len: 0,
                tag: (3 << 32) | tag_low,
                seq: 0,
                addr: 0xbeef_0000,
                comm: 0,
            })
        };
        h.sim
            .post(Endpoint::new(h.uc, ports::NOTIF), h.sim.now(), init(2, 2));
        h.sim.run();
        assert_eq!(
            h.sim.component::<Mailbox<Microcode>>(h.dmp).len(),
            0,
            "head-of-queue send (to rank 1) must gate later sends"
        );
        // Rank 1's init arrives: both issue, in program order.
        h.sim
            .post(Endpoint::new(h.uc, ports::NOTIF), h.sim.now(), init(1, 1));
        h.sim.run();
        let mc = h.sim.component::<Mailbox<Microcode>>(h.dmp);
        assert_eq!(mc.len(), 2);
        let sessions: Vec<SessionId> = mc
            .values()
            .map(|m| match &m.res {
                RDst::Rndzv { session, .. } => *session,
                other => panic!("expected rendezvous result, got {other:?}"),
            })
            .collect();
        assert_eq!(sessions, vec![SessionId(1), SessionId(2)]);
    }

    #[test]
    fn commands_queue_fifo_per_engine() {
        let mut h = harness(false);
        let c1 = cmd(&h, CollOp::Send, 16, 1, SyncProto::Eager);
        let mut c2 = cmd(&h, CollOp::Nop, 0, 0, SyncProto::Auto);
        c2.src = DataLoc::None;
        c2.dst = DataLoc::None;
        c2.ticket = 10;
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c1);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c2);
        h.sim.run();
        // The NOP cannot complete before the send's DMP work finishes.
        assert_eq!(
            h.sim
                .component::<Mailbox<crate::command::CcloDone>>(h.done)
                .len(),
            0
        );
        let ticket = h.sim.component::<Mailbox<Microcode>>(h.dmp).items()[0]
            .1
            .ticket;
        h.sim.post(
            Endpoint::new(h.uc, ports::DMP_DONE),
            h.sim.now(),
            DmpDone { ticket },
        );
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 2);
        assert_eq!(done.items()[0].1.ticket, 9);
        assert_eq!(done.items()[1].1.ticket, 10);
    }

    #[test]
    #[should_panic(expected = "communicator 5 not configured")]
    fn unknown_communicator_panics() {
        let mut h = harness(false);
        let mut c = cmd(&h, CollOp::Send, 16, 1, SyncProto::Eager);
        c.comm = 5;
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        h.sim.run();
    }

    fn timeout_cfg(us: u64) -> CcloConfig {
        CcloConfig {
            collective_timeout_us: Some(us),
            ..CcloConfig::default()
        }
    }

    #[test]
    fn waitall_timeout_aborts_with_error_completion() {
        let mut h = harness_with(false, timeout_cfg(50));
        let c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        let out = h.sim.run();
        assert_eq!(out, accl_sim::sim::RunOutcome::Drained);
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 1);
        let (at, d) = &done.items()[0];
        assert_eq!(d.ticket, 9);
        assert_eq!(d.status, crate::command::CmdStatus::TimedOut);
        assert!(at.as_us_f64() >= 50.0, "aborted at {} us", at.as_us_f64());
        assert_eq!(h.sim.component::<Uc>(h.uc).calls_aborted(), 1);
        assert_eq!(h.sim.component::<Uc>(h.uc).calls_completed(), 0);
        // The abort released the call's eager state at the RBM.
        let purges = h.sim.component::<Mailbox<crate::rbm::RbmPurge>>(h.rbm);
        assert_eq!(purges.len(), 1);
        assert_eq!(purges.items()[0].1.user_tag, 3);
        // A straggling DMP completion for the aborted instruction is
        // reaped, not misattributed to a later call.
        let ticket = h.sim.component::<Mailbox<Microcode>>(h.dmp).items()[0]
            .1
            .ticket;
        h.sim.post(
            Endpoint::new(h.uc, ports::DMP_DONE),
            h.sim.now(),
            DmpDone { ticket },
        );
        h.sim.run();
        assert_eq!(h.sim.component::<Uc>(h.uc).orphans_reaped(), 1);
    }

    #[test]
    fn rendezvous_wait_done_times_out() {
        // Rank 0 is a bcast *receiver* (root = 1): it announces its landing
        // buffer and blocks in WaitRndzvDone. The peer's WRITE never
        // completes, so the watchdog aborts the call.
        let mut h = harness_with(true, timeout_cfg(50));
        let mut c = cmd(&h, CollOp::Bcast, 4096, 1, SyncProto::Rendezvous);
        c.dst = DataLoc::Mem(MemAddr::Virt(0x2000));
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 1);
        assert_eq!(
            done.items()[0].1.status,
            crate::command::CmdStatus::TimedOut
        );
        assert_eq!(h.sim.component::<Uc>(h.uc).calls_aborted(), 1);
    }

    #[test]
    fn abort_unblocks_next_queued_command() {
        let mut h = harness_with(false, timeout_cfg(50));
        let c1 = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        let mut c2 = cmd(&h, CollOp::Nop, 0, 0, SyncProto::Auto);
        c2.src = DataLoc::None;
        c2.dst = DataLoc::None;
        c2.ticket = 10;
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c1);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c2);
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 2);
        assert_eq!(done.items()[0].1.ticket, 9);
        assert_eq!(
            done.items()[0].1.status,
            crate::command::CmdStatus::TimedOut
        );
        assert_eq!(done.items()[1].1.ticket, 10);
        assert_eq!(done.items()[1].1.status, crate::command::CmdStatus::Ok);
    }

    #[test]
    fn progress_rearms_the_watchdog() {
        // A 3-rank eager ring gather at the root issues several DMP ops;
        // completions trickling in within the timeout keep the call alive
        // even though total runtime exceeds the timeout.
        let mut h = harness_with(false, timeout_cfg(50));
        let c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        // Let the uC issue and block, then complete the DMP op at 40 us —
        // inside the window.
        h.sim.run_until(Time::from_us(40));
        let ticket = h.sim.component::<Mailbox<Microcode>>(h.dmp).items()[0]
            .1
            .ticket;
        h.sim.post(
            Endpoint::new(h.uc, ports::DMP_DONE),
            Time::from_us(40),
            DmpDone { ticket },
        );
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 1);
        assert_eq!(done.items()[0].1.status, crate::command::CmdStatus::Ok);
        assert_eq!(h.sim.component::<Uc>(h.uc).calls_aborted(), 0);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let cfg = CcloConfig {
            max_pending_calls: Some(1),
            ..CcloConfig::default()
        };
        let mut h = harness_with(false, cfg);
        let c1 = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        let mut c2 = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        c2.ticket = 10;
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c1);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c2);
        h.sim.run();
        // The second command bounced immediately with Busy while the first
        // is still in flight.
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 1);
        assert_eq!(done.items()[0].1.ticket, 10);
        assert_eq!(done.items()[0].1.status, crate::command::CmdStatus::Busy);
        assert_eq!(done.items()[0].1.bytes, 0);
        assert_eq!(h.sim.component::<Uc>(h.uc).calls_rejected(), 1);
        // The first command is unaffected and completes once its DMP work
        // finishes.
        let ticket = h.sim.component::<Mailbox<Microcode>>(h.dmp).items()[0]
            .1
            .ticket;
        h.sim.post(
            Endpoint::new(h.uc, ports::DMP_DONE),
            h.sim.now(),
            DmpDone { ticket },
        );
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 2);
        assert_eq!(done.items()[1].1.ticket, 9);
        assert_eq!(done.items()[1].1.status, crate::command::CmdStatus::Ok);
    }

    #[test]
    fn rx_exhaustion_classifies_watchdog_abort() {
        let mut h = harness_with(false, timeout_cfg(50));
        let c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        // The RBM reports the eager pool dry while the call is blocked;
        // the notification must NOT count as progress (the watchdog still
        // fires) but recolors the abort as resource exhaustion.
        h.sim.post(
            Endpoint::new(h.uc, ports::NOTIF),
            Time::from_us(10),
            crate::rxsys::UcNotif::RxExhausted,
        );
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 1);
        assert_eq!(
            done.items()[0].1.status,
            crate::command::CmdStatus::ResourceExhausted
        );
        assert_eq!(h.sim.component::<Uc>(h.uc).calls_aborted(), 1);
    }

    #[test]
    fn jobq_gauge_reports_occupancy_against_cap() {
        let cfg = CcloConfig {
            max_pending_calls: Some(4),
            ..CcloConfig::default()
        };
        let mut h = harness_with(false, cfg);
        let c1 = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        let mut c2 = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        c2.ticket = 10;
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c1);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c2);
        h.sim.run();
        let st = h
            .sim
            .component::<Uc>(h.uc)
            .resource_state()
            .expect("capped queue must publish a gauge");
        assert_eq!(st.gauges.len(), 1);
        assert_eq!(st.gauges[0].name, "cclo.jobq");
        assert_eq!(st.gauges[0].used, 2); // one active + one queued
        assert_eq!(st.gauges[0].capacity, Some(4));
    }

    #[test]
    fn stall_watchdog_names_blocked_collective_when_timeouts_disabled() {
        let mut h = harness(false);
        let c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        let out = h.sim.run();
        let accl_sim::sim::RunOutcome::Stalled(report) = out else {
            panic!("expected a stall report, got {out:?}");
        };
        assert_eq!(report.component, "uc");
        assert_eq!(report.rank, Some(0));
        assert!(
            report.op.contains("WaitAll"),
            "report should name the parked op: {}",
            report.op
        );
    }

    fn adaptive_cfg(cap_us: u64) -> CcloConfig {
        CcloConfig {
            adaptive_watchdog: Some(crate::config::AdaptiveWatchdogCfg {
                cap_us,
                ..crate::config::AdaptiveWatchdogCfg::default()
            }),
            ..CcloConfig::default()
        }
    }

    #[test]
    fn adaptive_watchdog_suspects_then_aborts_on_silence() {
        // No history, no fixed timeout: the detector falls back to its cap
        // (50 us). Silence first raises a suspicion at ~50 us, then the
        // Confirm deadline fires and aborts — two levels, one abort.
        let mut h = harness_with(false, adaptive_cfg(50));
        let c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        let out = h.sim.run();
        assert_eq!(out, accl_sim::sim::RunOutcome::Drained);
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 1);
        let (at, d) = &done.items()[0];
        assert_eq!(d.status, crate::command::CmdStatus::TimedOut);
        // Suspect at ~50 us, confirm 50 us later: abort no earlier than
        // 100 us (strictly after where a single-level 50 us abort lands).
        assert!(at.as_us_f64() >= 100.0, "aborted at {} us", at.as_us_f64());
        let uc = h.sim.component::<Uc>(h.uc);
        assert_eq!(uc.suspicions(), 1);
        assert_eq!(uc.calls_aborted(), 1);
    }

    #[test]
    fn progress_after_suspicion_cancels_the_confirm() {
        // The suspect level must be recoverable: progress between the
        // Suspect and Confirm firings completes the call normally.
        let mut h = harness_with(false, adaptive_cfg(50));
        let c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        // Run past the suspect deadline (~50 us) but short of confirm
        // (~100 us), then complete the DMP op.
        h.sim.run_until(Time::from_us(70));
        let ticket = h.sim.component::<Mailbox<Microcode>>(h.dmp).items()[0]
            .1
            .ticket;
        h.sim.post(
            Endpoint::new(h.uc, ports::DMP_DONE),
            Time::from_us(70),
            DmpDone { ticket },
        );
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 1);
        assert_eq!(done.items()[0].1.status, crate::command::CmdStatus::Ok);
        let uc = h.sim.component::<Uc>(h.uc);
        assert_eq!(uc.suspicions(), 1, "the soft suspicion was recorded");
        assert_eq!(uc.calls_aborted(), 0, "but nothing was aborted");
    }

    #[test]
    fn adaptive_watchdog_learns_slow_cadence_and_stays_quiet() {
        // Back-to-back sends completed at a slow, steady 200 us cadence:
        // once the local-completion stream has min_samples gaps, the
        // adaptive deadline tracks mean + margin and no suspicion fires —
        // where a fixed 50 us watchdog would have aborted every call.
        let mut h = harness_with(false, adaptive_cfg(100_000));
        for i in 0..8u64 {
            let mut c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
            c.ticket = 100 + i;
            h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        }
        for i in 0..8u64 {
            let at = Time::from_us(200 * (i + 1));
            h.sim.run_until(at);
            let mc = h.sim.component::<Mailbox<Microcode>>(h.dmp);
            assert_eq!(mc.len() as u64, i + 1, "call {i} should have issued");
            let ticket = mc.items()[i as usize].1.ticket;
            h.sim
                .post(Endpoint::new(h.uc, ports::DMP_DONE), at, DmpDone { ticket });
        }
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        assert_eq!(done.len(), 8);
        assert!(done
            .values()
            .all(|d| d.status == crate::command::CmdStatus::Ok));
        let uc = h.sim.component::<Uc>(h.uc);
        assert_eq!(uc.calls_aborted(), 0);
        assert_eq!(
            uc.suspicions(),
            0,
            "steady 200 us cadence must not raise suspicion once learned"
        );
    }

    #[test]
    fn fixed_watchdog_unchanged_when_adaptive_unset() {
        // Guard for the compatibility promise: with `adaptive_watchdog:
        // None` the fixed threshold aborts exactly as before, with no
        // suspect level in between.
        let mut h = harness_with(false, timeout_cfg(50));
        let c = cmd(&h, CollOp::Send, 256, 1, SyncProto::Eager);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        h.sim.run();
        let done = h.sim.component::<Mailbox<crate::command::CcloDone>>(h.done);
        let (at, d) = &done.items()[0];
        assert_eq!(d.status, crate::command::CmdStatus::TimedOut);
        assert!(
            (50.0..60.0).contains(&at.as_us_f64()),
            "single-level abort right at the fixed threshold, got {} us",
            at.as_us_f64()
        );
        assert_eq!(h.sim.component::<Uc>(h.uc).suspicions(), 0);
    }

    #[test]
    fn custom_firmware_slot_is_callable_after_load() {
        struct Noop;
        impl crate::firmware::CollectiveProgram for Noop {
            fn name(&self) -> &str {
                "noop"
            }
            fn build(&self, _env: &crate::firmware::FwEnv, s: &mut Sched) {
                // A local copy so the schedule is non-empty.
                s.copy(Place::src(0), Place::dst(0), 64);
            }
        }
        let mut h = harness(false);
        h.sim
            .component_mut::<Uc>(h.uc)
            .load_firmware(CollOp::Custom(7), Arc::new(Noop));
        let c = cmd(&h, CollOp::Custom(7), 16, 0, SyncProto::Auto);
        h.sim.post(Endpoint::new(h.uc, ports::CMD), Time::ZERO, c);
        h.sim.run();
        assert_eq!(h.sim.component::<Mailbox<Microcode>>(h.dmp).len(), 1);
    }
}
