//! Exact causal critical paths and integer-exact latency attribution.
//!
//! The walk answers "what chain of work determined this collective's
//! end-to-end time?" by moving a time cursor backward from the root
//! span's end. At every step the span currently holding the cursor is
//! charged for the interval back to its latest-finishing unvisited
//! dependency (tree child or flow anchor), and the walk descends into
//! that dependency; when none remains, the span is charged back to its
//! own begin and the walk pops to its predecessor on the descent stack.
//! The emitted segments are contiguous and tile `[begin(root),
//! end(root)]` exactly, so the per-`(component, span type)` attribution
//! table sums to the end-to-end latency to the picosecond — asserted,
//! not rounded.
//!
//! Determinism: candidate choice is a pure max over `(end, begin, id)`
//! of content-derived span ids, so bit-identical traces (the replay
//! contract across worker counts and queue kinds) yield bit-identical
//! paths and digests.

use std::collections::BTreeSet;

use crate::graph::SpanGraph;
use crate::model::TraceDoc;

/// One interval of a critical path, charged to one span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// The span on the path during this interval.
    pub span: u64,
    /// Its component index.
    pub comp: u32,
    /// Its span name.
    pub name: String,
    /// Interval start, picoseconds (inclusive).
    pub from_ps: u64,
    /// Interval end, picoseconds (exclusive).
    pub to_ps: u64,
}

/// The critical path of one root span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The root span id.
    pub root: u64,
    /// Root begin, picoseconds.
    pub begin_ps: u64,
    /// Root end, picoseconds.
    pub end_ps: u64,
    /// Path segments in chronological order; contiguous, tiling
    /// `[begin_ps, end_ps]` exactly.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// End-to-end duration of the root.
    pub fn total_ps(&self) -> u64 {
        self.end_ps - self.begin_ps
    }

    /// Sum of all segment durations (equals [`CriticalPath::total_ps`]
    /// by construction; exposed so tests can assert exactness).
    pub fn attributed_ps(&self) -> u64 {
        self.segments.iter().map(|s| s.to_ps - s.from_ps).sum()
    }
}

/// Walks the exact critical path of `root`. Returns `None` when the root
/// has no begin/end pair in the graph.
pub fn critical_path(g: &SpanGraph, root: u64) -> Option<CriticalPath> {
    let root_info = g.spans.get(&root)?;
    let t0 = root_info.begin_ps;
    let t1 = root_info.end_ps?;
    let mut segments: Vec<Segment> = Vec::new();
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    visited.insert(root);
    let mut stack: Vec<u64> = vec![root];
    let mut cursor = t1;
    // Each iteration either shrinks `[t0, cursor]`, grows `visited`, or
    // shrinks the stack; the bound is a safety net, not a correctness
    // device.
    let mut fuel = 4 * g.spans.len() + 8;
    while let Some(&cur) = stack.last() {
        fuel = fuel.checked_sub(1).expect("critical-path walk diverged");
        let info = &g.spans[&cur];
        // Latest-finishing unvisited dependency that completes at or
        // before the cursor and overlaps the root window.
        let mut best: Option<(u64, u64, u64)> = None; // (end, begin, id)
        let deps = g
            .children
            .get(&cur)
            .into_iter()
            .flatten()
            .chain(g.joins.get(&cur).into_iter().flatten());
        for &dep in deps {
            if visited.contains(&dep) {
                continue;
            }
            let Some(d) = g.spans.get(&dep) else {
                continue;
            };
            let Some(end) = d.end_ps else {
                continue;
            };
            if end > cursor || end <= t0 {
                continue;
            }
            let key = (end, d.begin_ps, dep);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        match best {
            Some((dep_end, _, dep)) => {
                // `cur` is on the path from the dependency's completion
                // up to the cursor; then the dependency takes over.
                let lo = dep_end.max(t0);
                if cursor > lo {
                    segments.push(Segment {
                        span: cur,
                        comp: info.comp,
                        name: info.name.clone(),
                        from_ps: lo,
                        to_ps: cursor,
                    });
                    cursor = lo;
                }
                visited.insert(dep);
                stack.push(dep);
            }
            None => {
                // Nothing below explains the interval: `cur` itself is
                // responsible back to its begin, then its predecessor
                // resumes.
                let lo = info.begin_ps.max(t0);
                if cursor > lo {
                    segments.push(Segment {
                        span: cur,
                        comp: info.comp,
                        name: info.name.clone(),
                        from_ps: lo,
                        to_ps: cursor,
                    });
                    cursor = lo;
                }
                stack.pop();
            }
        }
        if cursor == t0 {
            break;
        }
    }
    // The stack bottoms out at the root, whose begin is t0, so the final
    // pop (or the early break) always lands the cursor on t0.
    debug_assert_eq!(cursor, t0, "critical path did not reach the root begin");
    segments.reverse();
    Some(CriticalPath {
        root,
        begin_ps: t0,
        end_ps: t1,
        segments,
    })
}

/// One row of the attribution table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionRow {
    /// Component kind (rank prefix stripped, e.g. `poe.tx`).
    pub comp_kind: String,
    /// Span name.
    pub name: String,
    /// Rank the component belongs to (`None` for harness components).
    pub rank: Option<u32>,
    /// Critical-path time charged, picoseconds.
    pub ps: u64,
}

/// Critical-path latency attribution over one or more roots, grouped by
/// `(component kind, span type, rank)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Rows, largest share first (ties by key for determinism).
    pub rows: Vec<AttributionRow>,
    /// Sum of all root durations, picoseconds. Equals the sum of all
    /// rows by construction.
    pub total_ps: u64,
}

impl Attribution {
    /// Sum of all rows (equals [`Attribution::total_ps`] by
    /// construction; exposed for exactness assertions).
    pub fn attributed_ps(&self) -> u64 {
        self.rows.iter().map(|r| r.ps).sum()
    }

    /// Renders an aligned human-readable table.
    pub fn table(&self, title: &str) -> String {
        let total = self.total_ps.max(1);
        let mut out = format!("{title}\n");
        out.push_str(&format!(
            "  {:<22} {:<18} {:>5} {:>14} {:>6}\n",
            "component", "span", "rank", "time(ps)", "share"
        ));
        for r in &self.rows {
            let rank = r.rank.map(|r| r.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "  {:<22} {:<18} {:>5} {:>14} {:>5}%\n",
                r.comp_kind,
                r.name,
                rank,
                r.ps,
                u128::from(r.ps) * 100 / u128::from(total)
            ));
        }
        out.push_str(&format!(
            "  {:<22} {:<18} {:>5} {:>14} {:>5}%\n",
            "total", "", "", self.total_ps, 100
        ));
        out
    }
}

/// Aggregates critical-path segments into the attribution table.
pub fn attribute(doc: &TraceDoc, paths: &[CriticalPath]) -> Attribution {
    use std::collections::BTreeMap;
    let mut by_key: BTreeMap<(String, String, Option<u32>), u64> = BTreeMap::new();
    let mut total = 0u64;
    for p in paths {
        total += p.total_ps();
        for s in &p.segments {
            let key = (
                doc.comp_kind(s.comp).to_string(),
                s.name.clone(),
                doc.rank_of(s.comp),
            );
            *by_key.entry(key).or_insert(0) += s.to_ps - s.from_ps;
        }
    }
    let mut rows: Vec<AttributionRow> = by_key
        .into_iter()
        .map(|((comp_kind, name, rank), ps)| AttributionRow {
            comp_kind,
            name,
            rank,
            ps,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.ps.cmp(&a.ps)
            .then_with(|| (&a.comp_kind, &a.name, a.rank).cmp(&(&b.comp_kind, &b.name, b.rank)))
    });
    Attribution {
        rows,
        total_ps: total,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Order-sensitive FNV-1a digest over every segment of every path. Two
/// runs with bit-identical span streams produce equal digests; any
/// change to what is on the critical path — not merely how long the run
/// took — changes it. This is the value the CI regression gate pins.
pub fn critical_path_digest(paths: &[CriticalPath]) -> u64 {
    let mut ordered: Vec<&CriticalPath> = paths.iter().collect();
    ordered.sort_by_key(|p| (p.begin_ps, p.root));
    let mut h = FNV_OFFSET;
    for p in ordered {
        fnv1a(&mut h, &p.root.to_le_bytes());
        fnv1a(&mut h, &p.begin_ps.to_le_bytes());
        fnv1a(&mut h, &p.end_ps.to_le_bytes());
        for s in &p.segments {
            fnv1a(&mut h, &s.span.to_le_bytes());
            fnv1a(&mut h, &s.comp.to_le_bytes());
            fnv1a(&mut h, s.name.as_bytes());
            fnv1a(&mut h, &s.from_ps.to_le_bytes());
            fnv1a(&mut h, &s.to_ps.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ObsEvent, ObsKind, TraceDoc};

    fn ev(time_ps: u64, kind: ObsKind, id: u64, parent: u64, name: &str) -> ObsEvent {
        ObsEvent {
            time_ps,
            kind,
            id,
            parent,
            comp: 0,
            name: name.to_string(),
        }
    }

    fn doc(events: Vec<ObsEvent>) -> TraceDoc {
        TraceDoc {
            components: vec!["n0.test".to_string()],
            events,
            ..TraceDoc::default()
        }
    }

    #[test]
    fn path_tiles_root_window_exactly() {
        use ObsKind::{Begin, End};
        // root [0,100]; child a [10,40]; child b [30,70]. b finishes
        // last so it owns [30,70]; a ends *after* b began, so it was
        // concurrent, not blocking — the head [0,30] stays with the
        // root.
        let d = doc(vec![
            ev(0, Begin, 1, 0, "driver.coll"),
            ev(10, Begin, 2, 1, "uc.decode"),
            ev(30, Begin, 3, 1, "net.wire"),
            ev(40, End, 2, 0, ""),
            ev(70, End, 3, 0, ""),
            ev(100, End, 1, 0, ""),
        ]);
        let g = SpanGraph::build(&d);
        let p = critical_path(&g, 1).unwrap();
        assert_eq!(p.total_ps(), 100);
        assert_eq!(p.attributed_ps(), p.total_ps());
        // Chronological, contiguous.
        let mut cursor = p.begin_ps;
        for s in &p.segments {
            assert_eq!(s.from_ps, cursor);
            assert!(s.to_ps > s.from_ps);
            cursor = s.to_ps;
        }
        assert_eq!(cursor, p.end_ps);
        let names: Vec<(&str, u64, u64)> = p
            .segments
            .iter()
            .map(|s| (s.name.as_str(), s.from_ps, s.to_ps))
            .collect();
        assert_eq!(
            names,
            vec![
                ("driver.coll", 0, 30),
                ("net.wire", 30, 70),
                ("driver.coll", 70, 100),
            ]
        );
    }

    #[test]
    fn flow_edges_pull_remote_work_onto_the_path() {
        use ObsKind::{Begin, End, FlowBegin, FlowEnd};
        // root [0,100] with local child rx [80,95]; a remote chain
        // tx [5,75] flows into rx. Without the flow edge the interval
        // [0,80] falls to the root; with it, tx explains [5,75].
        let d = doc(vec![
            ev(0, Begin, 1, 0, "driver.coll"),
            ev(5, Begin, 2, 0, "tx.seg"), // parentless remote producer
            ev(70, FlowBegin, 100, 2, "poe.flow"),
            ev(75, End, 2, 0, ""),
            ev(80, Begin, 3, 1, "rx.chunk"),
            ev(80, FlowEnd, 100, 3, "poe.flow"),
            ev(95, End, 3, 0, ""),
            ev(100, End, 1, 0, ""),
        ]);
        let g = SpanGraph::build(&d);
        let p = critical_path(&g, 1).unwrap();
        assert_eq!(p.attributed_ps(), 100);
        let names: Vec<(&str, u64, u64)> = p
            .segments
            .iter()
            .map(|s| (s.name.as_str(), s.from_ps, s.to_ps))
            .collect();
        assert_eq!(
            names,
            vec![
                ("driver.coll", 0, 5),
                ("tx.seg", 5, 75),
                ("rx.chunk", 75, 95),
                ("driver.coll", 95, 100),
            ]
        );
    }

    #[test]
    fn attribution_sums_to_total_and_digest_is_stable() {
        use ObsKind::{Begin, End};
        let d = doc(vec![
            ev(0, Begin, 1, 0, "driver.coll"),
            ev(10, Begin, 2, 1, "net.wire"),
            ev(60, End, 2, 0, ""),
            ev(80, End, 1, 0, ""),
        ]);
        let g = SpanGraph::build(&d);
        let p = critical_path(&g, 1).unwrap();
        let a = attribute(&d, std::slice::from_ref(&p));
        assert_eq!(a.attributed_ps(), a.total_ps);
        assert_eq!(a.total_ps, 80);
        let d1 = critical_path_digest(std::slice::from_ref(&p));
        let d2 = critical_path_digest(&[critical_path(&g, 1).unwrap()]);
        assert_eq!(d1, d2);
    }

    #[test]
    fn missing_root_yields_none() {
        let d = doc(vec![]);
        let g = SpanGraph::build(&d);
        assert!(critical_path(&g, 7).is_none());
    }
}
