//! Windowed SLO time-series rendering.
//!
//! Turns a run's [`WindowSeries`] into a per-window text report:
//! counter rates and histogram p50/p99/p999 per fixed-width sim-time
//! window. Because windows are integer-only and merged deterministically
//! across shards, the report is bit-identical across worker counts —
//! CI can diff it like any other artifact.
//!
//! Every window that completed collectives also gets an **availability**
//! column (integer milli, derived from `driver.calls` vs
//! `driver.calls_failed` — see [`crate::mttr::window_availability_milli`]),
//! so an outage-and-recovery run reads as a dip-and-return directly in
//! the time series. The derived series is addressable as the pseudo
//! metric key `availability_milli`.

use crate::model::{TraceDoc, WindowSeries};
use crate::mttr::window_availability_milli;

/// Pseudo metric key selecting the derived per-window availability.
pub const AVAILABILITY_KEY: &str = "availability_milli";

/// Renders the full series, every populated window in order.
pub fn render(doc: &TraceDoc) -> String {
    let Some(w) = &doc.windows else {
        return "no windowed metrics in this trace (capture with a window width)\n".to_string();
    };
    render_series(w)
}

/// Renders one series.
pub fn render_series(w: &WindowSeries) -> String {
    let mut out = format!(
        "window width: {} ps, {} populated windows\n",
        w.width_ps,
        w.rows.len()
    );
    for row in &w.rows {
        let start = row.idx * w.width_ps;
        out.push_str(&format!("window {} [{} ps ..):\n", row.idx, start));
        if row.counters.iter().any(|(k, _)| k == "driver.calls") {
            out.push_str(&format!(
                "  avail   {:<28} {}\n",
                AVAILABILITY_KEY,
                window_availability_milli(row)
            ));
        }
        for (k, v) in &row.counters {
            out.push_str(&format!("  counter {k:<28} {v}\n"));
        }
        for (k, v) in &row.gauges {
            out.push_str(&format!("  gauge   {k:<28} {v}\n"));
        }
        for (k, h) in &row.hists {
            out.push_str(&format!(
                "  hist    {k:<28} n={} p50={} p99={} p999={} max={}\n",
                h.count, h.p50, h.p99, h.p999, h.max
            ));
        }
    }
    out
}

/// Renders one metric's trajectory across windows: `(window start ps,
/// p50, p99, p999)` rows for a histogram, or `(window start ps, value)`
/// for a counter. Returns `None` when the metric never appears.
pub fn metric_series(w: &WindowSeries, key: &str) -> Option<String> {
    let mut out = String::new();
    let mut found = false;
    for row in &w.rows {
        let start = row.idx * w.width_ps;
        if key == AVAILABILITY_KEY {
            out.push_str(&format!("{start} {}\n", window_availability_milli(row)));
            found = true;
        } else if let Some((_, h)) = row.hists.iter().find(|(k, _)| k == key) {
            out.push_str(&format!(
                "{start} p50={} p99={} p999={} n={}\n",
                h.p50, h.p99, h.p999, h.count
            ));
            found = true;
        } else if let Some((_, v)) = row.counters.iter().find(|(k, _)| k == key) {
            out.push_str(&format!("{start} {v}\n"));
            found = true;
        }
    }
    found.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HistSummary, WindowRow};

    fn series() -> WindowSeries {
        WindowSeries {
            width_ps: 100,
            rows: vec![
                WindowRow {
                    idx: 0,
                    counters: vec![("net.frames".to_string(), 4)],
                    gauges: vec![],
                    hists: vec![(
                        "rbm.meta_wait_ps".to_string(),
                        HistSummary {
                            count: 2,
                            sum: 60,
                            min: 20,
                            max: 40,
                            p50: 32,
                            p99: 32,
                            p999: 32,
                        },
                    )],
                },
                WindowRow {
                    idx: 2,
                    counters: vec![("net.frames".to_string(), 1)],
                    gauges: vec![],
                    hists: vec![],
                },
            ],
        }
    }

    #[test]
    fn metric_series_tracks_windows() {
        let s = series();
        let frames = metric_series(&s, "net.frames").unwrap();
        assert_eq!(frames, "0 4\n200 1\n");
        let waits = metric_series(&s, "rbm.meta_wait_ps").unwrap();
        assert!(waits.starts_with("0 p50=32 p99=32"));
        assert!(metric_series(&s, "absent").is_none());
    }

    #[test]
    fn availability_renders_as_a_window_column_and_a_series() {
        let mut s = series();
        s.rows[0]
            .counters
            .insert(0, ("driver.calls".to_string(), 2));
        s.rows[0]
            .counters
            .insert(1, ("driver.calls_failed".to_string(), 1));
        let text = render_series(&s);
        assert!(text.contains("avail   availability_milli"));
        assert!(text.contains(" 500\n"), "2 calls, 1 failed -> 500 milli");
        // As a pseudo metric the derived series covers every window;
        // idle windows read fully available.
        let series = metric_series(&s, AVAILABILITY_KEY).unwrap();
        assert_eq!(series, "0 500\n200 1000\n");
    }

    #[test]
    fn render_mentions_every_window() {
        let text = render_series(&series());
        assert!(text.contains("window 0 [0 ps ..)"));
        assert!(text.contains("window 2 [200 ps ..)"));
        assert!(text.contains("counter net.frames"));
    }
}
