//! MTTR / recovery-span attribution.
//!
//! Walks a trace of a self-healing run (crash → suspect → confirm →
//! survivor reissue → rejoin) and pins each recovery milestone to the
//! span stream:
//!
//!  - **first suspect** — the earliest `uc.suspect` instant: the adaptive
//!    detector's suspect-level deadline fired but the peer was given a
//!    confirm-level grace period.
//!  - **failure confirmed** — the earliest `uc.abort` instant: a
//!    confirm-level deadline expired and a collective was aborted with a
//!    typed verdict.
//!  - **last confirmation** — the latest `uc.abort`: retries and the
//!    other survivors finish diagnosing; recovery can begin.
//!  - **service restored** — the end of the first root collective
//!    (`driver.coll`) that *starts* after the last confirmation and
//!    completes: the shrunk survivor group is doing useful work again.
//!    `suspect → restored` is the MTTR the paper-style availability
//!    argument cares about.
//!  - **full strength** — the final round: the begin/end envelope of the
//!    last completed root collective on every rank, i.e. the re-expanded
//!    world (the rejoined node included) finishing a collective.
//!
//! All arithmetic is integer picoseconds on span timestamps, so the table
//! is bit-identical across hosts, worker counts and queue kinds — CI can
//! diff it like any other artifact. Availability is summarized from the
//! same windowed counters the SLO series renders: a window is *degraded*
//! when `driver.calls_failed` ticked inside it.

use crate::model::{ObsKind, TraceDoc, WindowRow, WindowSeries};

/// One completed root collective span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Root {
    begin_ps: u64,
    end_ps: u64,
    comp: u32,
}

/// The recovery milestones extracted from one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryTimeline {
    /// Earliest `uc.suspect` instant (falls back to the first abort when
    /// the run had no suspect-level firing, e.g. a fixed watchdog).
    pub suspected_ps: u64,
    /// Earliest `uc.abort` instant.
    pub confirmed_ps: u64,
    /// Latest `uc.abort` instant.
    pub last_confirm_ps: u64,
    /// End of the first root collective that began after the last
    /// confirmation and completed.
    pub restored_ps: u64,
    /// Begin of the final (full-strength) collective round.
    pub rejoin_begin_ps: u64,
    /// End of the final collective round across every rank.
    pub full_strength_ps: u64,
}

impl RecoveryTimeline {
    /// Mean-time-to-repair: first suspicion until the survivors complete
    /// a collective again.
    pub fn mttr_ps(&self) -> u64 {
        self.restored_ps.saturating_sub(self.suspected_ps)
    }

    /// First suspicion until the re-expanded world completes a
    /// collective.
    pub fn full_recovery_ps(&self) -> u64 {
        self.full_strength_ps.saturating_sub(self.suspected_ps)
    }

    /// Renders the milestone table with per-phase deltas.
    pub fn table(&self, header: &str) -> String {
        let rows = [
            ("first suspect", self.suspected_ps),
            ("failure confirmed", self.confirmed_ps),
            ("last confirmation", self.last_confirm_ps),
            ("service restored (survivors)", self.restored_ps),
            ("rejoined round begins", self.rejoin_begin_ps),
            ("full strength restored", self.full_strength_ps),
        ];
        let mut out = format!(
            "{header}\n  {:<30} {:>16} {:>16}\n",
            "milestone", "t_ps", "+delta_ps"
        );
        let mut prev: Option<u64> = None;
        for (label, t) in rows {
            let delta = match prev {
                Some(p) => format!("{}", t.saturating_sub(p)),
                None => "-".to_string(),
            };
            out.push_str(&format!("  {label:<30} {t:>16} {delta:>16}\n"));
            prev = Some(t);
        }
        out.push_str(&format!(
            "  MTTR (suspect -> service restored): {} ps\n",
            self.mttr_ps()
        ));
        out.push_str(&format!(
            "  full recovery (suspect -> full strength): {} ps\n",
            self.full_recovery_ps()
        ));
        out
    }
}

/// All completed root `driver.coll` spans, in begin order.
fn completed_roots(doc: &TraceDoc) -> Vec<Root> {
    let mut begins: Vec<(u64, u64, u32)> = Vec::new(); // (id, begin, comp)
    let mut roots = Vec::new();
    for e in &doc.events {
        match e.kind {
            ObsKind::Begin if e.name == "driver.coll" && e.parent == 0 => {
                begins.push((e.id, e.time_ps, e.comp));
            }
            ObsKind::End => {
                if let Some(pos) = begins.iter().position(|&(id, _, _)| id == e.id) {
                    let (_, begin_ps, comp) = begins.swap_remove(pos);
                    roots.push(Root {
                        begin_ps,
                        end_ps: e.time_ps,
                        comp,
                    });
                }
            }
            _ => {}
        }
    }
    roots.sort_by_key(|r| (r.begin_ps, r.comp));
    roots
}

/// Extracts the recovery timeline, or `None` when the trace holds no
/// failure (no `uc.abort` instant) or no post-recovery collective.
pub fn analyze(doc: &TraceDoc) -> Option<RecoveryTimeline> {
    let mut suspects = Vec::new();
    let mut aborts = Vec::new();
    for e in &doc.events {
        if e.kind == ObsKind::Instant {
            match e.name.as_str() {
                "uc.suspect" => suspects.push(e.time_ps),
                "uc.abort" => aborts.push(e.time_ps),
                _ => {}
            }
        }
    }
    let confirmed_ps = *aborts.iter().min()?;
    let last_confirm_ps = *aborts.iter().max()?;
    let suspected_ps = suspects
        .iter()
        .min()
        .copied()
        .unwrap_or(confirmed_ps)
        .min(confirmed_ps);

    let roots = completed_roots(doc);
    let restored_ps = roots
        .iter()
        .filter(|r| r.begin_ps > last_confirm_ps)
        .map(|r| r.end_ps)
        .min()?;

    // The final round: every rank's *last* completed root collective.
    // After a successful rejoin that round spans the full world, the
    // restarted rank included.
    let mut last_per_comp: Vec<(u32, Root)> = Vec::new();
    for r in &roots {
        match last_per_comp.iter_mut().find(|(c, _)| *c == r.comp) {
            Some((_, best)) => {
                if (r.end_ps, r.begin_ps) > (best.end_ps, best.begin_ps) {
                    *best = *r;
                }
            }
            None => last_per_comp.push((r.comp, *r)),
        }
    }
    let rejoin_begin_ps = last_per_comp.iter().map(|(_, r)| r.begin_ps).min()?;
    let full_strength_ps = last_per_comp.iter().map(|(_, r)| r.end_ps).max()?;

    Some(RecoveryTimeline {
        suspected_ps,
        confirmed_ps,
        last_confirm_ps,
        restored_ps,
        rejoin_begin_ps,
        full_strength_ps,
    })
}

/// Integer availability of one metric window, in milli (0–1000): the
/// share of root collective completions inside the window that were not
/// failures. A window with no completions counts as fully available —
/// quiet is not an outage.
pub fn window_availability_milli(row: &WindowRow) -> u64 {
    let get = |key: &str| {
        row.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let calls: u64 = get("driver.calls");
    let failed: u64 = get("driver.calls_failed");
    if calls == 0 {
        return 1000;
    }
    calls.saturating_sub(failed) * 1000 / calls
}

/// Whole-run availability summary over the windowed series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailabilitySummary {
    /// Populated windows in the series.
    pub windows: u64,
    /// Windows in which at least one collective failed.
    pub degraded_windows: u64,
    /// Root collective completions across the run.
    pub calls: u64,
    /// Failed completions across the run.
    pub failed: u64,
}

impl AvailabilitySummary {
    /// Overall availability in milli (0–1000).
    pub fn availability_milli(&self) -> u64 {
        if self.calls == 0 {
            return 1000;
        }
        self.calls.saturating_sub(self.failed) * 1000 / self.calls
    }
}

/// Summarizes availability over a run's windowed counters.
pub fn availability(w: &WindowSeries) -> AvailabilitySummary {
    let mut s = AvailabilitySummary {
        windows: w.rows.len() as u64,
        degraded_windows: 0,
        calls: 0,
        failed: 0,
    };
    for row in &w.rows {
        let get = |key: &str| {
            row.counters
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        let calls = get("driver.calls");
        let failed = get("driver.calls_failed");
        s.calls += calls;
        s.failed += failed;
        if failed > 0 {
            s.degraded_windows += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ObsEvent;

    fn ev(time_ps: u64, kind: ObsKind, id: u64, comp: u32, name: &str) -> ObsEvent {
        ObsEvent {
            time_ps,
            kind,
            id,
            parent: 0,
            comp,
            name: name.to_string(),
        }
    }

    /// Two ranks fail a collective (suspect at 10, aborts at 20/22), the
    /// survivor reissue completes at 40, and the full-strength round on
    /// both ranks completes at 60.
    fn doc() -> TraceDoc {
        TraceDoc {
            events: vec![
                ev(1, ObsKind::Begin, 1, 0, "driver.coll"),
                ev(1, ObsKind::Begin, 2, 1, "driver.coll"),
                ev(10, ObsKind::Instant, 3, 0, "uc.suspect"),
                ev(20, ObsKind::Instant, 4, 0, "uc.abort"),
                ev(22, ObsKind::Instant, 5, 1, "uc.abort"),
                ev(23, ObsKind::End, 1, 0, "driver.coll"),
                ev(23, ObsKind::End, 2, 1, "driver.coll"),
                // Survivor reissue on rank 0 only.
                ev(30, ObsKind::Begin, 6, 0, "driver.coll"),
                ev(40, ObsKind::End, 6, 0, "driver.coll"),
                // Full-strength round on both ranks.
                ev(50, ObsKind::Begin, 7, 0, "driver.coll"),
                ev(51, ObsKind::Begin, 8, 1, "driver.coll"),
                ev(59, ObsKind::End, 7, 0, "driver.coll"),
                ev(60, ObsKind::End, 8, 1, "driver.coll"),
            ],
            ..TraceDoc::default()
        }
    }

    #[test]
    fn milestones_are_pinned_to_the_span_stream() {
        let t = analyze(&doc()).expect("timeline present");
        assert_eq!(t.suspected_ps, 10);
        assert_eq!(t.confirmed_ps, 20);
        assert_eq!(t.last_confirm_ps, 22);
        assert_eq!(t.restored_ps, 40);
        assert_eq!(t.rejoin_begin_ps, 50);
        assert_eq!(t.full_strength_ps, 60);
        assert_eq!(t.mttr_ps(), 30);
        assert_eq!(t.full_recovery_ps(), 50);
        let table = t.table("recovery timeline");
        assert!(table.contains("service restored"));
        assert!(table.contains("MTTR (suspect -> service restored): 30 ps"));
    }

    #[test]
    fn a_clean_trace_has_no_timeline() {
        let mut d = doc();
        d.events.retain(|e| e.name != "uc.abort");
        assert_eq!(analyze(&d), None);
    }

    #[test]
    fn suspect_falls_back_to_the_first_abort() {
        let mut d = doc();
        d.events.retain(|e| e.name != "uc.suspect");
        let t = analyze(&d).expect("timeline present");
        assert_eq!(t.suspected_ps, 20);
    }

    #[test]
    fn window_availability_is_integer_milli() {
        let row = WindowRow {
            idx: 0,
            counters: vec![
                ("driver.calls".to_string(), 4),
                ("driver.calls_failed".to_string(), 1),
            ],
            gauges: vec![],
            hists: vec![],
        };
        assert_eq!(window_availability_milli(&row), 750);
        let idle = WindowRow::default();
        assert_eq!(window_availability_milli(&idle), 1000);
    }

    #[test]
    fn availability_summary_counts_degraded_windows() {
        let w = WindowSeries {
            width_ps: 100,
            rows: vec![
                WindowRow {
                    idx: 0,
                    counters: vec![
                        ("driver.calls".to_string(), 2),
                        ("driver.calls_failed".to_string(), 2),
                    ],
                    gauges: vec![],
                    hists: vec![],
                },
                WindowRow {
                    idx: 5,
                    counters: vec![("driver.calls".to_string(), 2)],
                    gauges: vec![],
                    hists: vec![],
                },
            ],
        };
        let s = availability(&w);
        assert_eq!(s.windows, 2);
        assert_eq!(s.degraded_windows, 1);
        assert_eq!(s.calls, 4);
        assert_eq!(s.failed, 2);
        assert_eq!(s.availability_milli(), 500);
    }
}
