//! The span DAG: parent-child tree edges plus cross-component flow edges.
//!
//! Built once from a [`TraceDoc`]'s event stream and shared by the
//! critical-path walk and the diff. Everything is keyed by the
//! deterministic span ids, so two graphs built from bit-identical runs
//! are structurally identical.

use std::collections::BTreeMap;

use crate::model::{ObsKind, TraceDoc};

/// Static facts about one span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanInfo {
    /// Begin time, picoseconds.
    pub begin_ps: u64,
    /// End time, when the ring holds the matching `End`.
    pub end_ps: Option<u64>,
    /// Parent span id (zero for roots).
    pub parent: u64,
    /// Component index in the source [`TraceDoc`].
    pub comp: u32,
    /// Span name.
    pub name: String,
}

/// The assembled DAG.
#[derive(Debug, Default)]
pub struct SpanGraph {
    /// Every span with a recorded `Begin`, by id.
    pub spans: BTreeMap<u64, SpanInfo>,
    /// Tree edges: parent id → child ids (ascending).
    pub children: BTreeMap<u64, Vec<u64>>,
    /// Flow edges, join side: consuming span id → producing (anchor)
    /// span ids. Only flows whose begin AND end both survived in the
    /// ring become edges.
    pub joins: BTreeMap<u64, Vec<u64>>,
    /// Flow begins that never joined (emitted edge with no receive side);
    /// `(flow id, anchor span)`. Nonempty sets indicate lost frames or a
    /// missing `flow_end` call — surfaced, never silently dropped.
    pub dangling_flows: Vec<(u64, u64)>,
}

impl SpanGraph {
    /// Builds the DAG from a trace document.
    pub fn build(doc: &TraceDoc) -> SpanGraph {
        let mut g = SpanGraph::default();
        let mut flow_begin: BTreeMap<u64, u64> = BTreeMap::new(); // flow id -> anchor span
        let mut flow_end: BTreeMap<u64, u64> = BTreeMap::new(); // flow id -> join span
        for e in &doc.events {
            match e.kind {
                ObsKind::Begin => {
                    g.spans.insert(
                        e.id,
                        SpanInfo {
                            begin_ps: e.time_ps,
                            end_ps: None,
                            parent: e.parent,
                            comp: e.comp,
                            name: e.name.clone(),
                        },
                    );
                    if e.parent != 0 {
                        g.children.entry(e.parent).or_default().push(e.id);
                    }
                }
                ObsKind::End => {
                    if let Some(info) = g.spans.get_mut(&e.id) {
                        info.end_ps = Some(e.time_ps);
                    }
                }
                ObsKind::Instant => {}
                ObsKind::FlowBegin => {
                    flow_begin.insert(e.id, e.parent);
                }
                ObsKind::FlowEnd => {
                    flow_end.insert(e.id, e.parent);
                }
            }
        }
        for (flow, anchor) in &flow_begin {
            match flow_end.get(flow) {
                Some(&join) if join != 0 && *anchor != 0 => {
                    g.joins.entry(join).or_default().push(*anchor);
                }
                _ => g.dangling_flows.push((*flow, *anchor)),
            }
        }
        for kids in g.children.values_mut() {
            kids.sort_unstable();
        }
        for anchors in g.joins.values_mut() {
            anchors.sort_unstable();
        }
        g
    }

    /// Root spans — parentless, with both begin and end recorded — whose
    /// name passes `filter`, ordered by `(begin, id)`.
    pub fn roots(&self, filter: impl Fn(&str) -> bool) -> Vec<u64> {
        let mut roots: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|(_, s)| s.parent == 0 && s.end_ps.is_some() && filter(&s.name))
            .map(|(&id, s)| (s.begin_ps, id))
            .collect();
        roots.sort_unstable();
        roots.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ObsEvent;

    fn ev(time_ps: u64, kind: ObsKind, id: u64, parent: u64, name: &str) -> ObsEvent {
        ObsEvent {
            time_ps,
            kind,
            id,
            parent,
            comp: 0,
            name: name.to_string(),
        }
    }

    #[test]
    fn builds_tree_and_flow_edges() {
        use ObsKind::{Begin, End, FlowBegin, FlowEnd};
        let doc = TraceDoc {
            events: vec![
                ev(0, Begin, 1, 0, "driver.coll"),
                ev(5, Begin, 2, 1, "net.wire"),
                ev(9, FlowBegin, 100, 2, "poe.flow"),
                ev(10, Begin, 3, 1, "rx.chunk"),
                ev(10, FlowEnd, 100, 3, "poe.flow"),
                ev(12, FlowBegin, 101, 2, "poe.flow"), // dangling: no end
                ev(20, End, 2, 0, ""),
                ev(25, End, 3, 0, ""),
                ev(30, End, 1, 0, ""),
            ],
            ..TraceDoc::default()
        };
        let g = SpanGraph::build(&doc);
        assert_eq!(g.children.get(&1), Some(&vec![2, 3]));
        assert_eq!(g.joins.get(&3), Some(&vec![2]));
        assert_eq!(g.dangling_flows, vec![(101, 2)]);
        assert_eq!(g.roots(|n| n == "driver.coll"), vec![1]);
        assert_eq!(g.roots(|_| true), vec![1]);
    }

    #[test]
    fn unclosed_roots_are_not_roots() {
        use ObsKind::Begin;
        let doc = TraceDoc {
            events: vec![ev(0, Begin, 1, 0, "driver.coll")],
            ..TraceDoc::default()
        };
        let g = SpanGraph::build(&doc);
        assert!(g.roots(|_| true).is_empty());
    }
}
