//! The `accl-obs-trace-v1` JSON interchange form: serializer and a
//! minimal hand-rolled parser (no external JSON dependency).
//!
//! The format is deliberately integer-only — times are picoseconds,
//! never fractional units — so a document round-trips bit-exactly:
//! `parse(serialize(doc)) == doc` for every capturable trace, which the
//! round-trip tests pin. The parser accepts exactly the subset the
//! serializer emits (objects, arrays, strings, integers, and the
//! literals) plus arbitrary whitespace; floats are rejected rather than
//! silently rounded.

use std::collections::BTreeMap;

use crate::model::{HistSummary, ObsEvent, ObsKind, TraceDoc, WindowRow, WindowSeries, SCHEMA};

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a trace document. Key order is fixed, so equal documents
/// serialize to equal bytes (artifacts can be compared with `cmp`).
pub fn serialize(doc: &TraceDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\": \"{}\", \"workload\": \"{}\", \"seed\": {}, \"workers\": {}, \
         \"queue\": \"{}\",\n",
        SCHEMA,
        escape(&doc.workload),
        doc.seed,
        doc.workers,
        escape(&doc.queue)
    ));
    out.push_str("\"components\": [");
    for (i, c) in doc.components.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape(c)));
    }
    out.push_str("],\n\"events\": [\n");
    for (i, e) in doc.events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"t\": {}, \"k\": \"{}\", \"id\": {}, \"par\": {}, \"c\": {}, \"n\": \"{}\"}}",
            e.time_ps,
            e.kind.code(),
            e.id,
            e.parent,
            e.comp,
            escape(&e.name)
        ));
    }
    out.push_str("\n]");
    if let Some(w) = &doc.windows {
        out.push_str(&format!(
            ",\n\"windows\": {{\"width_ps\": {}, \"rows\": [\n",
            w.width_ps
        ));
        for (i, row) in w.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("{{\"idx\": {}", row.idx));
            out.push_str(", \"counters\": {");
            for (j, (k, v)) in row.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape(k), v));
            }
            out.push_str("}, \"gauges\": {");
            for (j, (k, v)) in row.gauges.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape(k), v));
            }
            out.push_str("}, \"hists\": {");
            for (j, (k, h)) in row.hists.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p99\": {}, \"p999\": {}}}",
                    escape(k),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.p50,
                    h.p99,
                    h.p999
                ));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}");
    }
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed JSON value (integer-only numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order is irrelevant to the consumers).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::U64(v) => Ok(*v),
            other => Err(format!("expected unsigned integer, got {other:?}")),
        }
    }

    fn as_i64(&self) -> Result<i64, String> {
        match self {
            Value::U64(v) => i64::try_from(*v).map_err(|_| "integer overflow".to_string()),
            Value::I64(v) => Ok(*v),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn as_arr(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(a) => Ok(a),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    fn as_obj(&self) -> Result<&BTreeMap<String, Value>, String> {
        match self {
            Value::Obj(o) => Ok(o),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let neg = self.bytes.get(self.pos) == Some(&b'-');
        if neg {
            self.pos += 1;
        }
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digits at byte {start}"));
        }
        if matches!(
            self.bytes.get(self.pos),
            Some(b'.') | Some(b'e') | Some(b'E')
        ) {
            return Err(format!(
                "float at byte {start}: the trace format is integer-only"
            ));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if neg {
            let mag: i64 = digits
                .parse()
                .map_err(|_| format!("integer overflow at byte {start}"))?;
            Ok(Value::I64(-mag))
        } else {
            let v: u64 = digits
                .parse()
                .map_err(|_| format!("integer overflow at byte {start}"))?;
            Ok(Value::U64(v))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole sequence.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                other => return Err(format!("expected ',' or ']', got '{}'", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            out.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                other => return Err(format!("expected ',' or '}}', got '{}'", other as char)),
            }
        }
    }
}

/// Parses arbitrary (integer-only) JSON text into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

fn get<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v Value, String> {
    obj.get(key).ok_or_else(|| format!("missing key \"{key}\""))
}

/// Parses an `accl-obs-trace-v1` document.
pub fn parse(text: &str) -> Result<TraceDoc, String> {
    let root = parse_value(text)?;
    let obj = root.as_obj()?;
    let schema = get(obj, "schema")?.as_str()?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema \"{schema}\" (want \"{SCHEMA}\")"
        ));
    }
    let components = get(obj, "components")?
        .as_arr()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Result<Vec<_>, _>>()?;
    let mut events = Vec::new();
    for ev in get(obj, "events")?.as_arr()? {
        let e = ev.as_obj()?;
        let code = get(e, "k")?.as_str()?;
        let kind =
            ObsKind::from_code(code).ok_or_else(|| format!("unknown event kind \"{code}\""))?;
        events.push(ObsEvent {
            time_ps: get(e, "t")?.as_u64()?,
            kind,
            id: get(e, "id")?.as_u64()?,
            parent: get(e, "par")?.as_u64()?,
            comp: u32::try_from(get(e, "c")?.as_u64()?).map_err(|_| "component overflow")?,
            name: get(e, "n")?.as_str()?.to_string(),
        });
    }
    let windows = match obj.get("windows") {
        None | Some(Value::Null) => None,
        Some(w) => {
            let w = w.as_obj()?;
            let width_ps = get(w, "width_ps")?.as_u64()?;
            let mut rows = Vec::new();
            for rv in get(w, "rows")?.as_arr()? {
                let r = rv.as_obj()?;
                let mut row = WindowRow {
                    idx: get(r, "idx")?.as_u64()?,
                    ..WindowRow::default()
                };
                for (k, v) in get(r, "counters")?.as_obj()? {
                    row.counters.push((k.clone(), v.as_u64()?));
                }
                for (k, v) in get(r, "gauges")?.as_obj()? {
                    row.gauges.push((k.clone(), v.as_i64()?));
                }
                for (k, v) in get(r, "hists")?.as_obj()? {
                    let h = v.as_obj()?;
                    row.hists.push((
                        k.clone(),
                        HistSummary {
                            count: get(h, "count")?.as_u64()?,
                            sum: get(h, "sum")?.as_u64()?,
                            min: get(h, "min")?.as_u64()?,
                            max: get(h, "max")?.as_u64()?,
                            p50: get(h, "p50")?.as_u64()?,
                            p99: get(h, "p99")?.as_u64()?,
                            p999: get(h, "p999")?.as_u64()?,
                        },
                    ));
                }
                rows.push(row);
            }
            Some(WindowSeries { width_ps, rows })
        }
    };
    Ok(TraceDoc {
        workload: get(obj, "workload")?.as_str()?.to_string(),
        seed: get(obj, "seed")?.as_u64()?,
        workers: get(obj, "workers")?.as_u64()?,
        queue: get(obj, "queue")?.as_str()?.to_string(),
        components,
        events,
        windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> TraceDoc {
        TraceDoc {
            workload: "allreduce8".to_string(),
            seed: 7,
            workers: 4,
            queue: "calendar".to_string(),
            components: vec!["n0.driver".to_string(), "switch \"x\"".to_string()],
            events: vec![
                ObsEvent {
                    time_ps: 0,
                    kind: ObsKind::Begin,
                    id: 11,
                    parent: 0,
                    comp: 0,
                    name: "driver.coll".to_string(),
                },
                ObsEvent {
                    time_ps: 42,
                    kind: ObsKind::FlowBegin,
                    id: 99,
                    parent: 11,
                    comp: 1,
                    name: "poe.flow".to_string(),
                },
                ObsEvent {
                    time_ps: 50,
                    kind: ObsKind::End,
                    id: 11,
                    parent: 0,
                    comp: 0,
                    name: String::new(),
                },
            ],
            windows: Some(WindowSeries {
                width_ps: 1_000_000,
                rows: vec![WindowRow {
                    idx: 3,
                    counters: vec![("net.frames".to_string(), 12)],
                    gauges: vec![("poe.inflight".to_string(), -2)],
                    hists: vec![(
                        "rbm.meta_wait_ps".to_string(),
                        HistSummary {
                            count: 5,
                            sum: 1000,
                            min: 100,
                            max: 400,
                            p50: 128,
                            p99: 256,
                            p999: 256,
                        },
                    )],
                }],
            }),
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let doc = sample_doc();
        let text = serialize(&doc);
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        // Serialization is canonical: equal docs, equal bytes.
        assert_eq!(serialize(&back), text);
    }

    #[test]
    fn rejects_floats_and_wrong_schema() {
        assert!(parse_value("1.5").unwrap_err().contains("integer-only"));
        assert!(parse("{\"schema\": \"nope\"}")
            .unwrap_err()
            .contains("unsupported schema"));
    }

    #[test]
    fn parses_negative_numbers_and_escapes() {
        let v = parse_value("{\"a\": -3, \"b\": \"x\\n\\\"y\\\"\"}").unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(o["a"].as_i64().unwrap(), -3);
        assert_eq!(o["b"].as_str().unwrap(), "x\n\"y\"");
    }
}
