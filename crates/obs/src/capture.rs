//! Reference-workload capture: run a traced simulation, snapshot it
//! into a [`TraceDoc`].
//!
//! Two workloads match what CI gates on: the paper's primary 8-rank
//! device-data allreduce over Coyote+RDMA, and the 10-node DLRM
//! inference pipeline. Every capture verifies the run's data (a trace of
//! a wrong answer is worse than no trace) before snapshotting.
//!
//! The degraded-link knob installs a zero-loss bandwidth throttle on one
//! rank's link for the whole run. Zero loss matters: the fault plan only
//! draws from the switch RNG for probabilistic faults, so a pure
//! throttle perturbs timing — which the diff must attribute to that
//! rank — without forking the random stream.

use accl_core::{
    AcclCluster, AdaptiveWatchdogCfg, AlgoConfig, BufLoc, ClusterConfig, CollOp, CollSpec, DType,
    ReduceFn, Transport,
};
use accl_dlrm::model::{DlrmConfig, DlrmModel};
use accl_dlrm::pipeline::{run_pipeline_observed, DlrmTiming, PipelineObserve};
use accl_net::{Degradation, FaultPlan, NodeAddr};
use accl_sim::prelude::*;

use crate::model::TraceDoc;

/// Which reference workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 8-rank device-data allreduce (4096 × i32, sum) over Coyote+RDMA.
    Allreduce8,
    /// The 10-node DLRM inference pipeline (3 inferences, small model).
    Dlrm,
    /// The self-healing lifecycle: a 3-node TCP allreduce with one node
    /// crashing mid-collective, restarting, and rejoining via shrink →
    /// expand. The trace carries the full recovery timeline (suspect,
    /// confirm, survivor reissue, full-strength round) the MTTR analysis
    /// attributes.
    Rejoin,
}

impl Workload {
    /// Label written into the trace document.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Allreduce8 => "allreduce8",
            Workload::Dlrm => "dlrm",
            Workload::Rejoin => "rejoin",
        }
    }

    /// Parses a workload label.
    pub fn from_label(s: &str) -> Option<Workload> {
        match s {
            "allreduce8" => Some(Workload::Allreduce8),
            "dlrm" => Some(Workload::Dlrm),
            "rejoin" => Some(Workload::Rejoin),
            _ => None,
        }
    }
}

/// Everything that shapes one capture.
#[derive(Debug, Clone, Copy)]
pub struct CaptureConfig {
    /// The workload to run.
    pub workload: Workload,
    /// Simulation seed.
    pub seed: u64,
    /// Simulator worker threads.
    pub workers: usize,
    /// Event-queue kind.
    pub queue: QueueKind,
    /// Metric window width; `None` disables windowed metrics.
    pub window: Option<Dur>,
    /// Span-ring capacity (the capture asserts nothing was dropped).
    pub span_capacity: usize,
    /// Throttle this rank's link to 10 Gb/s for the whole run
    /// (allreduce only; the DLRM pipeline owns its cluster's fault
    /// state).
    pub degrade_rank: Option<u32>,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            workload: Workload::Allreduce8,
            seed: 1,
            workers: 1,
            queue: QueueKind::default(),
            window: Some(Dur::from_us(1)),
            span_capacity: 1 << 20,
            degrade_rank: None,
        }
    }
}

/// A `[start-of-time, forever)` 10 Gb/s zero-loss throttle on one link.
fn whole_run_throttle(rank: u32) -> (NodeAddr, Degradation) {
    (
        NodeAddr(rank),
        Degradation {
            from: Time::ZERO,
            until: Time::ZERO + Dur::from_ps(u64::MAX / 2),
            loss_ppm: 0,
            throttle_gbps_x100: 1_000,
        },
    )
}

/// Runs the configured workload with tracing on and snapshots the trace.
pub fn capture(cfg: &CaptureConfig) -> TraceDoc {
    match cfg.workload {
        Workload::Allreduce8 => capture_allreduce8(cfg),
        Workload::Dlrm => capture_dlrm(cfg),
        Workload::Rejoin => capture_rejoin(cfg),
    }
}

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn from_i32s(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn capture_allreduce8(cfg: &CaptureConfig) -> TraceDoc {
    let n = 8usize;
    let count = 4096u64;
    let mut cluster = AcclCluster::build(ClusterConfig {
        seed: cfg.seed,
        ..ClusterConfig::coyote_rdma(n).with_workers(cfg.workers)
    });
    cluster.sim.set_queue_kind(cfg.queue);
    cluster.enable_tracing(cfg.span_capacity);
    if let Some(w) = cfg.window {
        cluster.enable_metric_windows(w);
    }
    if let Some(rank) = cfg.degrade_rank {
        assert!((rank as usize) < n, "degrade rank out of range");
        let (addr, window) = whole_run_throttle(rank);
        cluster.set_fault_plan(FaultPlan::none().with_degradation(addr, window));
    }
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for rank in 0..n {
        let src = cluster.alloc(rank, BufLoc::Device, count * 4);
        let dst = cluster.alloc(rank, BufLoc::Device, count * 4);
        let data: Vec<i32> = (0..count as i32).map(|i| i + rank as i32 * 1000).collect();
        cluster.write(&src, &i32s(&data));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst)
                .func(ReduceFn::Sum),
        );
        dsts.push(dst);
    }
    cluster.host_collective(specs);
    let expect: Vec<i32> = (0..count as i32)
        .map(|i| (0..n as i32).map(|r| i + r * 1000).sum())
        .collect();
    for (rank, dst) in dsts.iter().enumerate() {
        assert_eq!(
            from_i32s(&cluster.read(dst)),
            expect,
            "rank {rank} result wrong; refusing to snapshot a bad run"
        );
    }
    TraceDoc::from_cluster(
        &cluster,
        Workload::Allreduce8.label(),
        cfg.seed,
        cfg.workers,
    )
}

/// Runs the self-healing lifecycle with tracing on: crash node 2 at 1 µs
/// (restart scheduled at 60 ms), let the first allreduce fail and be
/// confirmed by the watchdog, shrink and reissue on the survivors, then
/// reinstate + expand and finish a verified full-strength round. The
/// resulting trace carries every MTTR milestone.
fn capture_rejoin(cfg: &CaptureConfig) -> TraceDoc {
    assert!(
        cfg.degrade_rank.is_none(),
        "degrade-rank is only supported for the allreduce workload"
    );
    let n = 3usize;
    let dead = 2usize;
    let count = 1024u64;
    let mut base = ClusterConfig::coyote_rdma(n).with_workers(cfg.workers);
    base.seed = cfg.seed;
    base.transport = Transport::Tcp;
    base.cclo.collective_timeout_us = Some(30_000);
    base.cclo.adaptive_watchdog = Some(AdaptiveWatchdogCfg::default());
    let mut cluster = AcclCluster::build(base);
    cluster.sim.set_queue_kind(cfg.queue);
    cluster.enable_tracing(cfg.span_capacity);
    if let Some(w) = cfg.window {
        cluster.enable_metric_windows(w);
    }
    cluster.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    cluster.crash_node(dead, Time::from_us(1));
    cluster.restart_node(dead, Time::from_ms(60));

    // Run 1: the crash fails the survivors' collectives in bounded time.
    let (specs, _) = rejoin_allreduce_specs(&mut cluster, &[0, 1, 2], count, 0);
    let records = cluster.host_collective(specs);
    for rank in [0usize, 1] {
        assert!(
            records[rank].result().is_err(),
            "rank {rank} must fail while node {dead} is down; refusing to snapshot"
        );
    }

    // Run 2: shrink + verified reissue on the survivor group.
    let world = cluster.communicator(0).expect("world communicator").clone();
    let survivors = world.shrink(1, &[dead]).expect("survivors remain");
    cluster.install_communicator(&survivors);
    rejoin_verified_allreduce(&mut cluster, &[0, 1], count, 1);

    // Run 3: reinstate the restarted node, expand, verified full round.
    cluster.reinstate_node(dead);
    let rejoined = survivors.expand(2, &[dead]).expect("node readmitted");
    cluster.install_communicator(&rejoined);
    rejoin_verified_allreduce(&mut cluster, &[0, 1, 2], count, 2);

    TraceDoc::from_cluster(&cluster, Workload::Rejoin.label(), cfg.seed, cfg.workers)
}

fn rejoin_pattern(rank: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count as i32)
            .map(|i| i * 3 + rank as i32 * 97)
            .collect::<Vec<_>>(),
    )
}

fn rejoin_allreduce_specs(
    cluster: &mut AcclCluster,
    members: &[usize],
    count: u64,
    comm: u32,
) -> (Vec<CollSpec>, Vec<accl_core::BufferHandle>) {
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for &node in members {
        let src = cluster.alloc(node, BufLoc::Device, count * 4);
        let dst = cluster.alloc(node, BufLoc::Device, count * 4);
        cluster.write(&src, &rejoin_pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst)
                .comm(comm),
        );
        dsts.push(dst);
    }
    (specs, dsts)
}

fn rejoin_verified_allreduce(cluster: &mut AcclCluster, members: &[usize], count: u64, comm: u32) {
    use accl_core::host::HostOp;
    let nodes = cluster.len();
    let (mut specs, dsts) = rejoin_allreduce_specs(cluster, members, count, comm);
    let mut programs: Vec<Vec<HostOp>> = vec![Vec::new(); nodes];
    for &m in members {
        programs[m] = vec![HostOp::Coll(specs.remove(0))];
    }
    let results = cluster.run_host_programs(programs);
    let expect = i32s(
        &(0..count as i32)
            .map(|i| members.iter().map(|&r| i * 3 + r as i32 * 97).sum::<i32>())
            .collect::<Vec<_>>(),
    );
    for (r, &m) in members.iter().enumerate() {
        assert_eq!(
            results[m][0].result(),
            Ok(()),
            "comm {comm} rank {m} must complete; refusing to snapshot a bad run"
        );
        assert_eq!(
            cluster.read(&dsts[r]),
            expect,
            "comm {comm} rank {m} data wrong; refusing to snapshot a bad run"
        );
    }
}

fn capture_dlrm(cfg: &CaptureConfig) -> TraceDoc {
    assert!(
        cfg.degrade_rank.is_none(),
        "degrade-rank is only supported for the allreduce workload"
    );
    let model = DlrmModel::generate(
        DlrmConfig {
            tables: 16,
            embed_dim: 8,
            rows_per_table: 64,
            fc_dims: [64, 32, 16],
            fc1_row_groups: 2,
            fc1_col_groups: 4,
        },
        cfg.seed,
    );
    let inferences = 3;
    let observe = PipelineObserve {
        span_capacity: cfg.span_capacity,
        metric_window: cfg.window,
        queue: Some(cfg.queue),
    };
    let (result, cluster) = run_pipeline_observed(
        &model,
        DlrmTiming::default(),
        inferences,
        cfg.workers,
        &observe,
    );
    assert_eq!(result.done_at.len(), inferences, "pipeline did not finish");
    TraceDoc::from_cluster(&cluster, Workload::Dlrm.label(), cfg.seed, cfg.workers)
}
