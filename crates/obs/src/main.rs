//! `accl-obs` — trace analytics CLI for the ACCL+ simulator.
//!
//! ```text
//! accl-obs dump --workload allreduce8|dlrm [--seed N] [--workers N]
//!               [--queue calendar|heap] [--window-us N] [--no-window]
//!               [--degrade-rank R] -o trace.json
//!     Run a reference workload with tracing on and write the
//!     accl-obs-trace-v1 snapshot.
//!
//! accl-obs critical-path trace.json [--roots NAME] [--digest-only]
//!     Walk the causal critical path of every collective root, print the
//!     integer-exact attribution table and the critical-path digest.
//!
//! accl-obs diff base.json current.json [--gate] [--threshold-ps N]
//!               [--threshold-permille N] [--roots NAME]
//!     Compare two runs per (component, span type, rank). With --gate,
//!     exit 1 when any regression clears both thresholds.
//!
//! accl-obs slo trace.json [--metric KEY]
//!     Print the windowed SLO time-series (or one metric's trajectory).
//!     Windows that completed collectives carry a derived availability
//!     column; `--metric availability_milli` prints it as a series.
//!
//! accl-obs mttr trace.json
//!     Extract the recovery timeline of a self-healing run (capture with
//!     `dump --workload rejoin`): suspect → confirm → service restored →
//!     full strength, with per-phase deltas, MTTR, and the whole-run
//!     availability summary.
//! ```
//!
//! Exit codes: 0 success / no gated regression, 1 gated regression,
//! 2 usage or input error.

use std::process::ExitCode;

use accl_obs::{capture, critpath, diff, graph, json, mttr, slo};
use accl_obs::{CaptureConfig, TraceDoc, Workload};
use accl_sim::prelude::*;

fn fail(msg: &str) -> ExitCode {
    eprintln!("accl-obs: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("dump") => cmd_dump(&args[1..]),
        Some("critical-path") => cmd_critical_path(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("slo") => cmd_slo(&args[1..]),
        Some("mttr") => cmd_mttr(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("usage: accl-obs <dump|critical-path|diff|slo|mttr> ... (see crate docs)");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => fail(&format!("unknown subcommand \"{other}\"")),
    }
}

/// Pulls the value following a `--flag` out of `args`, if present.
fn opt_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} needs a value")),
            };
        }
    }
    Ok(None)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if let Some(flag) = a.strip_prefix("--") {
            // Flags that take a value consume the next token.
            skip = matches!(
                flag,
                "workload"
                    | "seed"
                    | "workers"
                    | "queue"
                    | "window-us"
                    | "degrade-rank"
                    | "o"
                    | "out"
                    | "roots"
                    | "threshold-ps"
                    | "threshold-permille"
                    | "metric"
            );
            continue;
        }
        if a == "-o" {
            skip = true;
            continue;
        }
        out.push(&args[i]);
    }
    out
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match opt_value(args, flag)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{flag}: bad number \"{v}\"")),
    }
}

fn load(path: &str) -> Result<TraceDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn paths_of(
    doc: &TraceDoc,
    roots_flag: &Option<String>,
) -> Result<Vec<critpath::CriticalPath>, String> {
    let g = graph::SpanGraph::build(doc);
    let roots = match roots_flag {
        Some(w) => g.roots(|name| name == w),
        None => {
            // Host-driven runs root at `driver.coll`; kernel-driven runs
            // (the DLRM pipeline) at `uc.call`.
            let host = g.roots(|name| name == "driver.coll");
            if host.is_empty() {
                g.roots(|name| name == "uc.call")
            } else {
                host
            }
        }
    };
    if roots.is_empty() {
        return Err(format!(
            "no completed root spans named \"{}\" in the trace",
            roots_flag.as_deref().unwrap_or("driver.coll / uc.call")
        ));
    }
    Ok(roots
        .iter()
        .filter_map(|&r| critpath::critical_path(&g, r))
        .collect())
}

fn cmd_dump(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let workload = match opt_value(args, "--workload")? {
            Some(w) => Workload::from_label(&w)
                .ok_or_else(|| format!("unknown workload \"{w}\" (allreduce8|dlrm|rejoin)"))?,
            None => Workload::Allreduce8,
        };
        let queue = match opt_value(args, "--queue")?.as_deref() {
            None | Some("calendar") => QueueKind::Calendar,
            Some("heap") => QueueKind::Heap,
            Some(other) => return Err(format!("unknown queue \"{other}\" (calendar|heap)")),
        };
        let window = if args.iter().any(|a| a == "--no-window") {
            None
        } else {
            Some(Dur::from_us(parse_u64(args, "--window-us", 1)?))
        };
        let degrade_rank = opt_value(args, "--degrade-rank")?
            .map(|v| v.parse::<u32>().map_err(|_| format!("bad rank \"{v}\"")))
            .transpose()?;
        let cfg = CaptureConfig {
            workload,
            seed: parse_u64(args, "--seed", 1)?,
            workers: parse_u64(args, "--workers", 1)? as usize,
            queue,
            window,
            span_capacity: 1 << 20,
            degrade_rank,
        };
        let out = opt_value(args, "-o")?
            .or(opt_value(args, "--out")?)
            .ok_or("dump needs -o <path>")?;
        let doc = capture(&cfg);
        std::fs::write(&out, json::serialize(&doc)).map_err(|e| format!("write {out}: {e}"))?;
        eprintln!(
            "wrote {} ({} events, {} components)",
            out,
            doc.events.len(),
            doc.components.len()
        );
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn cmd_critical_path(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let pos = positional(args);
        let path = pos.first().ok_or("critical-path needs a trace file")?;
        let doc = load(path)?;
        let roots_flag = opt_value(args, "--roots")?;
        let paths = paths_of(&doc, &roots_flag)?;
        let digest = critpath::critical_path_digest(&paths);
        if args.iter().any(|a| a == "--digest-only") {
            println!("{digest:#018x}");
            return Ok(());
        }
        let attr = critpath::attribute(&doc, &paths);
        assert_eq!(
            attr.attributed_ps(),
            attr.total_ps,
            "attribution must partition the end-to-end time exactly"
        );
        print!(
            "{}",
            attr.table(&format!(
                "critical-path attribution: {} ({} roots, seed {}, {} workers, {} queue)",
                doc.workload,
                paths.len(),
                doc.seed,
                doc.workers,
                doc.queue
            ))
        );
        println!("critical-path digest: {digest:#018x}");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let run = || -> Result<bool, String> {
        let pos = positional(args);
        let (base_path, cur_path) = match pos.as_slice() {
            [b, c, ..] => (b.as_str(), c.as_str()),
            _ => return Err("diff needs <base.json> <current.json>".to_string()),
        };
        let base = load(base_path)?;
        let cur = load(cur_path)?;
        let roots_flag = opt_value(args, "--roots")?;
        let base_attr = critpath::attribute(&base, &paths_of(&base, &roots_flag)?);
        let cur_attr = critpath::attribute(&cur, &paths_of(&cur, &roots_flag)?);
        let report = diff::diff_attributions(&base_attr, &cur_attr);
        // Defaults: 1 µs absolute AND 5 % relative growth.
        let abs_ps = parse_u64(args, "--threshold-ps", 1_000_000)?;
        let permille = parse_u64(args, "--threshold-permille", 50)?;
        print!("{}", report.render(abs_ps, permille));
        let regressed = !report.regressions(abs_ps, permille).is_empty();
        Ok(regressed && args.iter().any(|a| a == "--gate"))
    };
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("accl-obs: critical-path regression gate FAILED");
            ExitCode::from(1)
        }
        Err(e) => fail(&e),
    }
}

fn cmd_mttr(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let pos = positional(args);
        let path = pos.first().ok_or("mttr needs a trace file")?;
        let doc = load(path)?;
        let timeline = mttr::analyze(&doc).ok_or(
            "no recovery timeline in this trace (no confirmed failure, or no \
             collective completed afterwards) — capture with `dump --workload rejoin`",
        )?;
        print!(
            "{}",
            timeline.table(&format!(
                "recovery timeline: {} (seed {}, {} workers, {} queue)",
                doc.workload, doc.seed, doc.workers, doc.queue
            ))
        );
        if let Some(w) = &doc.windows {
            let a = mttr::availability(w);
            println!(
                "availability: {} milli ({} of {} completions ok, {} of {} windows degraded)",
                a.availability_milli(),
                a.calls - a.failed,
                a.calls,
                a.degraded_windows,
                a.windows
            );
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn cmd_slo(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let pos = positional(args);
        let path = pos.first().ok_or("slo needs a trace file")?;
        let doc = load(path)?;
        match opt_value(args, "--metric")? {
            Some(key) => {
                let w = doc
                    .windows
                    .as_ref()
                    .ok_or("no windowed metrics in this trace")?;
                let series = slo::metric_series(w, &key)
                    .ok_or_else(|| format!("metric \"{key}\" not present in any window"))?;
                print!("{series}");
            }
            None => print!("{}", slo::render(&doc)),
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}
