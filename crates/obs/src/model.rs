//! The self-contained trace interchange model.
//!
//! A [`TraceDoc`] is everything the analyses need, detached from the live
//! simulator: component names, the span/flow event stream, and (when the
//! run enabled metric windows) the windowed counter/histogram series.
//! It is built from a finished cluster ([`TraceDoc::from_cluster`]) and
//! round-trips losslessly through the `accl-obs-trace-v1` JSON form in
//! [`crate::json`]. All times are integer picoseconds.

use accl_core::AcclCluster;
use accl_sim::stats::{Histogram, Stats};
use accl_sim::trace::{SpanEvent, SpanEventKind};

/// Schema tag written into (and required from) every serialized trace.
pub const SCHEMA: &str = "accl-obs-trace-v1";

/// What one [`ObsEvent`] records — the owned mirror of
/// [`SpanEventKind`], with single-letter codes matching the Chrome
/// `trace_event` phases used in the JSON form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsKind {
    /// Span opened (`"B"`).
    Begin,
    /// Span closed (`"E"`).
    End,
    /// Point event (`"I"`).
    Instant,
    /// Flow edge departed (`"s"`); `id` is the flow id, `parent` the
    /// producing (anchor) span.
    FlowBegin,
    /// Flow edge arrived (`"f"`); `id` is the flow id, `parent` the
    /// consuming (join) span.
    FlowEnd,
}

impl ObsKind {
    /// The single-letter code used in the JSON form.
    pub fn code(self) -> &'static str {
        match self {
            ObsKind::Begin => "B",
            ObsKind::End => "E",
            ObsKind::Instant => "I",
            ObsKind::FlowBegin => "s",
            ObsKind::FlowEnd => "f",
        }
    }

    /// Parses a single-letter code.
    pub fn from_code(code: &str) -> Option<ObsKind> {
        Some(match code {
            "B" => ObsKind::Begin,
            "E" => ObsKind::End,
            "I" => ObsKind::Instant,
            "s" => ObsKind::FlowBegin,
            "f" => ObsKind::FlowEnd,
            _ => return None,
        })
    }
}

/// One span or flow event, owned (no `'static` name borrows) so a parsed
/// trace is indistinguishable from a freshly captured one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Simulated time, picoseconds.
    pub time_ps: u64,
    /// What happened.
    pub kind: ObsKind,
    /// Span id (begin/end share it) or flow id (for flow events).
    pub id: u64,
    /// Causal parent span for `Begin`/`Instant`; anchor span for
    /// `FlowBegin`; join span for `FlowEnd`; zero for `End`/roots.
    pub parent: u64,
    /// Index into [`TraceDoc::components`].
    pub comp: u32,
    /// Span name (`layer.stage` convention).
    pub name: String,
}

/// Integer summary of one [`Histogram`] inside one window: enough for the
/// SLO series without shipping raw buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Observations in the window.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Median (bucket floor, 0 when empty).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistSummary {
    /// Summarizes a live histogram.
    pub fn of(h: &Histogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            p50: h.percentile_permille(500).unwrap_or(0),
            p99: h.percentile_permille(990).unwrap_or(0),
            p999: h.percentile_permille(999).unwrap_or(0),
        }
    }
}

/// One fixed-width sim-time window of metrics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowRow {
    /// Window index (`start = idx * width_ps`).
    pub idx: u64,
    /// Counter deltas accumulated inside the window, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// Last gauge value written inside the window, sorted by key.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries of observations inside the window, sorted by key.
    pub hists: Vec<(String, HistSummary)>,
}

/// The full windowed series of a run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowSeries {
    /// Window width, picoseconds.
    pub width_ps: u64,
    /// Populated windows in index order (empty windows are absent).
    pub rows: Vec<WindowRow>,
}

impl WindowSeries {
    /// Extracts the series from a run's merged [`Stats`]. Returns `None`
    /// when windowing was never enabled.
    pub fn from_stats(stats: &Stats) -> Option<WindowSeries> {
        let width_ps = stats.window_width()?.as_ps();
        let rows = stats
            .windows()
            .map(|(idx, w)| WindowRow {
                idx,
                counters: w.counters().map(|(k, v)| (k.to_string(), v)).collect(),
                gauges: w.gauges().map(|(k, v)| (k.to_string(), v)).collect(),
                hists: w
                    .histograms()
                    .map(|(k, h)| (k.to_string(), HistSummary::of(h)))
                    .collect(),
            })
            .collect();
        Some(WindowSeries { width_ps, rows })
    }
}

/// A complete, self-contained trace snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceDoc {
    /// Workload label (`allreduce8`, `dlrm`, …).
    pub workload: String,
    /// Simulation seed the run used.
    pub seed: u64,
    /// Simulator worker threads the run used.
    pub workers: u64,
    /// Event-queue kind label (`calendar` / `heap`).
    pub queue: String,
    /// Component names, indexed by [`ObsEvent::comp`].
    pub components: Vec<String>,
    /// The span/flow event stream, in ring order.
    pub events: Vec<ObsEvent>,
    /// Windowed metric series, when the run enabled windows.
    pub windows: Option<WindowSeries>,
}

impl TraceDoc {
    /// Snapshots a finished cluster's span ring, component table and
    /// metric windows. Panics if span events were dropped by the ring
    /// bound — an analysis over a truncated causal graph would silently
    /// misattribute, so captures must size the ring for the workload.
    pub fn from_cluster(
        cluster: &AcclCluster,
        workload: &str,
        seed: u64,
        workers: usize,
    ) -> TraceDoc {
        assert_eq!(
            cluster.sim.spans_dropped(),
            0,
            "span ring overflowed; raise the capture capacity"
        );
        let components: Vec<String> = (0..cluster.sim.component_count())
            .map(|i| {
                cluster
                    .sim
                    .name(accl_sim::event::ComponentId::from_index(i))
                    .to_string()
            })
            .collect();
        let events = cluster
            .sim
            .span_events()
            .iter()
            .map(|e| ObsEvent {
                time_ps: e.time.as_ps(),
                kind: kind_of(e),
                id: e.id.0,
                parent: e.parent.0,
                comp: e.comp.index() as u32,
                name: e.name.to_string(),
            })
            .collect();
        let queue = match cluster.sim.queue_kind() {
            accl_sim::queue::QueueKind::Calendar => "calendar",
            accl_sim::queue::QueueKind::Heap => "heap",
        };
        TraceDoc {
            workload: workload.to_string(),
            seed,
            workers: workers as u64,
            queue: queue.to_string(),
            components,
            events,
            windows: WindowSeries::from_stats(cluster.sim.stats()),
        }
    }

    /// Component name for an event's `comp` index.
    pub fn comp_name(&self, comp: u32) -> &str {
        self.components
            .get(comp as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// The rank a component belongs to, from the `n<rank>.…` naming
    /// convention; `None` for harness components.
    pub fn rank_of(&self, comp: u32) -> Option<u32> {
        rank_of_name(self.comp_name(comp))
    }

    /// The component's kind with the rank prefix stripped: `n3.poe.tx`
    /// becomes `poe.tx`; harness names pass through unchanged.
    pub fn comp_kind(&self, comp: u32) -> &str {
        let name = self.comp_name(comp);
        match rank_of_name(name) {
            Some(_) => name.split_once('.').map(|(_, rest)| rest).unwrap_or(name),
            None => name,
        }
    }
}

/// Parses the rank out of an `n<rank>.…` component name.
pub fn rank_of_name(name: &str) -> Option<u32> {
    let rest = name.strip_prefix('n')?;
    let digits = rest.split('.').next()?;
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

fn kind_of(e: &SpanEvent) -> ObsKind {
    match e.kind {
        SpanEventKind::Begin => ObsKind::Begin,
        SpanEventKind::End => ObsKind::End,
        SpanEventKind::Instant => ObsKind::Instant,
        SpanEventKind::FlowBegin => ObsKind::FlowBegin,
        SpanEventKind::FlowEnd => ObsKind::FlowEnd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_parsing_follows_component_naming() {
        assert_eq!(rank_of_name("n3.poe.tx"), Some(3));
        assert_eq!(rank_of_name("n12.driver"), Some(12));
        assert_eq!(rank_of_name("switch"), None);
        assert_eq!(rank_of_name("net.harness"), None);
        assert_eq!(rank_of_name("n"), None);
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [
            ObsKind::Begin,
            ObsKind::End,
            ObsKind::Instant,
            ObsKind::FlowBegin,
            ObsKind::FlowEnd,
        ] {
            assert_eq!(ObsKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ObsKind::from_code("X"), None);
    }
}
