//! Trace analytics for the ACCL+ simulator (`accl-obs`).
//!
//! Consumes the causal span stream recorded by `accl-sim`'s `trace`
//! feature and turns it into three analyses the paper's evaluation leans
//! on but raw timelines do not give directly:
//!
//!  - **Causal critical path** ([`critpath`]): the span DAG — parent
//!    links plus the explicit Tx→Rx flow edges POEs emit at every wire
//!    handoff — is walked backward from a collective's end to produce the
//!    exact chain of spans that determined its latency, and an
//!    integer-exact attribution table whose rows sum to the end-to-end
//!    time (the critical-path analogue of Fig. 9's breakdown).
//!  - **Run-to-run diff** ([`diff`]): two runs are aligned by the
//!    deterministic content-derived span ids and compared per
//!    `(component kind, span type, rank)`, so a regression report reads
//!    "RBM meta wait on rank 3 grew 41 µs" rather than "the run got
//!    slower". CI gates on the diff of critical-path attributions.
//!  - **Windowed SLO series** ([`slo`]): the simulator's fixed-width
//!    metric windows (integer-only, deterministic, merged across shards)
//!    rendered as p50/p99/p999-over-sim-time, with a derived per-window
//!    availability column (`availability_milli`).
//!  - **MTTR / recovery attribution** ([`mttr`]): for self-healing runs
//!    (the `rejoin` reference workload), the recovery milestones —
//!    suspect, confirm, survivor reissue, full-strength rejoin — pinned
//!    to span timestamps, with per-phase deltas and whole-run
//!    availability.
//!
//! Everything is integer picoseconds end to end: parsing, analysis and
//! serialization never touch floats, so every artifact — including the
//! critical-path digest CI pins — is bit-identical across hosts, worker
//! counts and event-queue kinds.
//!
//! The [`capture`] module runs the reference workloads (8-rank allreduce,
//! the DLRM inference pipeline) with tracing on and snapshots them into
//! the self-contained [`model::TraceDoc`] interchange form
//! (`accl-obs-trace-v1` JSON, hand-rolled — no serde dependency), which
//! the `accl-obs` binary reads back for offline analysis.

pub mod capture;
pub mod critpath;
pub mod diff;
pub mod graph;
pub mod json;
pub mod model;
pub mod mttr;
pub mod slo;

pub use capture::{capture, CaptureConfig, Workload};
pub use critpath::{
    attribute, critical_path, critical_path_digest, Attribution, AttributionRow, CriticalPath,
    Segment,
};
pub use diff::{diff_attributions, DiffReport, DiffRow};
pub use graph::SpanGraph;
pub use model::{HistSummary, ObsEvent, ObsKind, TraceDoc, WindowRow, WindowSeries};
pub use mttr::{analyze as recovery_timeline, AvailabilitySummary, RecoveryTimeline};
