//! Run-to-run trace diffing.
//!
//! Two runs of the same workload are compared by their critical-path
//! attributions: rows join on `(component kind, span type, rank)` — a
//! key that is stable across seeds and machines because it names *what*
//! the time was spent on, not *when* — and the report states which keys
//! grew, by how much, in plain terms ("rbm meta wait on rank 3 grew
//! 41000 ps"). The CI regression gate fails on any growth that clears
//! both an absolute and a relative threshold, so picosecond-level noise
//! in genuinely-changed code does not flap the gate while real
//! regressions name their culprit.

use crate::critpath::Attribution;

/// One joined attribution row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// Component kind (rank prefix stripped).
    pub comp_kind: String,
    /// Span name.
    pub name: String,
    /// Rank (`None` for harness components).
    pub rank: Option<u32>,
    /// Critical-path time in the baseline, picoseconds.
    pub base_ps: u64,
    /// Critical-path time in the candidate, picoseconds.
    pub cur_ps: u64,
}

impl DiffRow {
    /// Signed growth, candidate minus baseline.
    pub fn delta_ps(&self) -> i64 {
        self.cur_ps as i64 - self.base_ps as i64
    }
}

/// The full diff of two attributions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiffReport {
    /// Baseline end-to-end total, picoseconds.
    pub base_total_ps: u64,
    /// Candidate end-to-end total, picoseconds.
    pub cur_total_ps: u64,
    /// All joined rows (outer join: a key present in only one run gets
    /// zero on the other side), ordered by descending growth.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Signed end-to-end growth.
    pub fn total_delta_ps(&self) -> i64 {
        self.cur_total_ps as i64 - self.base_total_ps as i64
    }

    /// Rows whose growth clears both thresholds: at least `abs_ps`
    /// picoseconds AND at least `permille`/1000 of the row's baseline
    /// (a row absent from the baseline regresses on the absolute
    /// threshold alone).
    pub fn regressions(&self, abs_ps: u64, permille: u64) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| is_regression(r, abs_ps, permille))
            .collect()
    }

    /// Renders the report; regressions (per the thresholds) are marked.
    pub fn render(&self, abs_ps: u64, permille: u64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "end-to-end: base {} ps, current {} ps, delta {:+} ps\n",
            self.base_total_ps,
            self.cur_total_ps,
            self.total_delta_ps()
        ));
        out.push_str(&format!(
            "  {:<22} {:<18} {:>5} {:>14} {:>14} {:>12}\n",
            "component", "span", "rank", "base(ps)", "current(ps)", "delta(ps)"
        ));
        for r in &self.rows {
            let mark = if is_regression(r, abs_ps, permille) {
                " <-- REGRESSION"
            } else {
                ""
            };
            let rank = r.rank.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "  {:<22} {:<18} {:>5} {:>14} {:>14} {:>+12}{}\n",
                r.comp_kind,
                r.name,
                rank,
                r.base_ps,
                r.cur_ps,
                r.delta_ps(),
                mark
            ));
        }
        let regs = self.regressions(abs_ps, permille);
        if regs.is_empty() {
            out.push_str("no regressions\n");
        } else {
            for r in regs {
                let rank = r
                    .rank
                    .map(|x| format!("rank {x}"))
                    .unwrap_or_else(|| "harness".into());
                out.push_str(&format!(
                    "REGRESSION: {} {} on {} grew {} ps ({} -> {})\n",
                    r.comp_kind,
                    r.name,
                    rank,
                    r.delta_ps(),
                    r.base_ps,
                    r.cur_ps
                ));
            }
        }
        out
    }
}

fn is_regression(r: &DiffRow, abs_ps: u64, permille: u64) -> bool {
    let delta = r.delta_ps();
    if delta <= 0 || (delta as u64) < abs_ps {
        return false;
    }
    r.base_ps == 0
        || u128::from(delta as u64) * 1000 >= u128::from(r.base_ps) * u128::from(permille)
}

/// Outer-joins two attributions on `(component kind, span type, rank)`.
pub fn diff_attributions(base: &Attribution, cur: &Attribution) -> DiffReport {
    use std::collections::BTreeMap;
    let mut joined: BTreeMap<(String, String, Option<u32>), (u64, u64)> = BTreeMap::new();
    for r in &base.rows {
        joined
            .entry((r.comp_kind.clone(), r.name.clone(), r.rank))
            .or_default()
            .0 += r.ps;
    }
    for r in &cur.rows {
        joined
            .entry((r.comp_kind.clone(), r.name.clone(), r.rank))
            .or_default()
            .1 += r.ps;
    }
    let mut rows: Vec<DiffRow> = joined
        .into_iter()
        .map(|((comp_kind, name, rank), (base_ps, cur_ps))| DiffRow {
            comp_kind,
            name,
            rank,
            base_ps,
            cur_ps,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.delta_ps()
            .cmp(&a.delta_ps())
            .then_with(|| (&a.comp_kind, &a.name, a.rank).cmp(&(&b.comp_kind, &b.name, b.rank)))
    });
    DiffReport {
        base_total_ps: base.total_ps,
        cur_total_ps: cur.total_ps,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::AttributionRow;

    fn attr(rows: Vec<(&str, &str, Option<u32>, u64)>) -> Attribution {
        let total = rows.iter().map(|r| r.3).sum();
        Attribution {
            rows: rows
                .into_iter()
                .map(|(c, n, rank, ps)| AttributionRow {
                    comp_kind: c.to_string(),
                    name: n.to_string(),
                    rank,
                    ps,
                })
                .collect(),
            total_ps: total,
        }
    }

    #[test]
    fn identical_attributions_have_no_regressions() {
        let a = attr(vec![("poe", "tx.seg", Some(1), 500)]);
        let d = diff_attributions(&a, &a.clone());
        assert_eq!(d.total_delta_ps(), 0);
        assert!(d.regressions(1, 1).is_empty());
    }

    #[test]
    fn growth_clears_both_thresholds() {
        let base = attr(vec![
            ("rbm", "rbm.meta", Some(3), 1000),
            ("poe", "tx.seg", Some(0), 1000),
        ]);
        let cur = attr(vec![
            ("rbm", "rbm.meta", Some(3), 42_000), // grew 41 000 ps
            ("poe", "tx.seg", Some(0), 1004),     // noise
        ]);
        let d = diff_attributions(&base, &cur);
        let regs = d.regressions(1000, 100); // >= 1 ns and >= 10 %
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].comp_kind, "rbm");
        assert_eq!(regs[0].rank, Some(3));
        assert_eq!(regs[0].delta_ps(), 41_000);
        let text = d.render(1000, 100);
        assert!(text.contains("rbm rbm.meta on rank 3 grew 41000 ps"));
    }

    #[test]
    fn outer_join_keeps_one_sided_rows() {
        let base = attr(vec![("uc", "uc.decode", Some(0), 10)]);
        let cur = attr(vec![("net", "net.wire", None, 7)]);
        let d = diff_attributions(&base, &cur);
        assert_eq!(d.rows.len(), 2);
        let gone = d.rows.iter().find(|r| r.comp_kind == "uc").unwrap();
        assert_eq!((gone.base_ps, gone.cur_ps), (10, 0));
        let new = d.rows.iter().find(|r| r.comp_kind == "net").unwrap();
        assert_eq!((new.base_ps, new.cur_ps), (0, 7));
        // A brand-new row regresses on the absolute threshold alone.
        assert_eq!(d.regressions(5, 100).len(), 1);
    }
}
