//! End-to-end acceptance tests for the trace-analytics engine, against
//! the real simulator (not synthetic event lists):
//!
//!  - the critical path of the 8-rank allreduce is an exact integer
//!    partition of each call's end-to-end latency, and its digest is
//!    bit-identical run-to-run, across event-queue kinds, and across
//!    1/2/4/8 simulator workers;
//!  - `diff` between two seeds of the same workload reports zero
//!    regressions;
//!  - `diff` against a deliberately degraded link names the affected
//!    component, span type and rank;
//!  - windowed metrics merge deterministically across shards;
//!  - a captured document round-trips bit-exactly through the JSON
//!    interchange form.

use accl_obs::{
    attribute, capture, critical_path, critical_path_digest, diff_attributions, json, Attribution,
    CaptureConfig, CriticalPath, SpanGraph, TraceDoc, Workload,
};
use accl_sim::prelude::*;

fn analyze(doc: &TraceDoc) -> (Vec<CriticalPath>, Attribution) {
    let g = SpanGraph::build(doc);
    assert!(
        g.dangling_flows.is_empty(),
        "every emitted flow edge must be joined on the receive side: {:?}",
        g.dangling_flows
    );
    let roots = g.roots(|n| n == "driver.coll");
    assert!(!roots.is_empty(), "no collective roots in the trace");
    let paths: Vec<CriticalPath> = roots
        .iter()
        .map(|&r| critical_path(&g, r).expect("root has begin and end"))
        .collect();
    let attr = attribute(doc, &paths);
    (paths, attr)
}

#[test]
fn allreduce_critical_path_is_an_exact_integer_partition() {
    let doc = capture(&CaptureConfig::default());
    let (paths, attr) = analyze(&doc);
    assert_eq!(paths.len(), 8, "one root per rank");
    for p in &paths {
        // Exact to the picosecond, per root: segments are contiguous
        // and tile [begin, end].
        assert_eq!(p.attributed_ps(), p.total_ps());
        let mut cursor = p.begin_ps;
        for s in &p.segments {
            assert_eq!(s.from_ps, cursor, "segments must be contiguous");
            assert!(s.to_ps > s.from_ps, "segments must be non-empty");
            cursor = s.to_ps;
        }
        assert_eq!(cursor, p.end_ps);
    }
    // And in aggregate across the table.
    assert_eq!(attr.attributed_ps(), attr.total_ps);
    assert!(attr.total_ps > 0);
}

#[test]
fn critical_path_digest_is_replay_queue_and_worker_invariant() {
    let digest_of = |cfg: &CaptureConfig| {
        let doc = capture(cfg);
        let (paths, _) = analyze(&doc);
        critical_path_digest(&paths)
    };
    let golden = digest_of(&CaptureConfig::default());
    // Run-to-run.
    assert_eq!(
        digest_of(&CaptureConfig::default()),
        golden,
        "rerun diverged"
    );
    // Queue A/B.
    assert_eq!(
        digest_of(&CaptureConfig {
            queue: QueueKind::Heap,
            ..CaptureConfig::default()
        }),
        golden,
        "heap queue diverged"
    );
    // Worker counts.
    for workers in [2usize, 4, 8] {
        assert_eq!(
            digest_of(&CaptureConfig {
                workers,
                ..CaptureConfig::default()
            }),
            golden,
            "{workers}-worker run diverged"
        );
    }
}

#[test]
fn diff_between_seeds_reports_zero_regressions() {
    let a = capture(&CaptureConfig::default());
    let b = capture(&CaptureConfig {
        seed: 2,
        ..CaptureConfig::default()
    });
    let (_, attr_a) = analyze(&a);
    let (_, attr_b) = analyze(&b);
    let report = diff_attributions(&attr_a, &attr_b);
    // CI gate thresholds: 1 µs absolute AND 5 % relative.
    assert!(
        report.regressions(1_000_000, 50).is_empty(),
        "seed change must not register as a regression:\n{}",
        report.render(1_000_000, 50)
    );
}

#[test]
fn degraded_link_diff_names_component_span_and_rank() {
    let base = capture(&CaptureConfig::default());
    let degraded = capture(&CaptureConfig {
        degrade_rank: Some(3),
        ..CaptureConfig::default()
    });
    let (_, attr_base) = analyze(&base);
    let (_, attr_deg) = analyze(&degraded);
    let report = diff_attributions(&attr_base, &attr_deg);
    assert!(
        report.total_delta_ps() > 0,
        "a 10 Gb/s throttle must lengthen the collective"
    );
    let regs = report.regressions(1_000_000, 50);
    assert!(
        !regs.is_empty(),
        "the throttle must register as a regression"
    );
    // The report names the affected rank — the throttled one — with a
    // concrete component kind and span type.
    let on_rank3 = regs.iter().find(|r| r.rank == Some(3)).unwrap_or_else(|| {
        panic!(
            "expected a regression attributed to rank 3:\n{}",
            report.render(1_000_000, 50)
        )
    });
    assert!(!on_rank3.comp_kind.is_empty());
    assert!(!on_rank3.name.is_empty());
    let text = report.render(1_000_000, 50);
    assert!(text.contains("on rank 3 grew"), "report: {text}");
}

#[test]
fn windowed_metrics_are_worker_invariant() {
    let strip_workers = |mut d: TraceDoc| {
        d.workers = 0;
        d
    };
    let seq = strip_workers(capture(&CaptureConfig::default()));
    assert!(
        seq.windows.as_ref().is_some_and(|w| !w.rows.is_empty()),
        "default capture must produce populated windows"
    );
    for workers in [2usize, 4] {
        let par = strip_workers(capture(&CaptureConfig {
            workers,
            ..CaptureConfig::default()
        }));
        assert_eq!(
            par.windows, seq.windows,
            "{workers}-worker windowed metrics diverged from sequential"
        );
    }
}

#[test]
fn captured_trace_round_trips_through_json() {
    let doc = capture(&CaptureConfig::default());
    let text = json::serialize(&doc);
    let back = json::parse(&text).expect("parse back");
    assert_eq!(back, doc);
    // The analyses agree on original and round-tripped documents.
    let (paths_a, _) = analyze(&doc);
    let (paths_b, _) = analyze(&back);
    assert_eq!(
        critical_path_digest(&paths_a),
        critical_path_digest(&paths_b)
    );
}

#[test]
fn dlrm_pipeline_traces_and_attributes() {
    let doc = capture(&CaptureConfig {
        workload: Workload::Dlrm,
        ..CaptureConfig::default()
    });
    assert!(!doc.events.is_empty());
    let g = SpanGraph::build(&doc);
    assert!(g.dangling_flows.is_empty());
    // Kernel-driven collectives have no host driver; their roots are the
    // uC call spans. Every completed root attributes exactly.
    let roots = g.roots(|n| n == "uc.call");
    assert!(!roots.is_empty(), "DLRM trace has no collective roots");
    let paths: Vec<CriticalPath> = roots.iter().filter_map(|&r| critical_path(&g, r)).collect();
    for p in &paths {
        assert_eq!(p.attributed_ps(), p.total_ps());
    }
    // Deterministic across a rerun.
    let again = capture(&CaptureConfig {
        workload: Workload::Dlrm,
        ..CaptureConfig::default()
    });
    assert_eq!(again.events, doc.events);
}

/// The self-healing reference workload traces end to end: the MTTR
/// analysis pins an ordered recovery timeline to the span stream, the
/// windowed availability dips during the outage and returns, and the
/// whole timeline is bit-identical across worker counts.
#[test]
fn rejoin_trace_yields_a_recovery_timeline() {
    let doc = capture(&CaptureConfig {
        workload: Workload::Rejoin,
        ..CaptureConfig::default()
    });
    let t = accl_obs::recovery_timeline(&doc).expect("self-healing run has a timeline");
    assert!(t.suspected_ps <= t.confirmed_ps, "suspect precedes confirm");
    assert!(t.confirmed_ps <= t.last_confirm_ps);
    assert!(
        t.last_confirm_ps < t.restored_ps,
        "service is restored only after the last confirmation"
    );
    assert!(t.restored_ps <= t.full_strength_ps);
    assert!(t.mttr_ps() > 0 && t.mttr_ps() <= t.full_recovery_ps());

    // The availability summary sees both the outage and the recovery.
    let w = doc.windows.as_ref().expect("windows captured");
    let a = accl_obs::mttr::availability(w);
    assert!(a.failed > 0, "the crash must fail at least one collective");
    assert!(a.calls > a.failed, "the reissues must complete");
    assert!(a.degraded_windows > 0);
    assert!(a.availability_milli() < 1000);

    // Milestones are derived from integer span timestamps only, so the
    // parallel engine reproduces them exactly.
    let par = capture(&CaptureConfig {
        workload: Workload::Rejoin,
        workers: 2,
        ..CaptureConfig::default()
    });
    assert_eq!(accl_obs::recovery_timeline(&par), Some(t));
}
