//! # accl-dlrm — distributed deep-learning recommendation inference (§6)
//!
//! The paper's flagship use case: an industrial-scale DLRM (Table 2)
//! distributed over 10 simulated FPGAs with ACCL+ streaming collectives.
//!
//! - [`model`] — Table 2 configuration, synthetic parameters, reference
//!   inference and the checkerboard decomposition (verified equal).
//! - [`pipeline`] — the Fig. 15 pipeline on the simulated cluster, moving
//!   real fixed-point intermediates and measuring latency/throughput.
//! - [`cpu`] — the TF-Serving CPU baseline cost model of Fig. 17.

#![warn(missing_docs)]

pub mod cpu;
pub mod model;
pub mod pipeline;

pub use cpu::CpuDlrmModel;
pub use model::{DlrmConfig, DlrmModel, PipelineTrace};
pub use pipeline::{
    run_pipeline, run_pipeline_observed, DlrmTiming, PipelineObserve, PipelineResult,
};
