//! CPU baseline cost model for DLRM inference (Fig. 17's comparison).
//!
//! Models the paper's baseline: TensorFlow Serving on an Intel Xeon
//! Platinum 8259CL (32 vCPU, 2.5 GHz, SIMD) with 256 GB DRAM (FleetRec, ref. 51). CPU
//! inference is constrained by framework overhead per batch, random DRAM
//! accesses for embedding gathers over a 50 GB table set, and FC compute —
//! batching amortizes the first but inflates latency, the trade-off
//! Fig. 17(a)/(b) shows.

use serde::{Deserialize, Serialize};

use crate::model::DlrmConfig;

/// CPU inference cost parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuDlrmModel {
    /// Framework (TF-Serving) overhead per batch, seconds.
    pub framework_overhead_s: f64,
    /// Effective FLOP rate across the socket for inference GEMMs, FLOP/s.
    pub effective_flops: f64,
    /// Aggregate random embedding-lookup rate over DRAM, lookups/s
    /// (TLB misses + pointer chasing over 50 GB of tables).
    pub lookup_rate: f64,
}

impl Default for CpuDlrmModel {
    fn default() -> Self {
        CpuDlrmModel {
            framework_overhead_s: 3.0e-3,
            effective_flops: 0.10e12,
            lookup_rate: 20e6,
        }
    }
}

impl CpuDlrmModel {
    /// FLOPs of one inference.
    pub fn flops_per_inference(cfg: &DlrmConfig) -> f64 {
        let d0 = cfg.concat_len() as f64;
        let [f1, f2, f3] = cfg.fc_dims.map(|d| d as f64);
        2.0 * (d0 * f1 + f1 * f2 + f2 * f3)
    }

    /// End-to-end latency of one batch, seconds.
    pub fn batch_latency_s(&self, cfg: &DlrmConfig, batch: u64) -> f64 {
        let b = batch as f64;
        let embed = b * cfg.tables as f64 / self.lookup_rate;
        let compute = b * Self::flops_per_inference(cfg) / self.effective_flops;
        self.framework_overhead_s + embed + compute
    }

    /// Throughput at a given batch size, inferences/second.
    pub fn throughput(&self, cfg: &DlrmConfig, batch: u64) -> f64 {
        batch as f64 / self.batch_latency_s(cfg, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_matches_table2() {
        let cfg = DlrmConfig::default();
        let f = CpuDlrmModel::flops_per_inference(&cfg);
        // 2*(3200*2048 + 2048*512 + 512*256) ≈ 15.5 MFLOP.
        assert!((15.0e6..16.0e6).contains(&f), "{f}");
    }

    #[test]
    fn latency_is_milliseconds_and_grows_with_batch() {
        let m = CpuDlrmModel::default();
        let cfg = DlrmConfig::default();
        let b1 = m.batch_latency_s(&cfg, 1);
        let b256 = m.batch_latency_s(&cfg, 256);
        // Single inference: a couple of ms (framework-bound).
        assert!((1e-3..4e-3).contains(&b1), "{b1}");
        // Large batches: tens of ms.
        assert!((10e-3..100e-3).contains(&b256), "{b256}");
        assert!(b256 > b1);
    }

    #[test]
    fn batching_improves_throughput_with_diminishing_returns() {
        let m = CpuDlrmModel::default();
        let cfg = DlrmConfig::default();
        let t1 = m.throughput(&cfg, 1);
        let t64 = m.throughput(&cfg, 64);
        let t256 = m.throughput(&cfg, 256);
        assert!(t64 > t1 * 4.0, "t1={t1} t64={t64}");
        assert!(t256 > t64);
        // Diminishing: going 64→256 gains less than 4×.
        assert!(t256 < t64 * 4.0);
        // Magnitudes: hundreds/s unbatched, thousands/s batched.
        assert!((300.0..1500.0).contains(&t1), "{t1}");
        assert!((3_000.0..12_000.0).contains(&t256), "{t256}");
    }
}
