//! The DLRM model: configuration (Table 2), reference inference, and the
//! checkerboard decomposition of Fig. 14/15.
//!
//! The paper's industrial model has 100 embedding tables (32-dim vectors,
//! 50 GB total), a 3200-long concatenated feature vector and three FC
//! layers (2048, 512, 256), computed on the FPGAs in 32-bit fixed point.
//! Table *contents* are scaled down here (the 50 GB of embeddings is
//! synthetic anyway); everything that determines performance — vector
//! dimensions, message sizes, layer shapes — matches Table 2 exactly.

use accl_linalg::dense::fx::{self, MatFx};
use accl_linalg::dense::{block_ranges, fx::relu};
use serde::{Deserialize, Serialize};

/// DLRM configuration (defaults = Table 2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Number of embedding tables.
    pub tables: usize,
    /// Embedding vector dimension per table.
    pub embed_dim: usize,
    /// Rows per table (scaled down from the paper's ~3.9 M; contents are
    /// synthetic, sizes do not affect per-inference message sizes).
    pub rows_per_table: usize,
    /// FC layer output widths, applied in order to the concatenated vector.
    pub fc_dims: [usize; 3],
    /// Row groups of the FC1 checkerboard (2 in Fig. 15).
    pub fc1_row_groups: usize,
    /// Column groups of the FC1 checkerboard (4 in Fig. 15).
    pub fc1_col_groups: usize,
}

impl Default for DlrmConfig {
    fn default() -> Self {
        DlrmConfig {
            tables: 100,
            embed_dim: 32,
            rows_per_table: 1024,
            fc_dims: [2048, 512, 256],
            fc1_row_groups: 2,
            fc1_col_groups: 4,
        }
    }
}

impl DlrmConfig {
    /// Concatenated feature length (3200 in Table 2).
    pub fn concat_len(&self) -> usize {
        self.tables * self.embed_dim
    }

    /// Bytes of one partial embedding vector (3.2 KB per the paper §6.2).
    pub fn partial_embed_bytes(&self) -> usize {
        self.concat_len() / self.fc1_col_groups * 4
    }

    /// Bytes of one FC1 partial result (4 KB per the paper §6.2).
    pub fn partial_result_bytes(&self) -> usize {
        self.fc_dims[0] / self.fc1_row_groups * 4
    }

    /// Bytes of one full FC1 vector (the 8 KB reduction messages).
    pub fn fc1_bytes(&self) -> usize {
        self.fc_dims[0] * 4
    }

    /// The paper's full-scale embedding storage footprint in bytes
    /// (~50 GB in Table 2 with ~3.9 M rows per table).
    pub fn full_scale_embed_bytes(rows_per_table: u64) -> u64 {
        100 * rows_per_table * 32 * 4
    }
}

/// Deterministic synthetic weights/embeddings (seeded hashing, so every
/// node regenerates identical parameters without sharing state).
fn hval(seed: u64, a: u64, b: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
    x ^= x >> 31;
    x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
    x ^= x >> 27;
    // Small magnitudes keep Q16.16 accumulations well inside range.
    ((x % 2001) as f64 - 1000.0) / 20_000.0
}

/// The full model parameters.
pub struct DlrmModel {
    /// Configuration.
    pub cfg: DlrmConfig,
    /// Embedding tables: `tables × rows × embed_dim`, Q16.16.
    pub tables: Vec<Vec<i32>>,
    /// FC1 (2048 × 3200), FC2 (512 × 2048), FC3 (256 × 512), Q16.16.
    pub fc: [MatFx; 3],
}

impl DlrmModel {
    /// Generates the model for `seed`.
    pub fn generate(cfg: DlrmConfig, seed: u64) -> DlrmModel {
        let tables = (0..cfg.tables)
            .map(|t| {
                (0..cfg.rows_per_table * cfg.embed_dim)
                    .map(|i| fx::q(hval(seed, t as u64, i as u64)))
                    .collect()
            })
            .collect();
        let dims = [
            (cfg.fc_dims[0], cfg.concat_len()),
            (cfg.fc_dims[1], cfg.fc_dims[0]),
            (cfg.fc_dims[2], cfg.fc_dims[1]),
        ];
        let fc = [
            MatFx::from_fn(dims[0].0, dims[0].1, |r, c| {
                hval(seed ^ 0x11, r as u64, c as u64)
            }),
            MatFx::from_fn(dims[1].0, dims[1].1, |r, c| {
                hval(seed ^ 0x22, r as u64, c as u64)
            }),
            MatFx::from_fn(dims[2].0, dims[2].1, |r, c| {
                hval(seed ^ 0x33, r as u64, c as u64)
            }),
        ];
        DlrmModel { cfg, tables, fc }
    }

    /// The sparse indices of inference `k` (one per table, deterministic).
    pub fn indices(&self, k: u64) -> Vec<usize> {
        (0..self.cfg.tables)
            .map(|t| (hval(k ^ 0xabcd, t as u64, k).to_bits() as usize) % self.cfg.rows_per_table)
            .collect()
    }

    /// Embedding lookup + concatenation for inference `k`.
    pub fn embed(&self, k: u64) -> Vec<i32> {
        let idx = self.indices(k);
        let mut out = Vec::with_capacity(self.cfg.concat_len());
        for (t, &row) in idx.iter().enumerate() {
            let d = self.cfg.embed_dim;
            out.extend_from_slice(&self.tables[t][row * d..(row + 1) * d]);
        }
        out
    }

    /// Full reference inference: embed → FC1 → ReLU → FC2 → ReLU → FC3.
    pub fn infer(&self, k: u64) -> Vec<i32> {
        let x = self.embed(k);
        let mut y = self.fc[0].gemv(&x);
        relu(&mut y);
        let mut y = self.fc[1].gemv(&y);
        relu(&mut y);
        self.fc[2].gemv(&y)
    }

    /// All intermediate values of one inference, as the distributed
    /// pipeline of Fig. 15 produces them.
    pub fn pipeline_trace(&self, k: u64) -> PipelineTrace {
        let cfg = self.cfg;
        let x = self.embed(k);
        let col_ranges = block_ranges(cfg.concat_len(), cfg.fc1_col_groups);
        let row_ranges = block_ranges(cfg.fc_dims[0], cfg.fc1_row_groups);
        // Partial embedding slices (3.2 KB messages, nodes 1-4 → 5-8).
        let embed_slices: Vec<Vec<i32>> = col_ranges
            .iter()
            .map(|&(c0, c1)| x[c0..c1].to_vec())
            .collect();
        // FC1 partials per (row group, column group).
        let mut fc1_partials = Vec::new();
        for &(r0, r1) in &row_ranges {
            let row_blk = self.fc[0].row_block(r0, r1);
            let mut per_col = Vec::new();
            for &(c0, c1) in &col_ranges {
                per_col.push(row_blk.col_block(c0, c1).gemv(&x[c0..c1]));
            }
            fc1_partials.push(per_col);
        }
        // Per-column full-height partials (8 KB reduction messages):
        // concat of row-group partials for that column.
        let col_partials: Vec<Vec<i32>> = (0..cfg.fc1_col_groups)
            .map(|c| {
                let mut v = Vec::with_capacity(cfg.fc_dims[0]);
                for rg in &fc1_partials {
                    v.extend_from_slice(&rg[c]);
                }
                v
            })
            .collect();
        // Chain reduction over columns.
        let mut chain = Vec::new();
        let mut acc = col_partials[0].clone();
        chain.push(acc.clone());
        for part in &col_partials[1..] {
            for (a, b) in acc.iter_mut().zip(part) {
                *a = a.saturating_add(*b);
            }
            chain.push(acc.clone());
        }
        let mut fc1_out = acc;
        relu(&mut fc1_out);
        let mut fc2_out = self.fc[1].gemv(&fc1_out);
        relu(&mut fc2_out);
        let fc3_out = self.fc[2].gemv(&fc2_out);
        PipelineTrace {
            embed_slices,
            fc1_partials,
            col_partials,
            chain,
            fc1_out,
            fc2_out,
            fc3_out,
        }
    }
}

/// Every intermediate of one inference flowing through the Fig. 15 pipeline.
pub struct PipelineTrace {
    /// 3.2 KB embedding slices (one per column group).
    pub embed_slices: Vec<Vec<i32>>,
    /// FC1 partials `[row_group][col_group]` (4 KB each).
    pub fc1_partials: Vec<Vec<Vec<i32>>>,
    /// Full-height per-column partials (8 KB each).
    pub col_partials: Vec<Vec<i32>>,
    /// Running chain-reduction values (8 KB each hop).
    pub chain: Vec<Vec<i32>>,
    /// FC1 output after ReLU.
    pub fc1_out: Vec<i32>,
    /// FC2 output after ReLU.
    pub fc2_out: Vec<i32>,
    /// Final FC3 output.
    pub fc3_out: Vec<i32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DlrmModel {
        DlrmModel::generate(
            DlrmConfig {
                tables: 8,
                embed_dim: 8,
                rows_per_table: 64,
                fc_dims: [32, 16, 8],
                fc1_row_groups: 2,
                fc1_col_groups: 4,
            },
            42,
        )
    }

    #[test]
    fn table2_shapes() {
        let cfg = DlrmConfig::default();
        assert_eq!(cfg.concat_len(), 3200);
        assert_eq!(cfg.partial_embed_bytes(), 3200); // 3.2 KB
        assert_eq!(cfg.partial_result_bytes(), 4096); // 4 KB
        assert_eq!(cfg.fc1_bytes(), 8192); // 8 KB
                                           // ~50 GB at full scale.
        let full = DlrmConfig::full_scale_embed_bytes(3_900_000);
        assert!((45e9..55e9).contains(&(full as f64)), "{full}");
    }

    #[test]
    fn inference_is_deterministic() {
        let m1 = small();
        let m2 = small();
        assert_eq!(m1.infer(0), m2.infer(0));
        assert_ne!(m1.infer(0), m1.infer(1));
    }

    #[test]
    fn indices_are_in_range() {
        let m = small();
        for k in 0..50 {
            for &i in &m.indices(k) {
                assert!(i < m.cfg.rows_per_table);
            }
        }
    }

    #[test]
    fn pipeline_trace_matches_reference() {
        // The decomposed/pipelined computation must equal the monolithic
        // reference exactly (same fixed-point operation order per element).
        let m = small();
        for k in 0..10 {
            let t = m.pipeline_trace(k);
            assert_eq!(t.fc3_out, m.infer(k), "inference {k}");
            // Message sizes match the decomposition.
            assert_eq!(t.embed_slices.len(), 4);
            assert_eq!(t.embed_slices[0].len(), m.cfg.concat_len() / 4);
            assert_eq!(t.fc1_partials.len(), 2);
            assert_eq!(t.fc1_partials[0][0].len(), m.cfg.fc_dims[0] / 2);
            assert_eq!(t.col_partials[0].len(), m.cfg.fc_dims[0]);
        }
    }

    #[test]
    fn default_model_pipeline_consistency_spot_check() {
        // One full-size inference (Table 2 dimensions) through both paths.
        let m = DlrmModel::generate(
            DlrmConfig {
                rows_per_table: 16, // keep generation fast; dims unchanged
                ..DlrmConfig::default()
            },
            7,
        );
        let t = m.pipeline_trace(3);
        assert_eq!(t.fc3_out, m.infer(3));
        assert_eq!(t.embed_slices[0].len() * 4, 3200);
        assert_eq!(t.col_partials[0].len() * 4, 8192);
    }
}
