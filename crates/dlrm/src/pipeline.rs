//! The distributed DLRM inference pipeline on 10 simulated FPGAs (Fig. 15).
//!
//! Mapping (paper §6.1, with our 0-based node ids):
//!
//! - **Nodes 0–3** — embedding nodes: each holds 25 tables (an 800-dim
//!   slice of the concatenated vector) and the FC1 checkerboard block for
//!   row group A of its column. Per inference they stream their 3.2 KB
//!   partial embedding vector and their 4 KB FC1 partial to the partner.
//! - **Nodes 4–7** — combine nodes: compute the row-group-B block for
//!   their column, concatenate with the received partial (8 KB full-height
//!   column partial) and chain-reduce across columns.
//! - **Node 8** — FC2; **node 9** — FC3 and final output.
//!
//! All inter-node traffic uses ACCL+ streaming collectives (send/recv over
//! the XRT + TCP configuration the paper used for this case). Kernel
//! compute is charged at the DLRM design's 115 MHz clock; the data on the
//! wire is the *real* fixed-point intermediate values, verified against the
//! reference model at every hop after the run.

use bytes::Bytes;

use accl_core::driver::CollSpec;
use accl_core::kernel::KernelOp;
use accl_core::{AcclCluster, CcloConfig, ClusterConfig, CollOp, DType};
use accl_linalg::dense::fx;
use accl_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::model::DlrmModel;

/// Tags for the pipeline's message classes.
mod tag {
    /// Partial embedding vector (3.2 KB).
    pub const X: u64 = 1;
    /// FC1 row-group-A partial (4 KB).
    pub const PA: u64 = 2;
    /// Chain-reduction value (8 KB).
    pub const CHAIN: u64 = 3;
    /// FC2 output (2 KB).
    pub const FC2: u64 = 4;
}

/// FPGA kernel timing for the DLRM design.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DlrmTiming {
    /// Achieved clock of the DLRM design (115 MHz per §6.2).
    pub clock_mhz: f64,
    /// Multiply-accumulate lanes per node's FC block. Table 3's DLRM rows
    /// put ~6.5 k DSPs per FC1 node; 4096 models realistic packing.
    pub macs_per_cycle: u64,
    /// HBM random-access latency per embedding lookup, ns.
    pub lookup_ns: u64,
    /// Concurrent outstanding lookups (HBM pseudo-channels).
    pub lookup_parallelism: u64,
}

impl Default for DlrmTiming {
    fn default() -> Self {
        DlrmTiming {
            clock_mhz: 115.0,
            macs_per_cycle: 4096,
            lookup_ns: 250,
            lookup_parallelism: 8,
        }
    }
}

impl DlrmTiming {
    /// Time for a `rows × cols` fixed-point GEMV on one node.
    pub fn gemv(&self, rows: usize, cols: usize) -> Dur {
        let cycles = ((rows * cols) as u64).div_ceil(self.macs_per_cycle);
        Dur::for_cycles(cycles, self.clock_mhz)
    }

    /// Time for `n` embedding lookups.
    pub fn lookups(&self, n: usize) -> Dur {
        Dur::from_ns(n as u64 * self.lookup_ns / self.lookup_parallelism)
    }

    /// Time for an elementwise add of `n` fixed-point values (16/cycle).
    pub fn vec_add(&self, n: usize) -> Dur {
        Dur::for_cycles((n as u64).div_ceil(16), self.clock_mhz)
    }
}

/// Result of a pipeline run.
pub struct PipelineResult {
    /// Completion time of each inference (at the FC3 node).
    pub done_at: Vec<Time>,
    /// Number of verified hops (messages whose contents matched the
    /// reference trace).
    pub verified_messages: usize,
}

impl PipelineResult {
    /// Single-inference latency, µs (time to first completion).
    pub fn latency_us(&self) -> f64 {
        self.done_at.first().map_or(f64::NAN, |t| t.as_us_f64())
    }

    /// Steady-state throughput over the run, inferences/second.
    pub fn throughput(&self) -> f64 {
        if self.done_at.len() < 2 {
            return f64::NAN;
        }
        let first = self.done_at[0];
        let last = *self.done_at.last().unwrap();
        (self.done_at.len() - 1) as f64 / last.since(first).as_secs_f64()
    }
}

/// Builds and runs the 10-node pipeline for `inferences` back-to-back
/// inferences of `model`.
///
/// # Panics
///
/// Panics if any transported message deviates from the reference trace —
/// the run doubles as an end-to-end data-integrity check.
pub fn run_pipeline(model: &DlrmModel, timing: DlrmTiming, inferences: usize) -> PipelineResult {
    run_pipeline_with_workers(model, timing, inferences, 1)
}

/// [`run_pipeline`] on `workers` simulator threads. Completion times,
/// verified messages and every data assertion are identical at any worker
/// count — this is the mixed send/recv/compute workload the parallel
/// determinism suite pins against the sequential engine.
pub fn run_pipeline_with_workers(
    model: &DlrmModel,
    timing: DlrmTiming,
    inferences: usize,
    workers: usize,
) -> PipelineResult {
    run_pipeline_observed(
        model,
        timing,
        inferences,
        workers,
        &PipelineObserve::default(),
    )
    .0
}

/// Observability knobs for [`run_pipeline_observed`]: span tracing and
/// windowed metrics, both off by default (the plain pipeline entry points
/// run unobserved and unchanged).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineObserve {
    /// Span-ring capacity; zero leaves tracing off. Requires the `trace`
    /// cargo feature when nonzero.
    pub span_capacity: usize,
    /// Fixed sim-time metric window width; `None` leaves windowing off.
    pub metric_window: Option<Dur>,
    /// Event-queue structure override for A/B timeline validation; `None`
    /// keeps the simulator default.
    pub queue: Option<QueueKind>,
}

/// [`run_pipeline_with_workers`] with observability enabled, returning
/// the finished cluster alongside the result so callers (the `accl-obs`
/// trace dump, SLO reports) can read the span stream and metric windows.
#[allow(clippy::needless_range_loop)] // node indices address several parallel arrays
pub fn run_pipeline_observed(
    model: &DlrmModel,
    timing: DlrmTiming,
    inferences: usize,
    workers: usize,
    observe: &PipelineObserve,
) -> (PipelineResult, AcclCluster) {
    let cfg = model.cfg;
    assert_eq!(cfg.fc1_row_groups, 2, "Fig. 15 mapping uses two row groups");
    let cols = cfg.fc1_col_groups;
    let nodes = 2 * cols + 2;
    let fc2_node = 2 * cols; // node 8
    let fc3_node = 2 * cols + 1; // node 9
    let slice_elems = cfg.concat_len() / cols;
    let part_elems = cfg.fc_dims[0] / 2;
    let full_elems = cfg.fc_dims[0];
    let fc2_elems = cfg.fc_dims[1];

    let traces: Vec<_> = (0..inferences as u64)
        .map(|k| model.pipeline_trace(k))
        .collect();

    let mut cluster = AcclCluster::build(ClusterConfig {
        cclo: CcloConfig {
            clock_mhz: timing.clock_mhz,
            // The host driver sizes the eager Rx pool for the workload:
            // the pipeline's producers run ahead of consumers, so each
            // engine needs enough (small) buffers for the in-flight window
            // — 3 messages per in-flight inference, 8 KB max each.
            rx_buf_count: (3 * inferences as u32 + 8).max(16),
            rx_buf_bytes: 32 << 10,
            ..CcloConfig::default()
        },
        ..ClusterConfig::xrt_tcp(nodes).with_workers(workers)
    });
    if let Some(kind) = observe.queue {
        cluster.sim.set_queue_kind(kind);
    }
    if observe.span_capacity > 0 {
        cluster.enable_tracing(observe.span_capacity);
    }
    if let Some(width) = observe.metric_window {
        cluster.enable_metric_windows(width);
    }

    let send = |to: usize, elems: usize, t: u64| {
        KernelOp::Issue(
            CollSpec::new(CollOp::Send, elems as u64, DType::Fx32)
                .root(to as u32)
                .tag(t),
        )
    };
    let recv = |from: usize, elems: usize, t: u64| {
        KernelOp::Issue(
            CollSpec::new(CollOp::Recv, elems as u64, DType::Fx32)
                .root(from as u32)
                .tag(t),
        )
    };
    let push = |v: &[i32]| KernelOp::Push(Bytes::from(fx::to_bytes(v)));

    let mut programs: Vec<Vec<KernelOp>> = vec![Vec::new(); nodes];
    for (k, tr) in traces.iter().enumerate() {
        let _ = k;
        // Embedding nodes 0..cols.
        for c in 0..cols {
            let p = &mut programs[c];
            let partner = cols + c;
            p.push(KernelOp::Compute(timing.lookups(cfg.tables / cols)));
            p.push(send(partner, slice_elems, tag::X));
            p.push(push(&tr.embed_slices[c]));
            p.push(KernelOp::Compute(timing.gemv(part_elems, slice_elems)));
            p.push(send(partner, part_elems, tag::PA));
            p.push(push(&tr.fc1_partials[0][c]));
        }
        // Combine nodes cols..2*cols.
        for c in 0..cols {
            let p = &mut programs[cols + c];
            p.push(recv(c, slice_elems, tag::X));
            p.push(KernelOp::Finalize);
            p.push(KernelOp::Compute(timing.gemv(part_elems, slice_elems)));
            p.push(recv(c, part_elems, tag::PA));
            p.push(KernelOp::Finalize);
            let next = if c + 1 < cols { cols + c + 1 } else { fc2_node };
            if c == 0 {
                p.push(send(next, full_elems, tag::CHAIN));
                p.push(push(&tr.chain[0]));
            } else {
                p.push(recv(cols + c - 1, full_elems, tag::CHAIN));
                p.push(KernelOp::Finalize);
                p.push(KernelOp::Compute(timing.vec_add(full_elems)));
                p.push(send(next, full_elems, tag::CHAIN));
                p.push(push(&tr.chain[c]));
            }
        }
        // FC2 node.
        {
            let p = &mut programs[fc2_node];
            p.push(recv(2 * cols - 1, full_elems, tag::CHAIN));
            p.push(KernelOp::Finalize);
            p.push(KernelOp::Compute(timing.gemv(fc2_elems, full_elems)));
            p.push(send(fc3_node, fc2_elems, tag::FC2));
            p.push(push(&tr.fc2_out));
        }
        // FC3 node.
        {
            let p = &mut programs[fc3_node];
            p.push(recv(fc2_node, fc2_elems, tag::FC2));
            p.push(KernelOp::Finalize);
            p.push(KernelOp::Compute(timing.gemv(cfg.fc_dims[2], fc2_elems)));
        }
    }
    for p in &mut programs {
        p.push(KernelOp::Finalize);
    }

    let kernels = cluster.run_kernel_programs(programs);

    // Verify every transported message against the reference trace.
    let mut verified = 0usize;
    for c in 0..cols {
        let got = cluster.kernel(kernels[cols + c]).received_msgs();
        let mut expect: Vec<Vec<u8>> = Vec::new();
        for tr in &traces {
            expect.push(fx::to_bytes(&tr.embed_slices[c]));
            expect.push(fx::to_bytes(&tr.fc1_partials[0][c]));
            if c > 0 {
                expect.push(fx::to_bytes(&tr.chain[c - 1]));
            }
        }
        assert_eq!(got.len(), expect.len(), "combine node {c} message count");
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(*g, e.as_slice(), "combine node {c} payload mismatch");
            verified += 1;
        }
    }
    {
        let got = cluster.kernel(kernels[fc2_node]).received_msgs();
        for (g, tr) in got.iter().zip(&traces) {
            assert_eq!(*g, fx::to_bytes(tr.chain.last().unwrap()).as_slice());
            verified += 1;
        }
        let got = cluster.kernel(kernels[fc3_node]).received_msgs();
        for (g, tr) in got.iter().zip(&traces) {
            assert_eq!(*g, fx::to_bytes(&tr.fc2_out).as_slice());
            verified += 1;
        }
    }

    // Each inference completes at the FC3 node's Compute expiry: every
    // third op of its program (recv, finalize, compute).
    let done_at: Vec<Time> = cluster
        .kernel(kernels[fc3_node])
        .op_times()
        .iter()
        .filter(|(idx, _)| idx % 3 == 2 && *idx < inferences * 3)
        .map(|&(_, t)| t)
        .collect();
    assert_eq!(done_at.len(), inferences, "missing inference completions");
    (
        PipelineResult {
            done_at,
            verified_messages: verified,
        },
        cluster,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DlrmConfig;

    fn small_model() -> DlrmModel {
        DlrmModel::generate(
            DlrmConfig {
                tables: 16,
                embed_dim: 8,
                rows_per_table: 64,
                fc_dims: [64, 32, 16],
                fc1_row_groups: 2,
                fc1_col_groups: 4,
            },
            11,
        )
    }

    #[test]
    fn small_pipeline_runs_and_verifies() {
        let m = small_model();
        let r = run_pipeline(&m, DlrmTiming::default(), 3);
        assert_eq!(r.done_at.len(), 3);
        // Monotone completions.
        assert!(r.done_at.windows(2).all(|w| w[0] < w[1]));
        // x, pa per inference on 4 nodes + chain on 3 + fc1/fc2 hops.
        assert!(r.verified_messages >= 3 * (2 * 4 + 3 + 2));
    }

    /// The parallel-engine golden gate on the DLRM workload: a mixed
    /// send/recv/compute pipeline across 10 nodes completes at exactly the
    /// same instants, with exactly the same verified message stream, at
    /// any simulator worker count. (Every payload assertion inside
    /// `run_pipeline` re-runs too — a merge bug that scrambled message
    /// order would panic before the comparison.)
    #[test]
    fn pipeline_is_worker_count_invariant() {
        let m = small_model();
        let golden = run_pipeline_with_workers(&m, DlrmTiming::default(), 3, 1);
        for workers in [2, 4, 8] {
            let r = run_pipeline_with_workers(&m, DlrmTiming::default(), 3, workers);
            assert_eq!(
                r.done_at, golden.done_at,
                "{workers}-worker completion times diverged from sequential"
            );
            assert_eq!(r.verified_messages, golden.verified_messages);
        }
    }

    #[test]
    fn pipelining_beats_serial_latency() {
        let m = small_model();
        let single = run_pipeline(&m, DlrmTiming::default(), 1);
        let many = run_pipeline(&m, DlrmTiming::default(), 8);
        let latency = single.latency_us();
        let inter_completion = many.done_at[7].since(many.done_at[1]).as_us_f64() / 6.0;
        // Steady-state initiation interval is far below one latency.
        assert!(
            inter_completion < latency * 0.8,
            "II={inter_completion}us latency={latency}us"
        );
    }

    #[test]
    fn timing_helpers_scale() {
        let t = DlrmTiming::default();
        assert!(t.gemv(1024, 800) > t.gemv(512, 800));
        assert_eq!(t.lookups(8), Dur::from_ns(8 * 250 / 8));
        assert!(t.vec_add(2048) < Dur::from_us(3));
    }
}
