//! Integration tests for the sim-time race detector (`race-detect`).
//!
//! Compile-gated so the default `cargo test` matrix still exercises the
//! production (FIFO tie-break) kernel; run with
//! `cargo test -p accl-sim --features race-detect`.
//!
//! The permutation is *channel-preserving*: same-timestamp events keep
//! their program order within one (source component → destination
//! endpoint) channel and are shuffled only across channels. The fixtures
//! therefore fan events through distinct relay components, which is also
//! the honest model of a race: independent senders arriving at the same
//! simulated instant.
#![cfg(feature = "race-detect")]

use accl_sim::prelude::*;
use accl_sim::race::{fnv_fold, shadow_check};

/// Forwards every received value to `to` after a fixed delay. One relay
/// per sender gives each value its own delivery channel into the sink.
struct Relay {
    to: Endpoint,
    delay: Dur,
}

impl Component for Relay {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        let v = payload.downcast::<u32>();
        ctx.send(self.to, self.delay, v);
    }
}

/// A commuting sink: folds every received value into an order-insensitive
/// accumulator (wrapping sum), so any interleaving of same-timestamp
/// deliveries yields the same final state.
struct Summer {
    sum: u64,
}

impl Component for Summer {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        self.sum = self.sum.wrapping_add(u64::from(payload.downcast::<u32>()));
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = 0;
        fnv_fold(&mut h, &self.sum.to_le_bytes());
        Some(h)
    }
}

/// A non-commuting sink: folds values with an order-*sensitive* polynomial
/// hash, so two same-timestamp deliveries that swap places change the final
/// state. This is the deliberate "racy handler" fixture.
struct OrderHasher {
    h: u64,
}

impl Component for OrderHasher {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        let v = u64::from(payload.downcast::<u32>());
        self.h = self.h.wrapping_mul(31).wrapping_add(v);
    }

    fn state_digest(&self) -> Option<u64> {
        Some(self.h)
    }
}

/// Fans `n` distinct values through `n` relay components so they all land
/// on `sink` at the same timestamp, each on its own channel, plus a couple
/// of spread-out arrivals so the trace has both tied and untied sets.
fn post_tied(sim: &mut Simulator, sink: ComponentId, t: Time, n: u32) {
    let delay = Dur::from_ns(10);
    let kick = t - delay;
    for v in 0..n {
        let relay = sim.add(
            format!("relay-{}-{v}", t.as_ps()),
            Relay {
                to: Endpoint::of(sink),
                delay,
            },
        );
        sim.post(Endpoint::of(relay), kick, v + 1);
    }
    sim.post(Endpoint::of(sink), t + Dur::from_ns(50), 1000u32);
    sim.post(Endpoint::of(sink), t + Dur::from_ns(70), 2000u32);
}

#[test]
fn commuting_handlers_pass_shadow_check() {
    let outcome = shadow_check(7, &[1, 2, 0xdead_beef], |sim| {
        let a = sim.add("summer-a", Summer { sum: 0 });
        let b = sim.add("summer-b", Summer { sum: 0 });
        post_tied(sim, a, Time::from_ps(100_000), 8);
        post_tied(sim, b, Time::from_ps(100_000), 8);
    })
    .expect("wrapping sum commutes; no race expected");
    assert!(
        outcome.contended_ties > 0,
        "fixture must actually exercise tie permutation"
    );
}

#[test]
fn golden_digest_is_reproducible() {
    let build = |sim: &mut Simulator| {
        let a = sim.add("summer", Summer { sum: 0 });
        post_tied(sim, a, Time::from_ps(200_000), 16);
    };
    let first = shadow_check(11, &[3, 4], build).unwrap();
    let second = shadow_check(11, &[5, 6, 7], build).unwrap();
    assert_eq!(
        first.golden_digest, second.golden_digest,
        "tie-normalized golden digest must be salt-independent"
    );
}

#[test]
fn non_commuting_handler_is_detected_and_named() {
    let tie_time = Time::from_ps(300_000);
    let report = shadow_check(13, &[1, 2, 3, 4], |sim| {
        let x = sim.add("order-hasher", OrderHasher { h: 0 });
        post_tied(sim, x, tie_time, 6);
    })
    .expect_err("order-sensitive fold must be flagged as a race");
    assert_eq!(report.component, "order-hasher");
    assert_eq!(
        report.time, tie_time,
        "report must name the contended timestamp, got: {report}"
    );
    // The rendered report carries the full (time, component, event type)
    // triple for the user.
    let msg = report.to_string();
    assert!(msg.contains("order-hasher"), "bad report: {msg}");
    assert!(msg.contains("u32"), "bad report: {msg}");
}

#[test]
fn tie_permutation_actually_reorders_within_a_tie() {
    // Sanity for the mechanism itself: an order-sensitive sink fed from 12
    // distinct channels must see a different interleaving under at least
    // one salt. (If every salt reproduced FIFO order the detector would be
    // vacuous.)
    let run = |salt: Option<u64>| {
        let mut sim = Simulator::new(99);
        if let Some(s) = salt {
            sim.permute_tie_order(s);
        }
        let x = sim.add("hasher", OrderHasher { h: 0 });
        post_tied(&mut sim, x, Time::from_ps(50_000), 12);
        assert_eq!(sim.run(), RunOutcome::Drained);
        sim.state_digests()[0].1
    };
    let baseline = run(None);
    assert!(
        (1..20).any(|s| run(Some(s)) != baseline),
        "no salt in 1..20 changed intra-tie order — permutation is broken"
    );
    // And the permutation itself is deterministic: same salt, same order.
    assert_eq!(run(Some(5)), run(Some(5)));
}

#[test]
fn same_channel_fifo_order_survives_permutation() {
    // Two values sent back-to-back by the *same* relay arrive at the same
    // timestamp on the same channel: program order, not a race. No salt
    // may reorder them.
    struct DoubleSend {
        to: Endpoint,
    }
    impl Component for DoubleSend {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
            let v = payload.downcast::<u32>();
            ctx.send(self.to, Dur::from_ns(10), v);
            ctx.send(self.to, Dur::from_ns(10), v + 1);
        }
    }
    let run = |salt: Option<u64>| {
        let mut sim = Simulator::new(3);
        if let Some(s) = salt {
            sim.permute_tie_order(s);
        }
        let x = sim.add("hasher", OrderHasher { h: 0 });
        let d = sim.add(
            "double",
            DoubleSend {
                to: Endpoint::of(x),
            },
        );
        sim.post(Endpoint::of(d), Time::from_ps(1_000), 7u32);
        assert_eq!(sim.run(), RunOutcome::Drained);
        sim.state_digests()[0].1
    };
    let baseline = run(None);
    for s in 1..10 {
        assert_eq!(
            run(Some(s)),
            baseline,
            "salt {s} reordered a single channel's FIFO stream"
        );
    }
}

#[test]
fn tie_recording_identical_across_queue_kinds() {
    let trace_for = |kind: QueueKind, salt: Option<u64>| {
        let mut sim = Simulator::new_with_queue(42, kind);
        sim.enable_tie_recording();
        if let Some(s) = salt {
            sim.permute_tie_order(s);
        }
        let a = sim.add("summer", Summer { sum: 0 });
        post_tied(&mut sim, a, Time::from_ps(400_000), 10);
        assert_eq!(sim.run(), RunOutcome::Drained);
        sim.tie_trace().unwrap()
    };
    for salt in [None, Some(17), Some(0xabcd)] {
        let cal = trace_for(QueueKind::Calendar, salt);
        let heap = trace_for(QueueKind::Heap, salt);
        assert_eq!(cal, heap, "canonical trace diverged across queue kinds");
        assert_eq!(cal.digest(), heap.digest());
    }
}

#[test]
fn cross_timestamp_order_is_untouched_by_permutation() {
    // Events at distinct timestamps must execute in time order regardless
    // of salt — OrderHasher over unique timestamps is salt-invariant.
    let run = |salt: Option<u64>| {
        let mut sim = Simulator::new(7);
        if let Some(s) = salt {
            sim.permute_tie_order(s);
        }
        let x = sim.add("hasher", OrderHasher { h: 0 });
        for v in 0..10u32 {
            sim.post(Endpoint::of(x), Time::from_ps(100 * u64::from(v + 1)), v);
        }
        assert_eq!(sim.run(), RunOutcome::Drained);
        sim.state_digests()[0].1
    };
    let baseline = run(None);
    for s in 1..10 {
        assert_eq!(run(Some(s)), baseline, "salt {s} leaked across timestamps");
    }
}
