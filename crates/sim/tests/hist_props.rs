//! Property tests for the integer [`Histogram`] behind the windowed SLO
//! time-series.
//!
//! The load-bearing property is *merge associativity/commutativity*: the
//! parallel engine shards a run, each shard observes into its own
//! histogram, and the gather merges them back in partition order. Any
//! grouping of the same observations must produce the identical
//! histogram — otherwise the windowed p99s `accl-obs` exports would
//! depend on the worker count, breaking the bit-replay contract. The
//! percentile edge cases (empty, single bucket, p0/p1000) are pinned
//! alongside because the window exporter calls them on sparse windows
//! where single-observation histograms are the common case.

use accl_sim::stats::Histogram;
use proptest::prelude::*;

fn from_values(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(merge(a, b), c) == merge(a, merge(b, c)) == observing the
    /// concatenation directly — any shard grouping is equivalent.
    #[test]
    fn merge_is_associative_and_matches_sequential(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
        c in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb, hc) = (from_values(&a), from_values(&b), from_values(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let sequential = from_values(&all);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &sequential);
    }

    /// Merging is commutative: shard order cannot matter.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (from_values(&a), from_values(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merging an empty histogram is the identity, in either direction.
    #[test]
    fn merge_with_empty_is_identity(
        a in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let ha = from_values(&a);
        let mut left = ha.clone();
        left.merge(&Histogram::new());
        prop_assert_eq!(&left, &ha);
        let mut right = Histogram::new();
        right.merge(&ha);
        prop_assert_eq!(&right, &ha);
    }

    /// Percentiles are monotone in `p`, bracketed by min/max, and p1000
    /// is exactly the max. Out-of-range `p` clamps to 1000.
    #[test]
    fn percentiles_are_monotone_and_bracketed(
        vals in proptest::collection::vec(any::<u64>(), 1..128),
        p_lo in 0u64..1001,
        p_hi in 0u64..1001,
    ) {
        let h = from_values(&vals);
        let (lo, hi) = (p_lo.min(p_hi), p_lo.max(p_hi));
        let at_lo = h.percentile_permille(lo).unwrap();
        let at_hi = h.percentile_permille(hi).unwrap();
        prop_assert!(at_lo <= at_hi, "p{lo}={at_lo} > p{hi}={at_hi}");
        let min = h.min().unwrap();
        let max = h.max().unwrap();
        prop_assert!(at_lo >= min && at_hi <= max);
        prop_assert_eq!(h.percentile_permille(1000).unwrap(), max);
        prop_assert_eq!(h.percentile_permille(u64::MAX), h.percentile_permille(1000));
    }

    /// A single observation answers every percentile with itself — the
    /// sparse-window common case the SLO exporter leans on.
    #[test]
    fn single_observation_answers_every_percentile(v in any::<u64>(), p in 0u64..1001) {
        let h = from_values(&[v]);
        prop_assert_eq!(h.percentile_permille(p), Some(v));
        prop_assert_eq!(h.min(), Some(v));
        prop_assert_eq!(h.max(), Some(v));
        prop_assert_eq!(h.count(), 1);
    }

    /// Values confined to one power-of-two bucket clamp to the observed
    /// min/max, never to the bucket's theoretical bounds.
    #[test]
    fn single_bucket_percentiles_stay_within_observations(
        bucket in 1usize..64,
        offsets in proptest::collection::vec(0u64..1024, 1..32),
        p in 0u64..1001,
    ) {
        let floor = Histogram::bucket_floor(bucket);
        let width = floor; // bucket i spans [2^(i-1), 2^i)
        let vals: Vec<u64> = offsets.iter().map(|o| floor + o % width.max(1)).collect();
        let h = from_values(&vals);
        let got = h.percentile_permille(p).unwrap();
        prop_assert!(got >= h.min().unwrap() && got <= h.max().unwrap());
    }
}

#[test]
fn empty_histogram_has_no_percentiles() {
    let h = Histogram::new();
    for p in [0, 1, 500, 999, 1000, u64::MAX] {
        assert_eq!(h.percentile_permille(p), None);
    }
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    assert_eq!(h.mean(), None);
    assert_eq!(h.count(), 0);
}

#[test]
fn p0_and_p1_hit_the_first_observation_rank() {
    // p=0 still ranks at least one observation (rank clamps to 1), so it
    // answers the smallest bucket's clamped ceiling, never `None`.
    let mut h = Histogram::new();
    h.observe(10);
    h.observe(1000);
    let p0 = h.percentile_permille(0).unwrap();
    let p1 = h.percentile_permille(1).unwrap();
    assert!(
        (10..1000).contains(&p0),
        "p0 ranks the first observation: {p0}"
    );
    assert_eq!(p0, p1, "rank 1 for both at this count");
    assert_eq!(h.percentile_permille(1000), Some(1000));
}
