//! Property tests for the fixed-point [`Pipe`] arithmetic.
//!
//! The load-bearing property is *segmentation neutrality*: splitting a
//! transfer into arbitrary back-to-back pieces must end at exactly the
//! instant the unsplit transfer would. TCP/RDMA segmentation and the POE
//! coalescing knob rely on this — changing how many events carry a message
//! must not move its last byte on the wire.

use accl_sim::pipe::Pipe;
use accl_sim::time::{Dur, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reserving_n_equals_two_halves_back_to_back(
        tenth_gbps in 1u64..4_000,
        n in 1u64..2_000_000,
        split_ppm in 0u64..1_000_000,
    ) {
        let gbps = tenth_gbps as f64 / 10.0;
        let k = ((n as u128 * split_ppm as u128) / 1_000_000) as u64;

        let mut whole = Pipe::gbps(gbps);
        let (ws, we) = whole.reserve(Time::ZERO, n);

        let mut halves = Pipe::gbps(gbps);
        let (hs, _) = halves.reserve(Time::ZERO, k);
        let (_, he) = halves.reserve(Time::ZERO, n - k);

        prop_assert_eq!(ws, hs);
        prop_assert_eq!(we, he, "gbps={} n={} k={}", gbps, n, k);
        prop_assert_eq!(whole.busy_time(), halves.busy_time());
        prop_assert_eq!(whole.bytes_moved(), halves.bytes_moved());
    }

    #[test]
    fn many_way_splits_are_also_exact(
        tenth_gbps in 1u64..4_000,
        n in 64u64..1_000_000,
        pieces in 2u64..64,
    ) {
        let gbps = tenth_gbps as f64 / 10.0;
        let mut whole = Pipe::gbps(gbps);
        let (_, we) = whole.reserve(Time::ZERO, n);

        let mut split = Pipe::gbps(gbps);
        let each = n / pieces;
        let mut sent = 0;
        let mut end = Time::ZERO;
        for _ in 0..pieces - 1 {
            end = split.reserve(Time::ZERO, each).1;
            sent += each;
        }
        end = end.max(split.reserve(Time::ZERO, n - sent).1);

        prop_assert_eq!(we, end, "gbps={} n={} pieces={}", gbps, n, pieces);
    }

    #[test]
    fn batch_reservation_matches_serial_segments(
        tenth_gbps in 1u64..4_000,
        mtu in 64u64..9_216,
        segs in 1u64..32,
        overhead_ps in 0u64..100_000,
    ) {
        let gbps = tenth_gbps as f64 / 10.0;
        let per_item = Dur::from_ps(overhead_ps);

        let mut batched = Pipe::gbps(gbps).with_per_item(per_item);
        let (_, be) = batched.reserve_batch(Time::ZERO, mtu * segs, segs);

        let mut serial = Pipe::gbps(gbps).with_per_item(per_item);
        let mut end = Time::ZERO;
        for _ in 0..segs {
            end = serial.reserve(Time::ZERO, mtu).1;
        }

        prop_assert_eq!(be, end, "gbps={} mtu={} segs={}", gbps, mtu, segs);
        prop_assert_eq!(batched.items(), serial.items());
        prop_assert_eq!(batched.busy_time(), serial.busy_time());
    }
}
