//! The tiered event queue: a bucketed near-future calendar spilling to a
//! far-future heap, with payloads recycled through a slab.
//!
//! The simulation's event population is bimodal. Almost all events are
//! *near*: pipe beats, link hops, cycle ticks and processing delays a few
//! nanoseconds to a microsecond out. A small minority are *far*: RTO
//! retransmission timers, stall watchdogs, starvation timeouts tens of
//! microseconds to milliseconds out. A global `BinaryHeap` pays `O(log n)`
//! sift cost per event for both; the tiered queue gives the near majority
//! `O(1)` amortized push/pop (a calendar of [`NUM_BUCKETS`] buckets of
//! [`BUCKET_WIDTH_PS`] each) and parks the far minority in a small spill
//! heap that is only consulted when the calendar window slides.
//!
//! **Ordering contract**: `pop` always returns the globally smallest
//! `(time, seq)` event — bit-identical to the `BinaryHeap` it replaced.
//! [`QueueKind::Heap`] keeps the old ordering structure alive behind the
//! same API so tests can A/B the two and assert identical timelines.
//!
//! Event bodies (`Endpoint` + [`Payload`]) live in a slab indexed by `u32`;
//! the ordering structures move only 20-byte keys, and slots are recycled
//! through a free list so steady-state scheduling never allocates.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::event::{Endpoint, Payload};
use crate::time::Time;

/// Log2 of the calendar bucket width in picoseconds.
const BUCKET_WIDTH_BITS: u32 = 12;
/// Width of one calendar bucket: 4096 ps ≈ 4.1 ns, sized to the common
/// short-delay event (pipe beat at 100 Gbps, link hop, cycle tick).
pub const BUCKET_WIDTH_PS: u64 = 1 << BUCKET_WIDTH_BITS;
/// Number of calendar buckets (power of two). The calendar window spans
/// `NUM_BUCKETS * BUCKET_WIDTH_PS` ≈ 4.2 us; anything further out (RTO
/// timers start at 25 us) spills to the far heap.
pub const NUM_BUCKETS: usize = 1024;
const BUCKET_MASK: usize = NUM_BUCKETS - 1;
/// Calendar window span in picoseconds.
pub const CALENDAR_SPAN_PS: u64 = (NUM_BUCKETS as u64) << BUCKET_WIDTH_BITS;

/// Which ordering structure backs the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Single global binary heap — the pre-overhaul structure, kept for
    /// A/B timeline validation and as a fallback.
    Heap,
    /// Tiered calendar + far-heap scheduler (the default).
    #[default]
    Calendar,
}

/// Ordering key for one scheduled event; the body lives in the slab.
#[derive(Clone, Copy, Debug)]
struct EvKey {
    time: u64,
    seq: u64,
    /// Channel tie-break rank. Zero normally (FIFO by `seq`); under a
    /// `race-detect` tie-order permutation it is a seeded hash of the
    /// event's *channel* — `(source component, destination endpoint)` —
    /// so same-timestamp events from different channels interleave in a
    /// permuted (but still deterministic and total) order, while each
    /// channel's own FIFO order and all cross-timestamp order are
    /// untouched. Same-channel order is program order, never a race;
    /// cross-channel tie order is exactly what racy handlers depend on.
    #[cfg(feature = "race-detect")]
    tie: u64,
    idx: u32,
}

impl EvKey {
    #[cfg(feature = "race-detect")]
    #[inline]
    fn key(&self) -> (u64, u64, u64) {
        (self.time, self.tie, self.seq)
    }

    #[cfg(not(feature = "race-detect"))]
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// Channel-source marker for events posted from outside any component
/// (`Simulator::post` from a test or benchmark harness).
#[cfg(feature = "race-detect")]
pub(crate) const SRC_EXTERNAL: u32 = u32::MAX;

/// SplitMix64 finalizer, used to rank channels deterministically under a
/// tie-order permutation. (Totality of the event order does not depend on
/// this hash: colliding channel ranks fall back to `seq` order.)
#[cfg(feature = "race-detect")]
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl PartialEq for EvKey {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for EvKey {}
impl PartialOrd for EvKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other.key().cmp(&self.key())
    }
}

/// Slab slot holding the body of a scheduled event.
///
/// `payload` is live iff the slot's index is referenced by a key in one of
/// the ordering structures (never from the free list); `ManuallyDrop`
/// avoids paying an `Option` discriminant write on every push/pop, and
/// `EventQueue::drop` drains pending events to release live payloads.
struct Slot {
    dst: Endpoint,
    payload: core::mem::ManuallyDrop<Payload>,
}

/// The event queue. See the module docs for the design.
pub(crate) struct EventQueue {
    kind: QueueKind,
    /// Event bodies; `free` lists vacant indices for recycling.
    slab: Vec<Slot>,
    free: Vec<u32>,
    /// Near-future calendar. Only the cursor bucket is kept sorted
    /// (descending, so the minimum pops from the end); other buckets are
    /// unsorted and sorted once when the cursor reaches them.
    buckets: Vec<Vec<EvKey>>,
    cursor: usize,
    /// Start time (ps) of the cursor bucket. The calendar window covers
    /// `[cursor_start, cursor_start + CALENDAR_SPAN_PS)`.
    cursor_start: u64,
    cursor_sorted: bool,
    near_len: usize,
    /// Far-future spill (min-heap via reversed `Ord`).
    far: BinaryHeap<EvKey>,
    /// Legacy single-heap structure for [`QueueKind::Heap`].
    heap: BinaryHeap<EvKey>,
    len: usize,
    /// Seed of the tie-order permutation, when one is active.
    #[cfg(feature = "race-detect")]
    tie_salt: Option<u64>,
    /// Source component of events being pushed right now: the handler the
    /// simulator is currently executing, or [`SRC_EXTERNAL`] for events
    /// posted from outside any component.
    #[cfg(feature = "race-detect")]
    cur_src: u32,
}

impl Drop for EventQueue {
    fn drop(&mut self) {
        // Release live payloads (`ManuallyDrop` in the slab will not).
        while self.pop().is_some() {}
    }
}

impl EventQueue {
    pub(crate) fn new(kind: QueueKind) -> Self {
        EventQueue {
            kind,
            slab: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); NUM_BUCKETS],
            cursor: 0,
            cursor_start: 0,
            cursor_sorted: true,
            near_len: 0,
            far: BinaryHeap::new(),
            heap: BinaryHeap::new(),
            len: 0,
            #[cfg(feature = "race-detect")]
            tie_salt: None,
            #[cfg(feature = "race-detect")]
            cur_src: SRC_EXTERNAL,
        }
    }

    /// Sets (or clears) the tie-order permutation seed. Affects events
    /// pushed from now on: same-timestamp events from *different channels*
    /// (source component → destination endpoint) execute in a seeded
    /// permutation of the channel interleaving instead of FIFO; each
    /// channel's own order is program order and never permuted. The order
    /// stays total and fully deterministic for a given salt; only the
    /// *tie-breaking rule* changes. Used by the race detector's shadow
    /// runs to probe whether same-timestamp handlers commute.
    #[cfg(feature = "race-detect")]
    pub(crate) fn set_tie_salt(&mut self, salt: Option<u64>) {
        self.tie_salt = salt;
    }

    /// Declares the source component of subsequently pushed events (the
    /// handler about to execute), or [`SRC_EXTERNAL`] between handlers.
    #[cfg(feature = "race-detect")]
    pub(crate) fn set_tie_src(&mut self, src: u32) {
        self.cur_src = src;
    }

    /// The active tie-order permutation seed, if any — so parallel shards
    /// can inherit the master queue's permutation.
    #[cfg(feature = "race-detect")]
    pub(crate) fn tie_salt(&self) -> Option<u64> {
        self.tie_salt
    }

    pub(crate) fn kind(&self) -> QueueKind {
        self.kind
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[allow(dead_code)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` for `dst` at `(time, seq)`.
    #[inline]
    pub(crate) fn push(&mut self, time: Time, seq: u64, dst: Endpoint, payload: Payload) {
        let payload = core::mem::ManuallyDrop::new(payload);
        let idx = match self.free.pop() {
            Some(i) => {
                // Assigning over a `ManuallyDrop` never drops the previous
                // value; the old payload was taken when the slot was freed.
                self.slab[i as usize] = Slot { dst, payload };
                i
            }
            None => {
                let i = u32::try_from(self.slab.len()).expect("event slab overflow");
                self.slab.push(Slot { dst, payload });
                i
            }
        };
        let key = EvKey {
            time: time.as_ps(),
            seq,
            #[cfg(feature = "race-detect")]
            tie: match self.tie_salt {
                Some(salt) => {
                    // Rank the event's channel, not the event: a seeded
                    // hash of (source, destination) keeps same-channel
                    // events adjacent (their order falls back to `seq` =
                    // program order) while shuffling how distinct channels
                    // interleave within a timestamp.
                    let chan = (u64::from(self.cur_src) << 48)
                        ^ ((dst.comp.index() as u64) << 16)
                        ^ u64::from(dst.port.0);
                    splitmix64(chan ^ salt)
                }
                None => 0,
            },
            idx,
        };
        self.len += 1;
        match self.kind {
            QueueKind::Heap => self.heap.push(key),
            QueueKind::Calendar => self.push_calendar(key),
        }
    }

    /// Removes the globally earliest `(time, seq)` event and returns its
    /// key; the body stays in the slab until [`EventQueue::take`] claims it.
    /// Splitting pop this way keeps the returned value in registers on the
    /// hot path.
    #[inline]
    pub(crate) fn pop_key(&mut self) -> Option<(Time, u64, u32)> {
        let key = match self.kind {
            QueueKind::Heap => self.heap.pop()?,
            QueueKind::Calendar => {
                if !self.settle() {
                    return None;
                }
                let key = self.buckets[self.cursor].pop().expect("settled on event");
                self.near_len -= 1;
                key
            }
        };
        self.len -= 1;
        Some((Time::from_ps(key.time), key.seq, key.idx))
    }

    /// Claims the body of an event whose key was returned by
    /// [`EventQueue::pop_key`], freeing its slab slot.
    #[inline]
    pub(crate) fn take(&mut self, idx: u32) -> (Endpoint, Payload) {
        let slot = &mut self.slab[idx as usize];
        // SAFETY: `idx` came from a popped key, so the slot is live and no
        // other key references it; the slot index moves to the free list,
        // so the payload is never read or dropped again.
        let payload = unsafe { core::mem::ManuallyDrop::take(&mut slot.payload) };
        let dst = slot.dst;
        self.free.push(idx);
        (dst, payload)
    }

    /// Removes and returns the globally earliest `(time, seq)` event.
    pub(crate) fn pop(&mut self) -> Option<(Time, u64, Endpoint, Payload)> {
        let (time, seq, idx) = self.pop_key()?;
        let (dst, payload) = self.take(idx);
        Some((time, seq, dst, payload))
    }

    /// Time of the earliest pending event. `&mut` because the calendar may
    /// advance its cursor over empty buckets to find it.
    #[inline]
    pub(crate) fn peek_time(&mut self) -> Option<Time> {
        match self.kind {
            QueueKind::Heap => self.heap.peek().map(|k| Time::from_ps(k.time)),
            QueueKind::Calendar => {
                if !self.settle() {
                    return None;
                }
                self.buckets[self.cursor]
                    .last()
                    .map(|k| Time::from_ps(k.time))
            }
        }
    }

    /// Switches the backing structure, preserving all pending events and
    /// their `(time, seq)` order. Used by tests to A/B the schedulers on
    /// an already-built simulation.
    pub(crate) fn set_kind(&mut self, kind: QueueKind) {
        if kind == self.kind {
            return;
        }
        let mut pending = Vec::with_capacity(self.len);
        while let Some(ev) = self.pop() {
            pending.push(ev);
        }
        self.kind = kind;
        for (time, seq, dst, payload) in pending {
            self.push(time, seq, dst, payload);
        }
    }

    /// Inclusive end of the calendar window.
    #[inline]
    fn window_end_incl(&self) -> u64 {
        self.cursor_start.saturating_add(CALENDAR_SPAN_PS - 1)
    }

    #[inline]
    fn push_calendar(&mut self, key: EvKey) {
        if key.time > self.window_end_incl() {
            self.far.push(key);
            return;
        }
        self.near_len += 1;
        // `send_at` forbids scheduling into the past, but the cursor may sit
        // ahead of `now` after a peek advanced it over empty buckets; such
        // events (rel == 0 by saturation) belong in the cursor bucket, where
        // descending order still pops them first.
        let rel = (key.time.saturating_sub(self.cursor_start) >> BUCKET_WIDTH_BITS) as usize;
        debug_assert!(rel < NUM_BUCKETS);
        if rel == 0 {
            let bucket = &mut self.buckets[self.cursor];
            if self.cursor_sorted {
                // Keep the active bucket sorted (descending by (time, seq)).
                // The common case — the bucket just drained, or the new key
                // is the earliest pending — appends without a search.
                if bucket.last().is_none_or(|e| e.key() > key.key()) {
                    bucket.push(key);
                } else {
                    let pos = bucket.partition_point(|e| e.key() > key.key());
                    bucket.insert(pos, key);
                }
            } else {
                bucket.push(key);
            }
        } else {
            self.buckets[(self.cursor + rel) & BUCKET_MASK].push(key);
        }
    }

    /// Positions the cursor on the bucket holding the globally earliest
    /// event and sorts it. Returns `false` if the queue is empty.
    #[inline]
    fn settle(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            if self.near_len == 0 {
                // Calendar empty: jump the window to the far minimum.
                let fmin = self.far.peek().expect("len > 0 with empty tiers").time;
                self.cursor_start = fmin & !(BUCKET_WIDTH_PS - 1);
                self.cursor_sorted = false;
                self.migrate_far();
                debug_assert!(self.near_len > 0);
            }
            if !self.buckets[self.cursor].is_empty() {
                if !self.cursor_sorted {
                    // allow_nondeterminism(unstable-tie-sort): every key ends in the globally unique seq, so no two elements compare equal
                    self.buckets[self.cursor].sort_unstable_by_key(|e| core::cmp::Reverse(e.key()));
                    self.cursor_sorted = true;
                }
                return true;
            }
            // Advance the window one bucket; the bucket the cursor leaves
            // behind comes to represent the new far edge of the window, so
            // pull any far events that now fall inside it.
            self.cursor = (self.cursor + 1) & BUCKET_MASK;
            self.cursor_start += BUCKET_WIDTH_PS;
            self.cursor_sorted = false;
            if self
                .far
                .peek()
                .is_some_and(|f| f.time <= self.window_end_incl())
            {
                self.migrate_far();
            }
        }
    }

    /// Moves far-heap events that now fall inside the calendar window.
    fn migrate_far(&mut self) {
        let limit = self.window_end_incl();
        while let Some(f) = self.far.peek() {
            if f.time > limit {
                break;
            }
            let key = self.far.pop().expect("peeked");
            self.near_len += 1;
            let rel = (key.time.saturating_sub(self.cursor_start) >> BUCKET_WIDTH_BITS) as usize;
            debug_assert!(rel < NUM_BUCKETS);
            if rel == 0 && self.cursor_sorted {
                let bucket = &mut self.buckets[self.cursor];
                let pos = bucket.partition_point(|e| e.key() > key.key());
                bucket.insert(pos, key);
            } else {
                self.buckets[(self.cursor + rel) & BUCKET_MASK].push(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComponentId, PortId};

    fn ep(comp: u32) -> Endpoint {
        Endpoint::new(ComponentId(comp), PortId::DEFAULT)
    }

    fn drain(q: &mut EventQueue) -> Vec<(u64, u64)> {
        core::iter::from_fn(|| q.pop())
            .map(|(t, s, _, _)| (t.as_ps(), s))
            .collect()
    }

    #[test]
    fn orders_by_time_then_seq() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let mut q = EventQueue::new(kind);
            for (t, s) in [(10, 2u64), (5, 3), (10, 1), (5, 0)] {
                q.push(Time::from_ps(t), s, ep(0), Payload::new(()));
            }
            assert_eq!(drain(&mut q), vec![(5, 0), (5, 3), (10, 1), (10, 2)]);
        }
    }

    #[test]
    fn near_and_far_events_interleave_correctly() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        let mut expect = Vec::new();
        // Far timers way beyond the calendar span, near events inside it,
        // and events right at the span boundary.
        let times = [
            1u64,
            BUCKET_WIDTH_PS - 1,
            BUCKET_WIDTH_PS,
            CALENDAR_SPAN_PS - 1,
            CALENDAR_SPAN_PS,
            CALENDAR_SPAN_PS + 1,
            10 * CALENDAR_SPAN_PS,
            100 * CALENDAR_SPAN_PS + 7,
        ];
        for (seq, &t) in times.iter().enumerate() {
            let seq = seq as u64;
            q.push(Time::from_ps(t), seq, ep(0), Payload::new(()));
            expect.push((t, seq));
        }
        expect.sort_unstable();
        assert_eq!(drain(&mut q), expect);
    }

    #[test]
    fn matches_heap_on_adversarial_sequences() {
        // Deterministic pseudo-random interleaving of pushes and pops with
        // near, far and boundary-straddling times; both queue kinds must
        // produce identical sequences.
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut ops: Vec<Option<(u64, u64)>> = Vec::new(); // Some=push(time), None=pop
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut pending = 0i64;
        for _ in 0..4000 {
            let r = step();
            if r % 5 == 0 && pending > 0 {
                ops.push(None);
                pending -= 1;
            } else {
                // Mix of sub-bucket, sub-span and far-future delays.
                let delay = match r % 7 {
                    0..=2 => r % BUCKET_WIDTH_PS,
                    3..=4 => r % CALENDAR_SPAN_PS,
                    5 => r % (20 * CALENDAR_SPAN_PS),
                    _ => 0,
                };
                ops.push(Some((now + delay, seq)));
                seq += 1;
                pending += 1;
            }
            now += step() % 100;
        }

        let run = |kind: QueueKind| -> Vec<(u64, u64)> {
            let mut q = EventQueue::new(kind);
            let mut out = Vec::new();
            for op in &ops {
                match op {
                    Some((t, s)) => q.push(Time::from_ps(*t), *s, ep(0), Payload::new(*s)),
                    None => {
                        let (t, s, _, p) = q.pop().expect("pop on non-empty");
                        assert_eq!(p.downcast::<u64>(), s);
                        out.push((t.as_ps(), s));
                    }
                }
            }
            out.extend(core::iter::from_fn(|| q.pop()).map(|(t, s, _, _)| (t.as_ps(), s)));
            out
        };
        assert_eq!(run(QueueKind::Heap), run(QueueKind::Calendar));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        q.push(Time::from_ps(500), 0, ep(0), Payload::new(()));
        q.push(
            Time::from_ps(100 * CALENDAR_SPAN_PS),
            1,
            ep(0),
            Payload::new(()),
        );
        assert_eq!(q.peek_time(), Some(Time::from_ps(500)));
        assert_eq!(q.pop().unwrap().0, Time::from_ps(500));
        assert_eq!(q.peek_time(), Some(Time::from_ps(100 * CALENDAR_SPAN_PS)));
        assert_eq!(q.pop().unwrap().0, Time::from_ps(100 * CALENDAR_SPAN_PS));
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn push_behind_an_advanced_cursor_still_pops_first() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        // A lone far event pulls the cursor forward on peek...
        q.push(
            Time::from_ps(50 * CALENDAR_SPAN_PS),
            0,
            ep(0),
            Payload::new(()),
        );
        assert_eq!(q.peek_time(), Some(Time::from_ps(50 * CALENDAR_SPAN_PS)));
        // ...then an earlier event arrives (allowed: still >= sim time).
        q.push(Time::from_ps(1000), 1, ep(0), Payload::new(()));
        assert_eq!(q.peek_time(), Some(Time::from_ps(1000)));
        assert_eq!(drain(&mut q), vec![(1000, 1), (50 * CALENDAR_SPAN_PS, 0)]);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        for round in 0..10u64 {
            for i in 0..100u64 {
                q.push(
                    Time::from_ps(round * 1000 + i),
                    round * 100 + i,
                    ep(0),
                    Payload::new(i),
                );
            }
            for _ in 0..100 {
                q.pop().unwrap();
            }
        }
        // All rounds reused the 100 slots of the first.
        assert!(q.slab.len() <= 100, "slab grew to {}", q.slab.len());
    }

    #[test]
    fn set_kind_preserves_pending_events() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        for (i, &t) in [700u64, 20, 20, 5 * CALENDAR_SPAN_PS, 3].iter().enumerate() {
            q.push(Time::from_ps(t), i as u64, ep(0), Payload::new(i));
        }
        q.set_kind(QueueKind::Heap);
        assert_eq!(q.kind(), QueueKind::Heap);
        assert_eq!(q.len(), 5);
        assert_eq!(
            drain(&mut q),
            vec![
                (3, 4),
                (20, 1),
                (20, 2),
                (700, 0),
                (5 * CALENDAR_SPAN_PS, 3)
            ]
        );
    }
}
