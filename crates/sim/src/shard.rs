//! Conservative parallel execution of the discrete-event simulator.
//!
//! The cluster decomposes naturally by rank: each node's components (CCLO,
//! POE, DMA, host) interact densely with each other and only talk to other
//! nodes through network links that carry a physical propagation delay. This
//! module exploits that structure: components are partitioned (by
//! [`crate::sim::Simulator::assign_partitions`]), each partition becomes a
//! *shard* with its own tiered-calendar event queue, and shards advance
//! concurrently inside conservative *safe windows* whose width is bounded by
//! the minimum cross-partition link delay — the *lookahead*, extracted from
//! the network topology.
//!
//! # Synchronization protocol: barrier windows
//!
//! We use barrier-window synchronization rather than per-link null messages
//! (Chandy–Misra–Bryant). Null messages shine when partitions are loosely
//! coupled and a global barrier would over-synchronize; here every rank
//! exchanges traffic with the switch partition every few hundred nanoseconds,
//! so the *global* minimum next-event time is an accurate progress bound and
//! two barriers per window are cheaper than per-edge timestamp flooding —
//! and, crucially, the barrier gives a natural deterministic merge point.
//!
//! Each window runs three phases:
//!
//! - **Phase C (decide)** — every worker independently computes the same
//!   decision (advance to `W`, or finish) from per-partition gauges that were
//!   published in the previous phase B. No barrier is needed: the inputs are
//!   only ever written between the two barriers, so they are stable and
//!   identical for all workers.
//! - **Phase A (execute)** — each worker runs its shards' events with
//!   `time < W`, accumulating cross-partition sends into per-destination
//!   outboxes, then appends them to shared per-`(src, dst)` mailboxes.
//! - **Barrier, Phase B (merge + publish), barrier** — each worker drains its
//!   shards' inboxes (in source-partition order) into the shard queues, then
//!   publishes `next event time`, `queue depth`, `events executed` and the
//!   stop flag for the next phase C.
//!
//! The window end is `W = min(gmin + max(lookahead, 1 ps), horizon,
//! deadline)` where `gmin` is the global minimum next-event time: always
//! strictly greater than `gmin`, so every window executes at least one event
//! and the simulation cannot livelock even with zero lookahead.
//!
//! # Why thread count never changes the result
//!
//! Safety: an event executing at `t ∈ [gmin, W)` can only schedule a
//! cross-partition event at `t + d` with `d ≥ lookahead`, hence at
//! `t + d ≥ gmin + lookahead ≥ W` — never inside the open window. A shard
//! therefore never receives an event earlier than something it already
//! executed. [`ShardRouter::send_remote`] asserts this and panics naming the
//! offending edge (the lookahead-violation detector).
//!
//! Determinism: inside a shard, events are keyed
//! `((local_seq << SHARD_BITS) | source_partition)`, so the execution order
//! is the pure function `(time, seq, source-partition)` of the simulation —
//! per-channel FIFO is preserved and nothing depends on thread scheduling.
//! Shards are always one-per-*partition* (workers own `partition % workers`),
//! so the decomposition — and with it every digest — is identical at any
//! worker count. At merge points (scatter/gather and the end-of-run merge)
//! events are combined by a **stable** sort on `(time, key)`; keys are
//! globally unique, so the order is total and deterministic.
//!
//! Relative to the sequential loop, parallel execution is the same timeline
//! modulo a *channel-preserving tie permutation* (the class of reorderings
//! the `race-detect` shadow runs certify handlers commute under), with these
//! documented window-granularity divergences: `Ctx::stop` takes effect at the
//! next window edge instead of the next event; the event budget can overshoot
//! by up to one window; the final time after `Stopped`/`Budget` is the
//! maximum shard time; queue-depth gauges are sampled per window, not per
//! event; and the master RNG stream is not advanced by shard events (each
//! shard draws from its own forked stream).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use crate::event::{ComponentId, Endpoint, Payload};
use crate::sim::{DepthGauges, RunOutcome, Simulator, FNV_OFFSET};
use crate::time::{Dur, Time};

/// Low bits of a shard event key that carry the source-partition tag; the
/// rest is the shard-local sequence number.
pub(crate) const SHARD_BITS: u32 = 12;

/// Mask for the source-partition tag bits.
pub(crate) const SHARD_MASK: u64 = (1 << SHARD_BITS) - 1;

/// Source tag for events that did not originate in any shard this epoch:
/// events pending in the master queue at scatter time (external posts,
/// leftovers of a previous epoch). Reserved — partition ids must stay below
/// it.
pub(crate) const TAG_EXTERNAL: u64 = SHARD_MASK;

/// A cross-partition event in flight between shards.
struct RemoteEv {
    time: Time,
    /// Merge key: `(local_seq << SHARD_BITS) | source_partition`.
    key: u64,
    /// Source component index (tie-permutation channel id under
    /// `race-detect`; carried unconditionally to keep the struct simple).
    src: u32,
    dst: Endpoint,
    payload: Payload,
}

/// Routes cross-partition sends while a shard executes a window.
pub(crate) struct ShardRouter {
    partition: u32,
    partition_of: Arc<Vec<u32>>,
    names: Arc<Vec<String>>,
    lookahead: Dur,
    /// End of the window currently executing; a remote event scheduled
    /// before this is a lookahead violation.
    window_end: Time,
    /// Outgoing events accumulated this window, per destination partition.
    outboxes: Vec<Vec<RemoteEv>>,
}

impl ShardRouter {
    /// This shard's partition id, as the low bits of a merge key.
    pub(crate) fn partition_tag(&self) -> u64 {
        u64::from(self.partition)
    }

    /// Whether `dst` lives in this shard's partition.
    pub(crate) fn is_local(&self, dst: Endpoint) -> bool {
        self.partition_of[dst.comp.index()] == self.partition
    }

    /// Queues a cross-partition event for delivery at the next merge.
    ///
    /// # Panics
    ///
    /// Panics when `at` lies inside the open safe window — the sending edge
    /// carries less than the configured lookahead, which would let thread
    /// scheduling change the timeline. The message names the edge.
    pub(crate) fn send_remote(
        &mut self,
        at: Time,
        key: u64,
        src: ComponentId,
        dst: Endpoint,
        payload: Payload,
    ) {
        assert!(
            at >= self.window_end,
            "lookahead violation: {} -> {} scheduled at {} inside the open safe window \
             (window end {}, configured lookahead {}); cross-partition events must carry \
             at least the lookahead delay, or the components must share a partition",
            self.names[src.index()],
            self.names[dst.comp.index()],
            at,
            self.window_end,
            self.lookahead,
        );
        let dstp = self.partition_of[dst.comp.index()] as usize;
        self.outboxes[dstp].push(RemoteEv {
            time: at,
            key,
            src: src.index() as u32,
            dst,
            payload,
        });
    }
}

/// One partition's slice of the simulation: its own event queue, the
/// components it owns (a full-length slot vector with `None` elsewhere),
/// and a router for cross-partition sends.
struct Shard {
    partition: u32,
    sim: Simulator,
    router: ShardRouter,
}

impl Shard {
    /// Phase A: executes this shard's events with `time < window_end`
    /// (bounded by `cap`), then hands accumulated cross-partition events to
    /// the shared mailboxes.
    fn run_window(&mut self, window_end: Time, cap: u64, coord: &Coord) {
        self.router.window_end = window_end;
        let mut n = 0u64;
        while n < cap && !self.sim.stop {
            match self.sim.queue.peek_time() {
                Some(t) if t < window_end => {}
                _ => break,
            }
            self.sim.step_with_router(&mut self.router);
            n += 1;
        }
        let p = self.partition as usize;
        for (dstp, outbox) in self.router.outboxes.iter_mut().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            let mut slot = lock(&coord.mailboxes[p * coord.nparts + dstp]);
            slot.append(outbox);
        }
    }

    /// Phase B: drains this shard's inboxes (in source-partition order,
    /// though the `(time, key)` queue order makes insertion order
    /// irrelevant) and publishes the gauges the next decision reads.
    fn merge_and_publish(&mut self, coord: &Coord) {
        let p = self.partition as usize;
        for src in 0..coord.nparts {
            let mut inbox = lock(&coord.mailboxes[src * coord.nparts + p]);
            for ev in inbox.drain(..) {
                #[cfg(feature = "race-detect")]
                self.sim.queue.set_tie_src(ev.src);
                let _ = ev.src;
                self.sim.queue.push(ev.time, ev.key, ev.dst, ev.payload);
            }
        }
        #[cfg(feature = "race-detect")]
        self.sim.queue.set_tie_src(crate::queue::SRC_EXTERNAL);
        let next = self.sim.queue.peek_time().map_or(u64::MAX, |t| t.as_ps());
        coord.next_times[p].store(next, Ordering::SeqCst);
        coord.depth[p].store(self.sim.queue.len() as u64, Ordering::SeqCst);
        coord.executed[p].store(self.sim.executed, Ordering::SeqCst);
        if self.sim.stop {
            coord.stop.store(true, Ordering::SeqCst);
        }
    }
}

/// Locks a mutex, recovering from poisoning: a worker that panicked while
/// holding a lock has already flagged [`Coord::poisoned`], and everyone is
/// on the way out — the data behind the lock no longer matters.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared worker coordination state for one epoch.
struct Coord {
    nparts: usize,
    barrier: Barrier,
    /// Cross-partition event channels, indexed `src * nparts + dst`. Each
    /// slot is written only by the owner of `src` (phase A) and drained only
    /// by the owner of `dst` (phase B); the mutex makes that safe without
    /// encoding the ownership in types.
    mailboxes: Vec<Mutex<Vec<RemoteEv>>>,
    /// Per-partition next-event time in ps (`u64::MAX` = queue empty).
    next_times: Vec<AtomicU64>,
    /// Per-partition queue depth, for the scheduler gauges.
    depth: Vec<AtomicU64>,
    /// Per-partition cumulative events executed this epoch.
    executed: Vec<AtomicU64>,
    /// Sticky `Ctx::stop` flag, OR of all shards.
    stop: AtomicBool,
    /// Set when any worker panicked; everyone unwinds at the next barrier.
    poisoned: AtomicBool,
    /// First panic payload, rethrown on the main thread after join.
    poison: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Coord {
    fn new(nparts: usize, nworkers: usize, shards: &mut [Shard]) -> Self {
        let coord = Coord {
            nparts,
            barrier: Barrier::new(nworkers),
            mailboxes: (0..nparts * nparts)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            next_times: (0..nparts).map(|_| AtomicU64::new(u64::MAX)).collect(),
            depth: (0..nparts).map(|_| AtomicU64::new(0)).collect(),
            executed: (0..nparts).map(|_| AtomicU64::new(0)).collect(),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            poison: Mutex::new(None),
        };
        // Seed the first decision's inputs, as if a phase B had just run.
        for shard in shards.iter_mut() {
            let p = shard.partition as usize;
            let next = shard.sim.queue.peek_time().map_or(u64::MAX, |t| t.as_ps());
            coord.next_times[p].store(next, Ordering::SeqCst);
            coord.depth[p].store(shard.sim.queue.len() as u64, Ordering::SeqCst);
        }
        coord
    }

    fn poison(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock(&self.poison);
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.poisoned.store(true, Ordering::SeqCst);
    }
}

/// Immutable per-epoch inputs to the replicated decision.
struct DecideParams {
    horizon: Time,
    /// Events this epoch may execute (already net of previous epochs).
    budget: u64,
    lookahead: Dur,
    deadline: Option<Time>,
}

/// The phase-B-published gauges, read identically by every worker.
struct Snapshot {
    /// Global minimum next-event time in ps (`None` = all queues empty).
    gmin: Option<u64>,
    executed: u64,
    depth: usize,
    stop: bool,
}

impl Snapshot {
    fn read(coord: &Coord) -> Self {
        let mut gmin = u64::MAX;
        let mut executed = 0u64;
        let mut depth = 0usize;
        for p in 0..coord.nparts {
            gmin = gmin.min(coord.next_times[p].load(Ordering::SeqCst));
            executed += coord.executed[p].load(Ordering::SeqCst);
            depth += coord.depth[p].load(Ordering::SeqCst) as usize;
        }
        Snapshot {
            gmin: (gmin != u64::MAX).then_some(gmin),
            executed,
            depth,
            stop: coord.stop.load(Ordering::SeqCst),
        }
    }
}

/// Why the workers stopped advancing windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Finish {
    Stopped,
    Drained,
    /// Carries `gmin` in ps, for the final-time clamp.
    Horizon(u64),
    Budget,
    /// The stall deadline fell at or before the next event; the epoch
    /// controller sweeps for parked work and either stalls or resumes.
    DeadlineCross,
    Poisoned,
}

enum Decision {
    Finish(Finish),
    Advance { window_end: Time, cap: u64 },
}

/// The replicated decision — mirrors the sequential loop's check order:
/// stop, stall-deadline crossing, drain, horizon, budget, then advance.
fn decide(snap: &Snapshot, params: &DecideParams) -> Decision {
    if snap.stop {
        return Decision::Finish(Finish::Stopped);
    }
    if let (Some(deadline), Some(gmin)) = (params.deadline, snap.gmin) {
        if gmin >= deadline.as_ps() {
            return Decision::Finish(Finish::DeadlineCross);
        }
    }
    let Some(gmin) = snap.gmin else {
        return Decision::Finish(Finish::Drained);
    };
    if gmin >= params.horizon.as_ps() {
        return Decision::Finish(Finish::Horizon(gmin));
    }
    if snap.executed >= params.budget {
        return Decision::Finish(Finish::Budget);
    }
    // Always > gmin (1 ps minimum progress), so every window executes at
    // least one event. The horizon/deadline clamps cannot bite below gmin:
    // both were just checked to lie strictly above it.
    let mut end = gmin.saturating_add(params.lookahead.as_ps().max(1));
    end = end.min(params.horizon.as_ps());
    if let Some(d) = params.deadline {
        end = end.min(d.as_ps());
    }
    Decision::Advance {
        window_end: Time::from_ps(end),
        cap: params.budget - snap.executed,
    }
}

/// One worker's window loop. All workers run the identical control flow and
/// reach every barrier the same number of times; a panic in either phase is
/// caught, recorded in [`Coord::poison`], and unanimously observed right
/// after the next barrier, so nobody is ever left waiting.
fn worker_loop(
    mut shards: Vec<Shard>,
    coord: &Coord,
    params: &DecideParams,
    mut gauges: Option<&mut DepthGauges>,
) -> (Finish, Vec<Shard>) {
    loop {
        // Phase C: replicated decision. The inputs are written only between
        // the two barriers (phase B), so they are stable here and every
        // worker computes the same answer without synchronizing.
        let snap = Snapshot::read(coord);
        if let Some(g) = gauges.as_deref_mut() {
            g.observe(snap.executed, snap.depth);
        }
        let (window_end, cap) = match decide(&snap, params) {
            Decision::Finish(f) => return (f, shards),
            Decision::Advance { window_end, cap } => (window_end, cap),
        };
        // Phase A: execute the window. Writes only mailboxes and private
        // shard state — never the decision inputs.
        let res = catch_unwind(AssertUnwindSafe(|| {
            for shard in shards.iter_mut() {
                shard.run_window(window_end, cap, coord);
            }
        }));
        if let Err(payload) = res {
            coord.poison(payload);
        }
        coord.barrier.wait();
        if coord.poisoned.load(Ordering::SeqCst) {
            // Uniform: the flag was set before the barrier, so every worker
            // sees it here and returns without touching the barrier again.
            return (Finish::Poisoned, shards);
        }
        // Phase B: merge inboxes, publish the next decision's inputs.
        let res = catch_unwind(AssertUnwindSafe(|| {
            for shard in shards.iter_mut() {
                shard.merge_and_publish(coord);
            }
        }));
        if let Err(payload) = res {
            coord.poison(payload);
        }
        coord.barrier.wait();
        if coord.poisoned.load(Ordering::SeqCst) {
            return (Finish::Poisoned, shards);
        }
    }
}

/// Splits the master simulator into one shard per partition: components move
/// to their partition's slot vector, pending events move to their
/// destination's queue (keyed `(seq << SHARD_BITS) | TAG_EXTERNAL`, which
/// preserves their order relative to everything a shard schedules later),
/// and every observer — digest, trace ring, span recorder, tie recorder —
/// forks an empty shard-local instance.
fn scatter(sim: &mut Simulator, nparts: usize) -> Vec<Shard> {
    let start_seq = sim.seq;
    let names = Arc::new(sim.names.clone());
    let partition_of = Arc::new(sim.partition_of.clone());
    let mut shards: Vec<Shard> = (0..nparts as u32)
        .map(|p| {
            let mut shard_sim = Simulator::new_with_queue(sim.seed(), sim.queue_kind());
            shard_sim.time = sim.time;
            shard_sim.seq = start_seq;
            shard_sim.names = sim.names.clone();
            shard_sim.components = (0..sim.components.len()).map(|_| None).collect();
            shard_sim.partition_of = sim.partition_of.clone();
            shard_sim.rng = sim.fork_rng(&format!("shard{p}"));
            shard_sim.spans = sim.spans.fork_for_partition(p, &sim.partition_of);
            if let Some(w) = sim.stats.window_width() {
                shard_sim.stats.enable_windows(w);
            }
            if sim.digest.is_some() {
                shard_sim.digest = Some(FNV_OFFSET);
            }
            if let Some((_, cap)) = &sim.trace {
                shard_sim.trace = Some((Vec::with_capacity(*cap), *cap));
            }
            #[cfg(feature = "race-detect")]
            {
                if sim.tie_rec.is_some() {
                    shard_sim.tie_rec = Some(crate::race::TieRecorder::new());
                }
                if let Some(salt) = sim.queue.tie_salt() {
                    shard_sim.queue.set_tie_salt(Some(salt));
                }
            }
            let router = ShardRouter {
                partition: p,
                partition_of: partition_of.clone(),
                names: names.clone(),
                lookahead: sim.lookahead(),
                window_end: Time::ZERO,
                outboxes: (0..nparts).map(|_| Vec::new()).collect(),
            };
            Shard {
                partition: p,
                sim: shard_sim,
                router,
            }
        })
        .collect();
    for (i, slot) in sim.components.iter_mut().enumerate() {
        if let Some(comp) = slot.take() {
            shards[sim.partition_of[i] as usize].sim.components[i] = Some(comp);
        }
    }
    while let Some((time, seq, idx)) = sim.queue.pop_key() {
        let (dst, payload) = sim.queue.take(idx);
        let key = (seq << SHARD_BITS) | TAG_EXTERNAL;
        let p = sim.partition_of[dst.comp.index()] as usize;
        shards[p].sim.queue.push(time, key, dst, payload);
    }
    shards
}

/// Merges the shards back into the master, in partition order throughout so
/// the result is a pure function of the simulation. Components return to
/// their slots; leftover events are stable-sorted by `(time, key)` (keys are
/// globally unique) and renumbered with fresh consecutive master seqs; stats
/// histograms merge; per-shard timeline digests fold into the master digest;
/// trace rings and span rings merge chronologically keeping the newest
/// `cap`; tie-sets merge time-by-time. Returns the maximum shard time.
fn gather(sim: &mut Simulator, mut shards: Vec<Shard>, stop: bool) -> Time {
    shards.sort_by_key(|s| s.partition);
    let start_seq = sim.seq;
    let mut t_max = sim.time;

    let trace_cap = sim.trace.as_ref().map(|(_, cap)| *cap);
    let mut trace_records = if trace_cap.is_some() {
        sim.trace()
    } else {
        Vec::new()
    };

    #[cfg(feature = "race-detect")]
    let mut tie_sets: std::collections::BTreeMap<Time, Vec<crate::race::CanonRec>> =
        std::collections::BTreeMap::new();

    let mut span_parts = Vec::with_capacity(shards.len());
    let mut leftovers: Vec<(Time, u64, Endpoint, Payload)> = Vec::new();
    for shard in &mut shards {
        let shard_sim = &mut shard.sim;
        t_max = t_max.max(shard_sim.time);
        sim.executed += shard_sim.executed;
        sim.stats.merge(&shard_sim.stats);
        if let (Some(digest), Some(shard_digest)) = (&mut sim.digest, shard_sim.digest) {
            crate::sim::fnv1a(digest, &shard_digest.to_le_bytes());
        }
        if trace_cap.is_some() {
            trace_records.extend(shard_sim.trace());
        }
        #[cfg(feature = "race-detect")]
        if let Some(rec) = shard_sim.tie_rec.take() {
            for (time, recs) in rec.take_records() {
                tie_sets.entry(time).or_default().extend(recs);
            }
        }
        span_parts.push(core::mem::take(&mut shard_sim.spans));
        for (i, slot) in shard_sim.components.iter_mut().enumerate() {
            if let Some(comp) = slot.take() {
                sim.components[i] = Some(comp);
            }
        }
        while let Some((time, key, idx)) = shard_sim.queue.pop_key() {
            let (dst, payload) = shard_sim.queue.take(idx);
            leftovers.push((time, key, dst, payload));
        }
    }

    // Stable on unique keys: a total, scheduling-independent order.
    leftovers.sort_by_key(|&(time, key, _, _)| (time, key));
    let count = leftovers.len() as u64;
    for (i, (time, _, dst, payload)) in leftovers.into_iter().enumerate() {
        sim.queue.push(time, start_seq + i as u64, dst, payload);
    }
    sim.seq = start_seq + count;

    #[cfg(feature = "race-detect")]
    if let Some(rec) = &mut sim.tie_rec {
        for (time, recs) in tie_sets {
            for r in recs {
                rec.record_raw(time, r);
            }
        }
    }

    sim.spans.absorb_shards(span_parts);

    if let Some(cap) = trace_cap {
        trace_records.sort_by_key(|r| r.time);
        if trace_records.len() > cap {
            trace_records.drain(..trace_records.len() - cap);
        }
        let ring = if trace_records.len() < cap {
            trace_records
        } else {
            // `Simulator::trace` unwraps the ring at `executed % cap`;
            // store the chronological records rotated to match.
            let split = (sim.executed as usize) % cap;
            let mut ring = trace_records.split_off(cap - split);
            ring.append(&mut trace_records);
            ring
        };
        sim.trace = Some((ring, cap));
    }

    sim.stop = stop;
    t_max
}

/// The parallel run loop. Returns `None` when there is nothing to
/// parallelize (fewer than two partitions assigned) — the caller falls back
/// to the sequential loop. Otherwise runs scatter → windows → gather epochs
/// until a terminal outcome, producing the same observable results as the
/// sequential loop modulo the divergences documented in the module docs.
pub(crate) fn run_parallel(
    sim: &mut Simulator,
    horizon: Time,
    max_events: u64,
    gauges: &mut DepthGauges,
) -> Option<RunOutcome> {
    let nparts = sim.partition_count();
    if nparts < 2 {
        return None;
    }
    assert!(
        (nparts as u64) <= SHARD_MASK,
        "too many partitions: {nparts} (max {SHARD_MASK})"
    );
    let nworkers = sim.workers().min(nparts);
    let executed_before = sim.executed;
    let mut deadline = sim.stall_deadline;
    loop {
        let budget = max_events.saturating_sub(sim.executed - executed_before);
        let mut shards = scatter(sim, nparts);
        let coord = Coord::new(nparts, nworkers, &mut shards);
        let params = DecideParams {
            horizon,
            budget,
            lookahead: sim.lookahead(),
            deadline,
        };
        // Worker w owns partitions {p : p % nworkers == w} — a pure function
        // of the partition assignment, so the decomposition (and every
        // digest) is identical at any worker count.
        let mut batches: Vec<Vec<Shard>> = (0..nworkers).map(|_| Vec::new()).collect();
        for shard in shards {
            batches[shard.partition as usize % nworkers].push(shard);
        }
        let main_batch = batches.remove(0);
        let (finish, shards_back) = thread::scope(|scope| {
            let handles: Vec<_> = batches
                .drain(..)
                .map(|batch| {
                    let coord = &coord;
                    let params = &params;
                    scope.spawn(move || worker_loop(batch, coord, params, None))
                })
                .collect();
            // The main thread is worker 0 and owns the depth gauges.
            let (finish, mut shards) = worker_loop(main_batch, &coord, &params, Some(gauges));
            for handle in handles {
                match handle.join() {
                    Ok((_, mut batch)) => shards.append(&mut batch),
                    Err(payload) => coord.poison(payload),
                }
            }
            (finish, shards)
        });
        let stop = coord.stop.load(Ordering::SeqCst);
        let t_max = gather(sim, shards_back, stop);
        if let Some(payload) = lock(&coord.poison).take() {
            resume_unwind(payload);
        }
        match finish {
            Finish::Poisoned => unreachable!("poisoned without a recorded panic"),
            Finish::Stopped => {
                sim.time = t_max;
                return Some(RunOutcome::Stopped);
            }
            Finish::Budget => {
                sim.time = t_max;
                return Some(RunOutcome::Budget);
            }
            Finish::Horizon(gmin) => {
                sim.time = t_max.max(horizon.min(Time::from_ps(gmin)));
                return Some(RunOutcome::Horizon);
            }
            Finish::Drained => {
                sim.time = t_max;
                return Some(match sim.first_stall_report() {
                    Some(report) => RunOutcome::Stalled(report),
                    None => RunOutcome::Drained,
                });
            }
            Finish::DeadlineCross => {
                let d = deadline
                    .take()
                    .expect("deadline crossing without a deadline");
                sim.time = t_max.max(d.min(horizon));
                if let Some(report) = sim.first_stall_report() {
                    return Some(RunOutcome::Stalled(report));
                }
                // No parked work at the deadline: disarm it and keep
                // simulating, exactly like the sequential watchdog.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PortId;
    use crate::mailbox::Mailbox;
    use crate::sim::{Component, Ctx};

    /// Ranks bounce a counter through a hub with a propagation delay (the
    /// lookahead) each way; local self-events use sub-lookahead delays.
    struct Rank {
        hub: Endpoint,
        sink: Endpoint,
        hops_left: u32,
        local_left: u32,
    }

    impl Component for Rank {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
            let v = payload.downcast::<u32>();
            if self.local_left > 0 {
                self.local_left -= 1;
                ctx.send_self(port, Dur::from_ps(7), v);
            } else if self.hops_left > 0 {
                self.hops_left -= 1;
                self.local_left = 3;
                ctx.send(self.hub, Dur::from_ns(100), v + 1);
            } else {
                ctx.send(self.sink, Dur::from_ns(100), v);
            }
        }
    }

    /// The hub forwards every message to the next rank, round-robin.
    struct Hub {
        ranks: Vec<Endpoint>,
        next: usize,
    }

    impl Component for Hub {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
            let v = payload.downcast::<u32>();
            let dst = self.ranks[self.next % self.ranks.len()];
            self.next += 1;
            ctx.send(dst, Dur::from_ns(100), v);
        }
    }

    fn build(ranks: usize, workers: usize) -> (Simulator, ComponentId) {
        let mut sim = Simulator::new(11);
        sim.enable_digest();
        let hub = sim.reserve("hub");
        let sink = sim.add("sink", Mailbox::<u32>::new());
        let ids: Vec<ComponentId> = (0..ranks)
            .map(|r| sim.reserve(format!("n{r}.rank")))
            .collect();
        for (r, &id) in ids.iter().enumerate() {
            sim.install(
                id,
                Rank {
                    hub: Endpoint::of(hub),
                    sink: Endpoint::of(sink),
                    hops_left: 8 + r as u32,
                    local_left: 2,
                },
            );
        }
        sim.install(
            hub,
            Hub {
                ranks: ids.iter().map(|&id| Endpoint::of(id)).collect(),
                next: 0,
            },
        );
        sim.set_workers(workers);
        sim.set_lookahead(Dur::from_ns(100));
        sim.assign_partitions(|name| {
            name.strip_prefix('n')
                .and_then(|rest| rest.split('.').next())
                .and_then(|digits| digits.parse::<u32>().ok())
                .map_or(0, |r| r + 1)
        });
        for &id in &ids {
            sim.post(Endpoint::of(id), Time::ZERO, 0u32);
        }
        (sim, sink)
    }

    fn run_collect(ranks: usize, workers: usize) -> (RunOutcome, Vec<u32>, u64, Time) {
        let (mut sim, sink) = build(ranks, workers);
        let outcome = sim.run();
        let items = sim
            .component::<Mailbox<u32>>(sink)
            .items()
            .iter()
            .map(|&(_, v)| v)
            .collect();
        (outcome, items, sim.events_executed(), sim.now())
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let (seq_out, seq_items, seq_n, seq_t) = run_collect(4, 1);
        for workers in [2, 4, 8] {
            let (out, items, n, t) = run_collect(4, workers);
            assert_eq!(out, seq_out, "outcome diverged at {workers} workers");
            assert_eq!(items, seq_items, "results diverged at {workers} workers");
            assert_eq!(n, seq_n, "event count diverged at {workers} workers");
            assert_eq!(t, seq_t, "final time diverged at {workers} workers");
        }
    }

    #[test]
    fn strict_digest_is_invariant_across_worker_counts() {
        let digest_at = |workers: usize| {
            let (mut sim, _) = build(6, workers);
            sim.run();
            sim.timeline_digest().unwrap()
        };
        let two = digest_at(2);
        assert_eq!(two, digest_at(3));
        assert_eq!(two, digest_at(6));
        assert_eq!(two, digest_at(16));
    }

    #[test]
    fn parallel_run_is_reproducible() {
        let (out1, items1, n1, t1) = run_collect(5, 4);
        let (out2, items2, n2, t2) = run_collect(5, 4);
        assert_eq!(out1, out2);
        assert_eq!(items1, items2);
        assert_eq!(n1, n2);
        assert_eq!(t1, t2);
    }

    /// A component that illegally sends cross-partition with zero delay.
    struct ZeroHop {
        peer: Endpoint,
    }

    impl Component for ZeroHop {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, _payload: Payload) {
            ctx.send(self.peer, Dur::ZERO, 0u32);
        }
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn sub_lookahead_cross_partition_send_panics() {
        let mut sim = Simulator::new(0);
        let a = sim.reserve("n0.zero");
        let b = sim.add("n1.sink", Mailbox::<u32>::new());
        sim.install(
            a,
            ZeroHop {
                peer: Endpoint::of(b),
            },
        );
        sim.set_workers(2);
        sim.set_lookahead(Dur::from_ns(100));
        sim.assign_partitions(|name| if name.starts_with("n0") { 1 } else { 2 });
        sim.post(Endpoint::of(a), Time::from_ns(500), 0u32);
        sim.run();
    }

    #[test]
    fn single_partition_falls_back_to_sequential() {
        let mut sim = Simulator::new(0);
        let sink = sim.add("sink", Mailbox::<u32>::new());
        sim.set_workers(4);
        sim.post(Endpoint::of(sink), Time::from_ns(1), 7u32);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.component::<Mailbox<u32>>(sink).items().len(), 1);
    }
}
