//! Adaptive phi-accrual-style failure detection, integer-only.
//!
//! The classic phi-accrual detector (Hayashibara et al.) models heartbeat
//! inter-arrival times with a normal distribution and reports a continuous
//! suspicion level `phi = -log10(P(gap > elapsed))`. Floating-point math and
//! log tables are both banned in timing paths here (the bit-replay contract
//! requires digest-identical state across queue kinds, worker counts and
//! tie permutations), so this module reformulates the detector as **deadline
//! scheduling over integer statistics**:
//!
//! - Each observed stream (a peer's acks, notifications, local DMA
//!   completions) keeps a fixed-size ring of recent inter-arrival gaps in
//!   integer picoseconds ([`GapHistory`]).
//! - From the ring we derive the integer mean `m` and mean absolute
//!   deviation `d` — both exact `Dur` arithmetic, no floats, no division
//!   beyond a single truncating integer divide.
//! - A suspicion threshold `phi` (expressed in **milli-phi**, e.g. 4000 for
//!   "4.0") maps to a wait bound `m + phi·(d + jitter_floor)/1000`: the
//!   deadline by which the next observation is due before the stream is
//!   escalated to that suspicion level.
//!
//! Two thresholds give the two-level **suspect / confirm** escalation: a
//! degraded link whose gaps stretch raises suspicion (cheap, recoverable)
//! long before the confirm deadline kills the session. Because every
//! quantity is a deterministic function of the observation sequence, the
//! detector folds into component state digests and replays bit-identically.

use std::collections::BTreeMap;

use crate::digest::fnv_fold;
use crate::time::{Dur, Time};

/// Number of inter-arrival gaps retained per stream. Small and fixed so the
/// state digest covers the exact window content deterministically.
pub const GAP_WINDOW: usize = 16;

/// Escalation level of an adaptive timeout decision.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetectLevel {
    /// Soft suspicion: the stream is late beyond the suspect threshold.
    /// Raises counters/spans but must not abort work.
    Suspect,
    /// Hard confirmation: the stream is late beyond the confirm threshold.
    /// The caller may declare the peer failed and abort.
    Confirm,
}

/// Configuration for a [`FailureDetector`].
///
/// All thresholds are integers; `phi` values are in milli-units so "phi =
/// 8.5" is `8500` without any floating point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DetectorCfg {
    /// Minimum gap samples before adaptive deadlines are trusted; below
    /// this the detector reports `None` and callers fall back to a fixed
    /// timeout (or the permissive `cap`).
    pub min_samples: usize,
    /// Milli-phi threshold for the suspect level (e.g. 4000 = 4.0).
    pub suspect_phi_milli: u64,
    /// Milli-phi threshold for the confirm level (e.g. 8000 = 8.0).
    pub confirm_phi_milli: u64,
    /// Additive deviation floor: protects against a run of identical gaps
    /// collapsing the deviation to zero and making the deadline brittle.
    pub jitter_floor: Dur,
    /// Lower clamp on any computed wait (avoid sub-microsecond flapping).
    pub floor: Dur,
    /// Upper clamp on any computed wait (bound detection latency even for
    /// wildly dispersed histories).
    pub cap: Dur,
}

impl Default for DetectorCfg {
    fn default() -> Self {
        DetectorCfg {
            min_samples: 4,
            suspect_phi_milli: 4_000,
            confirm_phi_milli: 8_000,
            jitter_floor: Dur::from_us(50),
            floor: Dur::from_us(100),
            cap: Dur::from_ms(100),
        }
    }
}

/// Ring of recent inter-arrival gaps for one observed stream.
#[derive(Clone, Debug, Default)]
pub struct GapHistory {
    ring: [Dur; GAP_WINDOW],
    len: usize,
    next: usize,
    last: Option<Time>,
}

impl GapHistory {
    /// A fresh, empty history.
    pub fn new() -> Self {
        GapHistory::default()
    }

    /// Records an observation at `now`. The first observation only anchors
    /// the stream; subsequent ones append `now - last` to the ring.
    /// Observations at or before `last` contribute a zero gap (same-instant
    /// ticks are legal under tie permutation).
    pub fn observe(&mut self, now: Time) {
        if let Some(last) = self.last {
            let gap = now.since(last);
            self.ring[self.next] = gap;
            self.next = (self.next + 1) % GAP_WINDOW;
            self.len = (self.len + 1).min(GAP_WINDOW);
        }
        self.last = Some(self.last.map_or(now, |l| l.max(now)));
    }

    /// Number of gap samples currently held (saturates at [`GAP_WINDOW`]).
    pub fn samples(&self) -> usize {
        self.len
    }

    /// Instant of the most recent observation, if any.
    pub fn last_seen(&self) -> Option<Time> {
        self.last
    }

    /// Integer mean of the held gaps ([`Dur::ZERO`] when empty).
    pub fn mean(&self) -> Dur {
        if self.len == 0 {
            return Dur::ZERO;
        }
        let mut sum = Dur::ZERO;
        for g in &self.ring[..self.len] {
            sum += *g;
        }
        sum / self.len as u64
    }

    /// Integer mean absolute deviation of the held gaps around [`Self::mean`].
    pub fn deviation(&self) -> Dur {
        if self.len == 0 {
            return Dur::ZERO;
        }
        let m = self.mean();
        let mut sum = Dur::ZERO;
        for &g in &self.ring[..self.len] {
            sum += g.max(m) - g.min(m);
        }
        sum / self.len as u64
    }

    /// Deadline wait for a milli-phi threshold:
    /// `mean + phi_milli · (deviation + jitter_floor) / 1000`.
    pub fn wait_for(&self, phi_milli: u64, jitter_floor: Dur) -> Dur {
        self.mean() + (self.deviation() + jitter_floor) * phi_milli / 1_000
    }

    /// Clears the history (used when a peer's incarnation changes: gaps
    /// measured against the previous incarnation are meaningless).
    pub fn reset(&mut self) {
        *self = GapHistory::default();
    }

    /// Folds the exact window content into a running state digest.
    pub fn fold_digest(&self, hash: &mut u64) {
        fnv_fold(hash, &(self.len as u64).to_le_bytes());
        fnv_fold(hash, &(self.next as u64).to_le_bytes());
        for g in &self.ring[..self.len] {
            fnv_fold(hash, &g.as_ps().to_le_bytes());
        }
        fnv_fold(hash, &self.last.map_or(u64::MAX, Time::as_ps).to_le_bytes());
    }
}

/// Multi-stream adaptive failure detector: one [`GapHistory`] per peer key,
/// plus the clamped suspect/confirm deadline computation.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    cfg: DetectorCfg,
    peers: BTreeMap<u32, GapHistory>,
}

impl FailureDetector {
    /// A detector with the given thresholds and no history.
    pub fn new(cfg: DetectorCfg) -> Self {
        FailureDetector {
            cfg,
            peers: BTreeMap::new(),
        }
    }

    /// The configuration in effect.
    pub fn cfg(&self) -> &DetectorCfg {
        &self.cfg
    }

    /// Records an observation of `peer` at `now`.
    pub fn observe(&mut self, peer: u32, now: Time) {
        self.peers.entry(peer).or_default().observe(now);
    }

    /// Forgets `peer`'s history (incarnation change / rejoin).
    pub fn reset_peer(&mut self, peer: u32) {
        self.peers.remove(&peer);
    }

    /// Gap samples held for `peer`.
    pub fn samples(&self, peer: u32) -> usize {
        self.peers.get(&peer).map_or(0, GapHistory::samples)
    }

    /// Clamped adaptive wait for `peer` at `level`, or `None` when fewer
    /// than `min_samples` gaps are held (caller falls back to fixed).
    pub fn wait(&self, peer: u32, level: DetectLevel) -> Option<Dur> {
        let h = self.peers.get(&peer)?;
        if h.samples() < self.cfg.min_samples {
            return None;
        }
        let phi = match level {
            DetectLevel::Suspect => self.cfg.suspect_phi_milli,
            DetectLevel::Confirm => self.cfg.confirm_phi_milli,
        };
        Some(
            h.wait_for(phi, self.cfg.jitter_floor)
                .max(self.cfg.floor)
                .min(self.cfg.cap),
        )
    }

    /// The most pessimistic (largest) clamped wait across all peers with
    /// enough history, or `None` if no peer qualifies. Used when a call
    /// waits on several peers at once (WaitAll).
    pub fn max_wait(&self, level: DetectLevel) -> Option<Dur> {
        self.peers
            .keys()
            .filter_map(|&p| self.wait(p, level))
            .fold(None, |acc, w| Some(acc.map_or(w, |a: Dur| a.max(w))))
    }

    /// Folds detector state (peer set + exact window contents) into a
    /// running digest. BTreeMap iteration keeps the fold order canonical.
    pub fn fold_digest(&self, hash: &mut u64) {
        fnv_fold(hash, &(self.peers.len() as u64).to_le_bytes());
        for (peer, h) in &self.peers {
            fnv_fold(hash, &u64::from(*peer).to_le_bytes());
            h.fold_digest(hash);
        }
    }

    /// Standalone digest of the detector state.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0u64;
        self.fold_digest(&mut h);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady(detector: &mut FailureDetector, peer: u32, gap_us: u64, n: usize) {
        let mut t = Time::ZERO;
        for _ in 0..=n {
            detector.observe(peer, t);
            t += Dur::from_us(gap_us);
        }
    }

    #[test]
    fn no_deadline_before_min_samples() {
        let mut d = FailureDetector::new(DetectorCfg::default());
        d.observe(7, Time::from_us(1));
        d.observe(7, Time::from_us(2));
        d.observe(7, Time::from_us(3));
        // 2 gaps < min_samples (4): stay on the fixed fallback.
        assert_eq!(d.wait(7, DetectLevel::Suspect), None);
        assert_eq!(d.wait(7, DetectLevel::Confirm), None);
    }

    #[test]
    fn steady_stream_deadline_tracks_mean_plus_margin() {
        let cfg = DetectorCfg {
            jitter_floor: Dur::from_us(10),
            floor: Dur::ZERO,
            ..DetectorCfg::default()
        };
        let mut d = FailureDetector::new(cfg);
        steady(&mut d, 0, 100, 8);
        // mean 100us, deviation 0: suspect = 100 + 4*(0+10) = 140us,
        // confirm = 100 + 8*10 = 180us.
        assert_eq!(d.wait(0, DetectLevel::Suspect), Some(Dur::from_us(140)));
        assert_eq!(d.wait(0, DetectLevel::Confirm), Some(Dur::from_us(180)));
    }

    #[test]
    fn dispersed_gaps_widen_the_deadline() {
        let cfg = DetectorCfg {
            jitter_floor: Dur::ZERO,
            floor: Dur::ZERO,
            ..DetectorCfg::default()
        };
        let mut d = FailureDetector::new(cfg);
        let mut t = Time::ZERO;
        // Alternate 50us / 150us gaps: mean 100us, MAD 50us.
        for i in 0..9 {
            d.observe(3, t);
            t += Dur::from_us(if i % 2 == 0 { 50 } else { 150 });
        }
        assert_eq!(d.wait(3, DetectLevel::Suspect), Some(Dur::from_us(300)));
        assert_eq!(d.wait(3, DetectLevel::Confirm), Some(Dur::from_us(500)));
    }

    #[test]
    fn clamps_apply() {
        let cfg = DetectorCfg {
            jitter_floor: Dur::ZERO,
            floor: Dur::from_us(200),
            cap: Dur::from_us(250),
            ..DetectorCfg::default()
        };
        let mut d = FailureDetector::new(cfg);
        steady(&mut d, 1, 1, 8); // tiny gaps: raw wait way below floor
        assert_eq!(d.wait(1, DetectLevel::Suspect), Some(Dur::from_us(200)));
        steady(&mut d, 2, 10_000, 8); // huge gaps: raw wait way above cap
        assert_eq!(d.wait(2, DetectLevel::Confirm), Some(Dur::from_us(250)));
        assert_eq!(d.max_wait(DetectLevel::Confirm), Some(Dur::from_us(250)));
    }

    #[test]
    fn window_slides() {
        let mut h = GapHistory::new();
        let mut t = Time::ZERO;
        // Fill the window with 1us gaps, then shift to 9us gaps.
        for _ in 0..=GAP_WINDOW {
            h.observe(t);
            t += Dur::from_us(1);
        }
        assert_eq!(h.samples(), GAP_WINDOW);
        assert_eq!(h.mean(), Dur::from_us(1));
        for _ in 0..=GAP_WINDOW {
            t += Dur::from_us(9);
            h.observe(t);
        }
        assert_eq!(h.mean(), Dur::from_us(9));
        assert_eq!(h.deviation(), Dur::ZERO);
    }

    #[test]
    fn digest_is_a_pure_function_of_observations() {
        let run = || {
            let mut d = FailureDetector::new(DetectorCfg::default());
            steady(&mut d, 0, 70, 6);
            steady(&mut d, 5, 130, 3);
            d.state_digest()
        };
        assert_eq!(run(), run());
        let mut other = FailureDetector::new(DetectorCfg::default());
        steady(&mut other, 0, 70, 6);
        assert_ne!(run(), other.state_digest(), "peer 5 history must show up");
    }

    #[test]
    fn reset_clears_history() {
        let mut d = FailureDetector::new(DetectorCfg::default());
        steady(&mut d, 9, 100, 8);
        assert!(d.wait(9, DetectLevel::Confirm).is_some());
        d.reset_peer(9);
        assert_eq!(d.samples(9), 0);
        assert_eq!(d.wait(9, DetectLevel::Confirm), None);
    }
}
