//! # accl-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the ACCL+ reproduction: a small, strictly deterministic
//! discrete-event simulator on which the network, memory, protocol-offload
//! and CCLO substrates are built.
//!
//! Key concepts:
//!
//! - [`time::Time`] / [`time::Dur`] — virtual time in integer picoseconds.
//! - [`sim::Component`] — an event-driven FSM; every simulated hardware block
//!   or software agent implements this trait.
//! - [`sim::Simulator`] — the event loop; events execute in `(time, seq)`
//!   order, making runs bit-for-bit reproducible for a given seed.
//! - [`pipe::Pipe`] — the shared timing model for bandwidth-limited FIFO
//!   resources (links, DMA channels, datapaths).
//! - [`mailbox::Mailbox`] — harness-side collector for observing results.
//!
//! # Examples
//!
//! ```
//! use accl_sim::prelude::*;
//!
//! struct Echo { to: Endpoint }
//! impl Component for Echo {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
//!         let n = payload.downcast::<u32>();
//!         ctx.send(self.to, Dur::from_ns(5), n * 2);
//!     }
//! }
//!
//! let mut sim = Simulator::new(0);
//! let sink = sim.add("sink", Mailbox::<u32>::new());
//! let echo = sim.add("echo", Echo { to: Endpoint::of(sink) });
//! sim.post(Endpoint::of(echo), Time::ZERO, 21u32);
//! sim.run();
//! assert_eq!(sim.component::<Mailbox<u32>>(sink).items()[0].1, 42);
//! ```

#![warn(missing_docs)]

pub mod deadlock;
pub mod detector;
pub mod digest;
pub mod event;
pub mod mailbox;
pub mod pipe;
pub mod queue;
#[cfg(feature = "race-detect")]
pub mod race;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::deadlock::{DeadlockKind, DeadlockReport, ResourceGauge, ResourceState};
    pub use crate::detector::{DetectLevel, DetectorCfg, FailureDetector, GapHistory};
    pub use crate::event::{ComponentId, Endpoint, Payload, PortId};
    pub use crate::mailbox::Mailbox;
    pub use crate::pipe::{Latency, Pipe};
    pub use crate::queue::QueueKind;
    pub use crate::sim::{
        Component, Ctx, ParkedWork, RunOutcome, RunSummary, Simulator, StallReport,
    };
    pub use crate::stats::{Histogram, Stats, WindowSnapshot};
    pub use crate::time::{Dur, Time};
    pub use crate::trace::{Attr, AttrValue, FlowId, SpanEvent, SpanId};
}
