//! Simulated time and durations.
//!
//! The simulator tracks virtual time in integer **picoseconds**. A `u64`
//! picosecond counter can represent roughly 213 days of simulated time,
//! far beyond any experiment in this repository, while being fine-grained
//! enough to express single clock cycles of a 250 MHz FPGA (4000 ps) and
//! serialization delays of individual network flits without rounding drift.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in picoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in picoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The largest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates an instant `ms` milliseconds after the epoch.
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Dur(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000_000)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the nearest picosecond.
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration: {ns} ns");
        // allow_nondeterminism(float-timing): audited unit boundary — one rounding from a config-time float, never accumulated
        Dur((ns * 1e3).round() as u64)
    }

    /// Creates a duration from fractional microseconds, rounding to the nearest picosecond.
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration: {us} us");
        // allow_nondeterminism(float-timing): audited unit boundary — one rounding from a config-time float, never accumulated
        Dur((us * 1e6).round() as u64)
    }

    /// Serialization time of `bytes` over a `gbps` (10^9 bits/second) channel.
    ///
    /// # Examples
    ///
    /// ```
    /// use accl_sim::time::Dur;
    /// // 1500 bytes at 100 Gb/s take 120 ns.
    /// assert_eq!(Dur::for_bytes_gbps(1500, 100.0), Dur::from_ns(120));
    /// ```
    pub fn for_bytes_gbps(bytes: u64, gbps: f64) -> Self {
        debug_assert!(gbps > 0.0, "non-positive rate: {gbps} Gb/s");
        // allow_nondeterminism(float-timing): audited unit boundary — one rounding from a config-time float, never accumulated
        Dur(((bytes as f64) * 8_000.0 / gbps).round() as u64)
    }

    /// Transfer time of `bytes` over a channel of `bytes_per_sec` bandwidth.
    pub fn for_bytes_bw(bytes: u64, bytes_per_sec: f64) -> Self {
        debug_assert!(bytes_per_sec > 0.0);
        // allow_nondeterminism(float-timing): audited unit boundary — one rounding from a config-time float, never accumulated
        Dur(((bytes as f64) * 1e12 / bytes_per_sec).round() as u64)
    }

    /// Duration of `cycles` clock cycles at `mhz` megahertz.
    ///
    /// # Examples
    ///
    /// ```
    /// use accl_sim::time::Dur;
    /// // One cycle at 250 MHz is 4 ns.
    /// assert_eq!(Dur::for_cycles(1, 250.0), Dur::from_ns(4));
    /// ```
    pub fn for_cycles(cycles: u64, mhz: f64) -> Self {
        debug_assert!(mhz > 0.0);
        // allow_nondeterminism(float-timing): audited unit boundary — one rounding from a config-time float, never accumulated
        Dur(((cycles as f64) * 1e6 / mhz).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration in (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The larger of two durations.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Achieved goodput transferring `bytes` within this duration, in Gb/s.
    ///
    /// Returns 0.0 for a zero-length duration.
    pub fn goodput_gbps(self, bytes: u64) -> f64 {
        if self.0 == 0 {
            return 0.0;
        }
        (bytes as f64) * 8_000.0 / (self.0 as f64)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("time subtraction underflow"),
        )
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("time subtraction underflow"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("duration subtraction underflow"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_ps(1_000);
        let d = Dur::from_ns(3);
        assert_eq!((t + d).as_ps(), 4_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), Dur::ZERO);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Dur::from_us(1), Dur::from_ns(1_000));
        assert_eq!(Dur::from_ms(1), Dur::from_us(1_000));
        assert_eq!(Dur::from_secs(1), Dur::from_ms(1_000));
        assert_eq!(Dur::from_ns_f64(1.5).as_ps(), 1_500);
        assert_eq!(Dur::from_us_f64(0.001), Dur::from_ns(1));
    }

    #[test]
    fn serialization_time_100gbps() {
        // 12.5 GB/s: 1 MiB should take ~83.886 us.
        let d = Dur::for_bytes_gbps(1 << 20, 100.0);
        assert!((d.as_us_f64() - 83.886).abs() < 0.01, "{d}");
        // And the reported goodput must invert the calculation.
        assert!((d.goodput_gbps(1 << 20) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_and_cycles() {
        // 16 GB/s moving 64 B = 4 ns.
        assert_eq!(Dur::for_bytes_bw(64, 16e9), Dur::from_ns(4));
        assert_eq!(Dur::for_cycles(250, 250.0), Dur::from_us(1));
        assert_eq!(Dur::for_cycles(100, 100.0), Dur::from_us(1));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Dur::from_ns(5);
        let b = Dur::from_ns(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a), Dur::from_ns(2));
        assert_eq!(a.saturating_sub(b), Dur::ZERO);
        assert_eq!(Time::from_ps(5).max(Time::from_ps(9)).as_ps(), 9);
    }

    #[test]
    fn mul_div() {
        assert_eq!(Dur::from_ns(4) * 250, Dur::from_us(1));
        assert_eq!(Dur::from_us(1) / 250, Dur::from_ns(4));
    }
}
