//! Utility components: mailboxes and completion latches.
//!
//! Test and benchmark harnesses need a way to observe what the simulated
//! system produced. A [`Mailbox`] is a trivially simple component that
//! stores every payload of a given type it receives, along with the arrival
//! time, for inspection after the run.

use core::any::Any;

use crate::event::{Payload, PortId};
use crate::sim::{Component, Ctx};
use crate::time::Time;

/// Collects every received payload of type `T` with its arrival time.
pub struct Mailbox<T: Any + Send> {
    items: Vec<(Time, T)>,
    stop_after: Option<usize>,
}

impl<T: Any + Send> Mailbox<T> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            items: Vec::new(),
            stop_after: None,
        }
    }

    /// Makes the mailbox halt the simulation once `n` items have arrived.
    pub fn stop_after(mut self, n: usize) -> Self {
        self.stop_after = Some(n);
        self
    }

    /// The received items in arrival order.
    pub fn items(&self) -> &[(Time, T)] {
        &self.items
    }

    /// The received values without timestamps.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(_, v)| v)
    }

    /// Number of items received.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has arrived.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Arrival time of the last item, if any.
    pub fn last_arrival(&self) -> Option<Time> {
        self.items.last().map(|&(t, _)| t)
    }

    /// Drains the received items.
    pub fn take(&mut self) -> Vec<(Time, T)> {
        core::mem::take(&mut self.items)
    }
}

impl<T: Any + Send> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Any + Send> Component for Mailbox<T> {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        self.items.push((ctx.now(), payload.downcast::<T>()));
        if let Some(n) = self.stop_after {
            if self.items.len() >= n {
                ctx.stop();
            }
        }
    }

    fn state_digest(&self) -> Option<u64> {
        // `T` is opaque, so the digest covers what the mailbox itself
        // observes: how many items arrived and when. Same-timestamp
        // arrivals may push in either order under a permuted tie schedule,
        // but their times are equal, so an in-order fold stays canonical.
        let mut h = 0u64;
        crate::digest::fnv_fold(&mut h, &(self.items.len() as u64).to_le_bytes());
        for (t, _) in &self.items {
            crate::digest::fnv_fold(&mut h, &t.as_ps().to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Endpoint;
    use crate::sim::{RunOutcome, Simulator};

    #[test]
    fn mailbox_collects_in_order() {
        let mut sim = Simulator::new(0);
        let mb = sim.add("mb", Mailbox::<u32>::new());
        sim.post(Endpoint::of(mb), Time::from_ps(20), 2u32);
        sim.post(Endpoint::of(mb), Time::from_ps(10), 1u32);
        sim.run();
        let got = sim.component::<Mailbox<u32>>(mb);
        assert_eq!(
            got.items(),
            &[(Time::from_ps(10), 1), (Time::from_ps(20), 2)]
        );
        assert_eq!(got.last_arrival(), Some(Time::from_ps(20)));
    }

    #[test]
    fn mailbox_stop_after_halts_run() {
        let mut sim = Simulator::new(0);
        let mb = sim.add("mb", Mailbox::<u8>::new().stop_after(2));
        for i in 0..5u8 {
            sim.post(Endpoint::of(mb), Time::from_ps(i as u64), i);
        }
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.component::<Mailbox<u8>>(mb).len(), 2);
    }
}
