//! The discrete-event simulator: component registry, event queue, main loop.
//!
//! The simulator is strictly deterministic: events execute in `(time, seq)`
//! order where `seq` is the order of scheduling, and the only source of
//! randomness is a seeded RNG. Running the same build twice with the same
//! seed replays the identical event timeline — the property the ACCL+ paper
//! relies on for its own simulation platform (§4.2) and that our integration
//! tests assert.
//!
//! The event queue is the tiered calendar/heap scheduler of [`crate::queue`];
//! [`Simulator::set_queue_kind`] switches to the legacy single-heap structure
//! for A/B timeline validation, and [`Simulator::enable_digest`] folds every
//! delivery into an order-sensitive hash so two runs can be compared without
//! recording full traces.

use core::any::Any;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::deadlock::{self, DeadlockReport, ResourceState};
use crate::event::{ComponentId, Endpoint, Payload, PortId};
use crate::queue::{EventQueue, QueueKind};
use crate::stats::Stats;
use crate::time::{Dur, Time};
use crate::trace::{Attr, FlowId, SpanEvent, SpanId, SpanRecorder};

/// A simulated hardware or software entity.
///
/// Components are event-driven finite-state machines: all interaction happens
/// through [`Component::on_event`], and side effects are expressed by
/// scheduling further events via [`Ctx`]. This mirrors how the corresponding
/// RTL blocks (DMP, RxBuf manager, Tx/Rx systems, ...) react to AXI-Stream
/// transactions.
pub trait Component: Any + Send {
    /// Handles `payload` arriving on `port` at time `ctx.now()`.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload);

    /// Describes work this component is still holding — a parked collective,
    /// an unacknowledged transmission, an admission-queued message — that
    /// should have completed before the event queue drains.
    ///
    /// The stall watchdog consults this when the simulation runs out of
    /// events (or passes the configured deadline): any component reporting
    /// parked work turns a silent hang into a [`RunOutcome::Stalled`] with a
    /// [`StallReport`] naming the culprit. Idle components return `None`
    /// (the default).
    fn parked_work(&self) -> Option<ParkedWork> {
        None
    }

    /// A digest of this component's externally-meaningful state, for
    /// end-of-run comparison between a baseline and a shadow run (see the
    /// `race-detect` feature). Two runs that executed the same logical
    /// work must produce the same digest even if same-timestamp events
    /// were handled in a different order; a divergence means the handlers
    /// do not commute. Components return `None` (the default) to opt out.
    fn state_digest(&self) -> Option<u64> {
        None
    }

    /// The component's bounded-resource view for the sim-time deadlock
    /// detector: which resources it is blocked on (`waits`), which it
    /// currently occupies and will eventually release (`holds`), and
    /// occupancy gauges for stall diagnosis. Consulted alongside
    /// [`Component::parked_work`] when a stall is detected; see
    /// [`crate::deadlock`]. Components without bounded resources return
    /// `None` (the default).
    fn resource_state(&self) -> Option<ResourceState> {
        None
    }
}

/// A description of unfinished work held by a component, reported to the
/// stall watchdog via [`Component::parked_work`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParkedWork {
    /// The rank the component belongs to, when it models a per-node block.
    pub rank: Option<u32>,
    /// Human-readable description of the parked operation
    /// (e.g. `"WaitAll: 3 outstanding"`, `"tcp session 2: 5 unacked"`).
    pub op: String,
}

/// Scheduling context handed to a component while it executes an event.
pub struct Ctx<'a> {
    now: Time,
    self_id: ComponentId,
    queue: &'a mut EventQueue,
    seq: &'a mut u64,
    rng: &'a mut StdRng,
    stats: &'a mut Stats,
    stop: &'a mut bool,
    spans: &'a mut SpanRecorder,
    /// Cross-partition router when this event executes inside a parallel
    /// shard (`None` in the sequential loop — the default, byte-identical
    /// path). See [`crate::shard`].
    shard: Option<&'a mut crate::shard::ShardRouter>,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently executing.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `payload` for delivery to `dst` after `delay`.
    pub fn send<T: Any + Send>(&mut self, dst: Endpoint, delay: Dur, payload: T) {
        self.send_at(dst, self.now + delay, payload);
    }

    /// Schedules `payload` for delivery to `dst` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn send_at<T: Any + Send>(&mut self, dst: Endpoint, at: Time, payload: T) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = *self.seq;
        *self.seq += 1;
        match &mut self.shard {
            // Sequential loop: plain `(time, seq)` scheduling, unchanged.
            None => self.queue.push(at, seq, dst, Payload::new(payload)),
            Some(router) => {
                // Parallel shard: the merge key encodes the source
                // partition alongside the shard-local seq, so the global
                // event order is `(time, seq, source-partition)` — a pure
                // function of the simulation, never of thread scheduling.
                let key = (seq << crate::shard::SHARD_BITS) | router.partition_tag();
                if router.is_local(dst) {
                    self.queue.push(at, key, dst, Payload::new(payload));
                } else {
                    router.send_remote(at, key, self.self_id, dst, Payload::new(payload));
                }
            }
        }
    }

    /// Schedules `payload` back to `port` of the executing component after `delay`.
    pub fn send_self<T: Any + Send>(&mut self, port: PortId, delay: Dur, payload: T) {
        self.send(Endpoint::new(self.self_id, port), delay, payload);
    }

    /// Deterministic simulation-wide RNG.
    ///
    /// Deprecated outside the `race-detect` feature: a single shared stream
    /// couples every consumer's draw order to the global event schedule, so
    /// an unrelated refactor can silently reseed a component's behaviour.
    /// Components that need entropy should own a seeded stream obtained via
    /// [`Simulator::fork_rng`] at build time instead.
    #[cfg_attr(
        not(feature = "race-detect"),
        deprecated(
            since = "0.5.0",
            note = "shared ambient entropy couples components through draw order; \
                    hold a per-component stream from `Simulator::fork_rng` instead"
        )
    )]
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Simulation-wide statistics registry. Stamps the current simulated
    /// time first, so when metric windowing is enabled
    /// ([`crate::stats::Stats::enable_windows`]) every write through this
    /// accessor lands in the window containing *now* without call-site
    /// changes.
    pub fn stats(&mut self) -> &mut Stats {
        self.stats.stamp_now(self.now);
        self.stats
    }

    /// Requests the main loop to stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Whether span recording is live (compiled in via the `trace` feature
    /// *and* enabled on this simulator). Instrumentation that must compute
    /// attribute values eagerly can branch on this; plain `span_*` calls
    /// are already free when recording is off.
    pub fn spans_enabled(&self) -> bool {
        self.spans.is_enabled()
    }

    /// Opens a span named `name` under `parent` at the current time;
    /// returns its deterministic id ([`SpanId::NONE`] when recording is
    /// off). Pass [`SpanId::NONE`] as `parent` for a root span.
    pub fn span_begin(&mut self, name: &'static str, parent: SpanId) -> SpanId {
        self.spans.begin(self.now, self.self_id, name, parent, &[])
    }

    /// Opens a span with typed attributes attached.
    pub fn span_begin_attrs(
        &mut self,
        name: &'static str,
        parent: SpanId,
        attrs: &[Attr],
    ) -> SpanId {
        self.spans
            .begin(self.now, self.self_id, name, parent, attrs)
    }

    /// Closes span `id` at the current time. No-op for [`SpanId::NONE`].
    pub fn span_end(&mut self, id: SpanId) {
        self.spans.end(self.now, self.self_id, id, &[]);
    }

    /// Closes span `id` at `at` — which may lie in the simulated future,
    /// for work whose completion time is already reserved (a [`crate::pipe::Pipe`]
    /// reservation's end).
    pub fn span_end_at(&mut self, id: SpanId, at: Time) {
        self.spans.end(at, self.self_id, id, &[]);
    }

    /// Closes span `id` at the current time with attributes attached.
    pub fn span_end_attrs(&mut self, id: SpanId, attrs: &[Attr]) {
        self.spans.end(self.now, self.self_id, id, attrs);
    }

    /// Records a complete `[start, end]` span in one call (both times may
    /// lie in the simulated future); returns its id.
    pub fn span_interval(
        &mut self,
        name: &'static str,
        parent: SpanId,
        start: Time,
        end: Time,
    ) -> SpanId {
        self.spans
            .interval(self.self_id, name, parent, start, end, &[])
    }

    /// Records a complete `[start, end]` span with attributes attached.
    pub fn span_interval_attrs(
        &mut self,
        name: &'static str,
        parent: SpanId,
        start: Time,
        end: Time,
        attrs: &[Attr],
    ) -> SpanId {
        self.spans
            .interval(self.self_id, name, parent, start, end, attrs)
    }

    /// Records a point event under `parent` at the current time.
    pub fn span_instant(&mut self, name: &'static str, parent: SpanId) {
        self.spans
            .instant(self.now, self.self_id, name, parent, &[]);
    }

    /// Records a point event with typed attributes attached.
    pub fn span_instant_attrs(&mut self, name: &'static str, parent: SpanId, attrs: &[Attr]) {
        self.spans
            .instant(self.now, self.self_id, name, parent, attrs);
    }

    /// Emits the departure side of a cross-rank/cross-shard flow edge at
    /// the current time, anchored to the producing span `from`; returns
    /// the deterministic [`FlowId`] to carry in the payload
    /// ([`FlowId::NONE`] when recording is off). Every emitted edge must
    /// be joined by a matching [`Ctx::flow_end`] on the receive side —
    /// `accl-lint`'s flow-pairing rule checks this statically.
    pub fn flow_begin(&mut self, name: &'static str, from: SpanId) -> FlowId {
        self.spans.flow_begin(self.now, self.self_id, name, from)
    }

    /// Joins flow edge `flow` into the consuming span `to` at the current
    /// time. No-op for [`FlowId::NONE`].
    pub fn flow_end(&mut self, name: &'static str, flow: FlowId, to: SpanId) {
        self.spans.flow_end(self.now, self.self_id, name, flow, to);
    }
}

/// Why [`Simulator::run`] (or a bounded variant) returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely with no component holding work.
    Drained,
    /// A component called [`Ctx::stop`].
    Stopped,
    /// The time horizon passed with events still pending.
    Horizon,
    /// The event budget was exhausted with events still pending.
    Budget,
    /// The event queue drained (or the stall deadline passed) while at
    /// least one component still held parked work — a hung collective,
    /// lost message, or dead peer. The report names the first stuck
    /// component; [`Simulator::stall_reports`] lists all of them.
    Stalled(StallReport),
}

/// Scheduler observability for one `run*` call: how many events executed
/// and how deep the event queue got. Retrieved via
/// [`Simulator::last_run_summary`]; the same gauges are recorded into
/// [`Stats`] under `sim.kernel.*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Why the run returned.
    pub outcome: RunOutcome,
    /// Events executed during this run (not cumulative).
    pub events_executed: u64,
    /// Maximum queue depth observed (checked after every event).
    pub max_queue_depth: usize,
    /// Median queue depth over the sampled series.
    pub queue_depth_p50: usize,
    /// 99th-percentile queue depth over the sampled series.
    pub queue_depth_p99: usize,
    /// Queue depth when the run returned.
    pub final_queue_depth: usize,
}

/// Diagnosis of a stalled simulation: which component was still holding
/// work when the event queue drained, and what that work was. This is the
/// paper's §4.4 "stalled collective" debugging workflow made machine-
/// readable: instead of a silent hang, the run names the parked op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Id of the stuck component.
    pub comp: ComponentId,
    /// Registration name of the stuck component (e.g. `"n2.cclo.uc"`).
    pub component: String,
    /// Rank the component belongs to, if it models a per-node block.
    pub rank: Option<u32>,
    /// The parked operation, as reported by the component.
    pub op: String,
    /// Simulated time at which the stall was detected.
    pub at: Time,
    /// The last few spans recorded by the stuck component (empty unless
    /// span recording was enabled) — what the component was *doing*, not
    /// just which payloads it received.
    pub recent_spans: Vec<String>,
    /// Rendered occupancy gauges (`"component: resource used/cap"`) from
    /// every component that reported a [`ResourceState`] at stall time —
    /// queue depths, credit windows, buffer pools, pause state.
    pub gauges: Vec<String>,
    /// The diagnosed wait-for chain, when the deadlock detector found a
    /// cycle or an orphaned wait over the reported resource states.
    pub deadlock: Option<DeadlockReport>,
}

impl core::fmt::Display for StallReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.rank {
            Some(r) => write!(
                f,
                "stall at {}: {} (rank {}) parked on {}",
                self.at, self.component, r, self.op
            )?,
            None => write!(
                f,
                "stall at {}: {} parked on {}",
                self.at, self.component, self.op
            )?,
        }
        if let Some(deadlock) = &self.deadlock {
            write!(f, "\n    {deadlock}")?;
        }
        for gauge in &self.gauges {
            write!(f, "\n    gauge: {gauge}")?;
        }
        for line in &self.recent_spans {
            write!(f, "\n    span: {line}")?;
        }
        Ok(())
    }
}

/// One captured event delivery (see [`Simulator::enable_trace`]).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Delivery time.
    pub time: Time,
    /// Destination component id.
    pub comp: ComponentId,
    /// Destination port.
    pub port: PortId,
    /// `type_name` of the payload.
    pub payload_type: &'static str,
}

/// Queue-depth gauges are subsampled at this stride to keep the hot loop
/// cheap; the maximum is still tracked on every event.
const DEPTH_SAMPLE_STRIDE: u64 = 64;

/// How many trailing spans a [`StallReport`] carries per stuck component.
const STALL_SPAN_TAIL: usize = 8;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
pub(crate) fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    pub(crate) time: Time,
    pub(crate) queue: EventQueue,
    pub(crate) seq: u64,
    pub(crate) components: Vec<Option<Box<dyn Component>>>,
    pub(crate) names: Vec<String>,
    seed: u64,
    pub(crate) rng: StdRng,
    pub(crate) stats: Stats,
    pub(crate) spans: SpanRecorder,
    pub(crate) stop: bool,
    pub(crate) executed: u64,
    /// Event trace ring buffer (None = tracing off).
    pub(crate) trace: Option<(Vec<TraceRecord>, usize)>,
    /// Running timeline digest (None = digesting off).
    pub(crate) digest: Option<u64>,
    /// Simulated-time deadline for the stall watchdog (None = only check
    /// at queue drain).
    pub(crate) stall_deadline: Option<Time>,
    /// Scheduler gauges for the most recent `run*` call.
    last_run_summary: Option<RunSummary>,
    /// Worker-thread count for `run*` calls (1 = sequential loop).
    workers: usize,
    /// Minimum cross-partition link delay, bounding the conservative
    /// safe-window width in parallel mode.
    lookahead: Dur,
    /// Partition id of every component (parallel to `components`); all
    /// zeros until [`Simulator::assign_partitions`] is called.
    pub(crate) partition_of: Vec<u32>,
    /// Tie-set recorder for the race detector (None = off).
    #[cfg(feature = "race-detect")]
    pub(crate) tie_rec: Option<crate::race::TieRecorder>,
}

impl Simulator {
    /// Creates an empty simulator with the given RNG seed and the default
    /// (tiered calendar) event queue.
    pub fn new(seed: u64) -> Self {
        Simulator::new_with_queue(seed, QueueKind::default())
    }

    /// Creates an empty simulator with an explicit event-queue structure.
    pub fn new_with_queue(seed: u64, kind: QueueKind) -> Self {
        Simulator {
            time: Time::ZERO,
            queue: EventQueue::new(kind),
            seq: 0,
            components: Vec::new(),
            names: Vec::new(),
            seed,
            rng: StdRng::seed_from_u64(seed),
            stats: Stats::new(),
            spans: SpanRecorder::default(),
            stop: false,
            executed: 0,
            trace: None,
            digest: None,
            stall_deadline: None,
            last_run_summary: None,
            workers: 1,
            lookahead: Dur::ZERO,
            partition_of: Vec::new(),
            #[cfg(feature = "race-detect")]
            tie_rec: None,
        }
    }

    /// Sets the worker-thread count for subsequent `run*` calls. `1` (the
    /// default) is the sequential loop; `n > 1` shards the simulation by
    /// partition (see [`Simulator::assign_partitions`]) and advances the
    /// shards concurrently in conservative safe windows bounded by the
    /// configured [`Simulator::set_lookahead`]. Golden digests and state
    /// digests are independent of the worker count — see [`crate::shard`].
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Declares the minimum delay every cross-partition event carries —
    /// typically the network's link-propagation delay. Parallel safe
    /// windows are `[gmin, gmin + max(lookahead, 1 ps))`; a larger (but
    /// still sound) lookahead means fewer barriers per simulated second.
    /// A cross-partition event scheduled to arrive *inside* the open
    /// window panics, naming the offending edge.
    pub fn set_lookahead(&mut self, lookahead: Dur) {
        self.lookahead = lookahead;
    }

    /// The configured cross-partition lookahead.
    pub fn lookahead(&self) -> Dur {
        self.lookahead
    }

    /// Assigns every registered component to a partition by mapping its
    /// registration name through `f`. Partition ids must be dense-ish
    /// (the shard count is `max + 1`); components that exchange events
    /// with sub-lookahead delays must share a partition. Re-run after
    /// registering more components — new registrations default to
    /// partition 0.
    pub fn assign_partitions(&mut self, f: impl Fn(&str) -> u32) {
        self.partition_of = self.names.iter().map(|n| f(n)).collect();
    }

    /// Number of partitions implied by the current assignment (`1` when
    /// unassigned — everything in partition 0).
    pub fn partition_count(&self) -> usize {
        self.partition_of
            .iter()
            .copied()
            .max()
            .map_or(1, |m| m as usize + 1)
    }

    /// Replaces the FIFO tie-breaking rule for same-timestamp events with
    /// a seeded *channel permutation* (applies to events scheduled from
    /// now on): events keep their program order within one (source
    /// component → destination endpoint) channel, while the interleaving
    /// of distinct channels within a timestamp is shuffled. The timeline
    /// stays total and deterministic for a given `salt`; only the
    /// cross-channel tie order changes — which is precisely the order no
    /// handler may depend on. Shadow runs use this to probe whether
    /// same-timestamp handlers commute — see [`crate::race::shadow_check`].
    #[cfg(feature = "race-detect")]
    pub fn permute_tie_order(&mut self, salt: u64) {
        self.queue.set_tie_salt(Some(salt));
    }

    /// Enables tie-set recording: every delivery is folded into a
    /// tie-normalized trace where same-timestamp deliveries are compared
    /// as an (order-insensitive) set. Must be enabled before the first
    /// event executes to cover the whole timeline.
    #[cfg(feature = "race-detect")]
    pub fn enable_tie_recording(&mut self) {
        if self.tie_rec.is_none() {
            self.tie_rec = Some(crate::race::TieRecorder::new());
        }
    }

    /// The tie-normalized canonical trace recorded so far (sorted within
    /// each tie-set), and its digest. See [`crate::race`].
    #[cfg(feature = "race-detect")]
    pub fn tie_trace(&self) -> Option<crate::race::CanonTrace> {
        self.tie_rec.as_ref().map(|r| r.canonical())
    }

    /// Digests of every component that implements
    /// [`Component::state_digest`], in component-id order.
    pub fn state_digests(&self) -> Vec<(ComponentId, u64)> {
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let d = slot.as_ref()?.state_digest()?;
                Some((ComponentId(i as u32), d))
            })
            .collect()
    }

    /// The event-queue structure currently in use.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Switches the event-queue structure, preserving all pending events
    /// and their `(time, seq)` execution order. Used to A/B the tiered
    /// scheduler against the legacy heap on identical workloads.
    pub fn set_queue_kind(&mut self, kind: QueueKind) {
        self.queue.set_kind(kind);
    }

    /// Number of events currently pending in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Arms the stall watchdog's simulated-time deadline: if `deadline`
    /// passes while any component still reports [`Component::parked_work`],
    /// the run returns [`RunOutcome::Stalled`] even though events (e.g. an
    /// endless retransmission loop) are still flowing. Without a deadline
    /// the watchdog only fires when the event queue drains.
    pub fn set_stall_deadline(&mut self, deadline: Time) {
        self.stall_deadline = Some(deadline);
    }

    /// Disarms the simulated-time stall deadline.
    pub fn clear_stall_deadline(&mut self) {
        self.stall_deadline = None;
    }

    /// The seed this simulator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent, deterministic RNG stream for one component
    /// from the simulator seed and a stable `label` (conventionally the
    /// component's registration name). Streams are decoupled: a component
    /// drawing from its own fork cannot perturb any other component's
    /// randomness, unlike the shared (now deprecated) [`Ctx::rng`].
    pub fn fork_rng(&self, label: &str) -> StdRng {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, label.as_bytes());
        StdRng::seed_from_u64(self.seed ^ h)
    }

    /// Enables causal span recording into a bounded ring of `capacity`
    /// events. Requires the `trace` cargo feature (panics without it —
    /// recording would silently observe nothing). See [`crate::trace`].
    pub fn enable_spans(&mut self, capacity: usize) {
        self.spans.enable(capacity);
    }

    /// Whether span recording is live (compiled in and enabled).
    pub fn spans_enabled(&self) -> bool {
        self.spans.is_enabled()
    }

    /// Enables fixed-width sim-time metric windows: every counter add,
    /// gauge write, and histogram observation made through [`Ctx::stats`]
    /// is additionally routed into the window containing the simulated
    /// time of the write. Integer-only and deterministic; windows merge
    /// across parallel shards by `(window index, partition order)`. Call
    /// before the run starts. See [`crate::stats::Stats::enable_windows`].
    pub fn enable_metric_windows(&mut self, width: Dur) {
        self.stats.enable_windows(width);
    }

    /// The surviving span ring contents, oldest first.
    pub fn span_events(&self) -> Vec<SpanEvent> {
        self.spans.events()
    }

    /// Span events evicted by the ring bound (0 when sized generously).
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// Renders the last `n` spans recorded by `comp`, oldest first — the
    /// per-component causal history behind [`StallReport::recent_spans`]
    /// and the race detector's reports.
    pub fn span_tail(&self, comp: ComponentId, n: usize) -> Vec<String> {
        let mut lines: Vec<String> = self
            .spans
            .events()
            .iter()
            .filter(|e| e.comp == comp)
            .map(|e| {
                use crate::trace::SpanEventKind;
                match e.kind {
                    SpanEventKind::Begin => format!(
                        "{} begin {} id={:#018x} parent={:#018x}",
                        e.time, e.name, e.id.0, e.parent.0
                    ),
                    SpanEventKind::End => {
                        format!("{} end id={:#018x}", e.time, e.id.0)
                    }
                    SpanEventKind::Instant => {
                        format!("{} instant {} parent={:#018x}", e.time, e.name, e.parent.0)
                    }
                    SpanEventKind::FlowBegin => {
                        format!("{} flow-begin {} from={:#018x}", e.time, e.name, e.parent.0)
                    }
                    SpanEventKind::FlowEnd => {
                        format!("{} flow-end {} into={:#018x}", e.time, e.name, e.parent.0)
                    }
                }
            })
            .collect();
        if lines.len() > n {
            lines.drain(..lines.len() - n);
        }
        lines
    }

    /// Enables event tracing into a ring buffer of `capacity` records —
    /// the simulation-platform debugging workflow of the paper's §4.2:
    /// when a collective stalls, the last deliveries name the component
    /// and message type where progress stopped.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(capacity > 0, "zero-capacity trace");
        self.trace = Some((Vec::with_capacity(capacity), capacity));
    }

    /// Enables the timeline digest: every delivery folds
    /// `(time, seq, dst, type_name)` into an FNV-1a hash, so two runs can
    /// be compared for bit-identical event order without recording full
    /// traces. Must be called before the first event executes to cover
    /// the whole timeline.
    pub fn enable_digest(&mut self) {
        if self.digest.is_none() {
            self.digest = Some(FNV_OFFSET);
        }
    }

    /// The running timeline digest, if [`Simulator::enable_digest`] was
    /// called.
    pub fn timeline_digest(&self) -> Option<u64> {
        self.digest
    }

    /// The captured trace, oldest first.
    pub fn trace(&self) -> Vec<TraceRecord> {
        match &self.trace {
            None => Vec::new(),
            Some((ring, cap)) => {
                if ring.len() < *cap {
                    ring.clone()
                } else {
                    // The ring wraps at `executed % cap`.
                    let split = (self.executed as usize) % cap;
                    let mut out = ring[split..].to_vec();
                    out.extend_from_slice(&ring[..split]);
                    out
                }
            }
        }
    }

    /// Renders the last `n` trace records with component names.
    pub fn trace_tail(&self, n: usize) -> String {
        let trace = self.trace();
        let start = trace.len().saturating_sub(n);
        trace[start..]
            .iter()
            .map(|r| {
                format!(
                    "{} -> {}.{:?} [{}]\n",
                    r.time,
                    self.name(r.comp),
                    r.port,
                    r.payload_type
                )
            })
            .collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Scheduler gauges for the most recent `run*` call.
    pub fn last_run_summary(&self) -> Option<&RunSummary> {
        self.last_run_summary.as_ref()
    }

    /// Registers a component and returns its id.
    pub fn add(&mut self, name: impl Into<String>, comp: impl Component) -> ComponentId {
        let id = self.reserve(name);
        self.install(id, comp);
        id
    }

    /// Reserves a component id without installing the component yet.
    ///
    /// Two-phase registration lets mutually-connected components (e.g. the
    /// CCLO's uC and DMP, which address each other) be constructed with each
    /// other's endpoints before either exists.
    pub fn reserve(&mut self, name: impl Into<String>) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(None);
        self.names.push(name.into());
        self.partition_of.push(0);
        id
    }

    /// Installs `comp` into a slot previously obtained from [`Simulator::reserve`].
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn install(&mut self, id: ComponentId, comp: impl Component) {
        let slot = &mut self.components[id.index()];
        assert!(
            slot.is_none(),
            "component {} installed twice",
            self.name(id)
        );
        *slot = Some(Box::new(comp));
    }

    /// The registration name of `id`.
    pub fn name(&self, id: ComponentId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered (or reserved) components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Borrows an installed component, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the component is missing or of a different type.
    pub fn component<T: Component>(&self, id: ComponentId) -> &T {
        let comp = self.components[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("component {} not installed", self.name(id)));
        (comp.as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .unwrap_or_else(|| {
                panic!(
                    "component {} is not a {}",
                    self.name(id),
                    core::any::type_name::<T>()
                )
            })
    }

    /// Mutably borrows an installed component, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the component is missing or of a different type.
    pub fn component_mut<T: Component>(&mut self, id: ComponentId) -> &mut T {
        let name = self.names[id.index()].clone();
        let comp = self.components[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("component {name} not installed"));
        (comp.as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("component {name} is not a {}", core::any::type_name::<T>()))
    }

    /// Schedules `payload` for delivery to `dst` at absolute time `at`
    /// from outside any component (e.g. test or benchmark setup).
    pub fn post<T: Any + Send>(&mut self, dst: Endpoint, at: Time, payload: T) {
        assert!(at >= self.time, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, dst, Payload::new(payload));
    }

    /// Schedules `payload` for delivery to `dst` after `delay` from now.
    pub fn post_in<T: Any + Send>(&mut self, dst: Endpoint, delay: Dur, payload: T) {
        self.post(dst, self.time + delay, payload);
    }

    /// Read-only statistics registry.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics registry (e.g. to reset between sweep points).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Executes a single event. Returns `false` if the queue was empty.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses a reserved-but-uninstalled component.
    pub fn step(&mut self) -> bool {
        self.step_routed(None)
    }

    /// Executes a single event inside a parallel shard, routing any
    /// cross-partition sends through `router`. Same contract as
    /// [`Simulator::step`] otherwise.
    pub(crate) fn step_with_router(&mut self, router: &mut crate::shard::ShardRouter) -> bool {
        self.step_routed(Some(router))
    }

    fn step_routed(&mut self, shard: Option<&mut crate::shard::ShardRouter>) -> bool {
        let Some((time, seq, idx)) = self.queue.pop_key() else {
            return false;
        };
        debug_assert!(time >= self.time, "event queue went backwards");
        self.time = time;
        let (dst, payload) = self.queue.take(idx);
        if self.trace.is_some() || self.digest.is_some() {
            self.note_delivery(time, seq, dst, payload.type_name());
        }
        #[cfg(feature = "race-detect")]
        if let Some(rec) = &mut self.tie_rec {
            rec.record(time, dst, payload.type_name());
        }
        self.executed += 1;
        // Take the component out of its slot so the handler can borrow the
        // simulator internals mutably without aliasing itself.
        let mut comp = self.components[dst.comp.index()].take().unwrap_or_else(|| {
            panic!(
                "event {:?} addressed to uninstalled component {}",
                payload,
                self.names[dst.comp.index()]
            )
        });
        // Tag events sent by this handler with their source, so a shadow
        // run's tie permutation can rank per-channel (FIFO within a
        // channel, shuffled across channels).
        #[cfg(feature = "race-detect")]
        self.queue.set_tie_src(dst.comp.index() as u32);
        let mut ctx = Ctx {
            now: self.time,
            self_id: dst.comp,
            queue: &mut self.queue,
            seq: &mut self.seq,
            rng: &mut self.rng,
            stats: &mut self.stats,
            stop: &mut self.stop,
            spans: &mut self.spans,
            shard,
        };
        comp.on_event(&mut ctx, dst.port, payload);
        #[cfg(feature = "race-detect")]
        self.queue.set_tie_src(crate::queue::SRC_EXTERNAL);
        self.components[dst.comp.index()] = Some(comp);
        true
    }

    /// Records a delivery into the trace ring and/or timeline digest.
    /// Out of line so the common no-observer `step` stays lean.
    #[inline(never)]
    fn note_delivery(&mut self, time: Time, seq: u64, dst: Endpoint, type_name: &'static str) {
        if let Some((ring, cap)) = &mut self.trace {
            let rec = TraceRecord {
                time,
                comp: dst.comp,
                port: dst.port,
                payload_type: type_name,
            };
            if ring.len() < *cap {
                ring.push(rec);
            } else {
                let idx = (self.executed as usize) % *cap;
                ring[idx] = rec;
            }
        }
        if let Some(digest) = &mut self.digest {
            fnv1a(digest, &time.as_ps().to_le_bytes());
            fnv1a(digest, &seq.to_le_bytes());
            fnv1a(digest, &dst.comp.0.to_le_bytes());
            fnv1a(digest, &dst.port.0.to_le_bytes());
            fnv1a(digest, type_name.as_bytes());
        }
    }

    /// Runs until the event queue drains or a component calls [`Ctx::stop`].
    pub fn run(&mut self) -> RunOutcome {
        self.run_bounded(Time::MAX, u64::MAX)
    }

    /// Runs until `horizon` (exclusive), queue drain, or stop.
    pub fn run_until(&mut self, horizon: Time) -> RunOutcome {
        self.run_bounded(horizon, u64::MAX)
    }

    /// Runs with both a time horizon and an event budget.
    ///
    /// The event budget is a guard against accidental event storms (a
    /// mis-configured retransmission timer, say); production experiments set
    /// it to `u64::MAX`.
    pub fn run_bounded(&mut self, horizon: Time, max_events: u64) -> RunOutcome {
        let events_before = self.executed;
        let mut gauges = DepthGauges::new();
        let outcome = self.run_loop(horizon, max_events, &mut gauges);
        let executed = self.executed - events_before;
        self.stats.add("sim.kernel.events_executed", executed);
        let summary = gauges.summarize(outcome.clone(), executed, self.queue.len());
        self.stats
            .record("sim.kernel.queue_depth.max", summary.max_queue_depth as f64);
        self.last_run_summary = Some(summary);
        outcome
    }

    fn run_loop(&mut self, horizon: Time, max_events: u64, gauges: &mut DepthGauges) -> RunOutcome {
        // Parallel dispatch: with more than one worker configured and more
        // than one partition assigned, hand the run to the conservative
        // parallel engine. It declines (returns `None`) when the partition
        // assignment leaves nothing to parallelize.
        if self.workers > 1 {
            if let Some(outcome) = crate::shard::run_parallel(self, horizon, max_events, gauges) {
                return outcome;
            }
        }
        self.stop = false;
        let mut budget = max_events;
        let mut deadline_pending = self.stall_deadline;
        // Fast path for unbounded runs (the common case): no horizon or
        // deadline peeks in the per-event loop.
        if horizon == Time::MAX && max_events == u64::MAX && deadline_pending.is_none() {
            loop {
                if self.stop {
                    return RunOutcome::Stopped;
                }
                if !self.step() {
                    return match self.first_stall_report() {
                        Some(report) => RunOutcome::Stalled(report),
                        None => RunOutcome::Drained,
                    };
                }
                gauges.observe(self.executed, self.queue.len());
            }
        }
        loop {
            if self.stop {
                return RunOutcome::Stopped;
            }
            // Stall watchdog, deadline edge: sweep for parked work the
            // first time simulated time reaches the deadline — including
            // when the next pending event would jump past it (a lone
            // far-future timer must not mask the stall). Checked once so
            // the sweep cost is not paid per event.
            if let Some(deadline) = deadline_pending {
                let crossing =
                    self.time >= deadline || self.queue.peek_time().is_some_and(|t| t >= deadline);
                if crossing {
                    deadline_pending = None;
                    self.time = self.time.max(deadline.min(horizon));
                    if let Some(report) = self.first_stall_report() {
                        return RunOutcome::Stalled(report);
                    }
                }
            }
            match self.queue.peek_time() {
                None => {
                    // Stall watchdog, drain edge: a clean drain means no
                    // component should still be holding work.
                    return match self.first_stall_report() {
                        Some(report) => RunOutcome::Stalled(report),
                        None => RunOutcome::Drained,
                    };
                }
                Some(t) if t >= horizon => {
                    self.time = horizon.min(t);
                    return RunOutcome::Horizon;
                }
                Some(_) => {}
            }
            if budget == 0 {
                return RunOutcome::Budget;
            }
            budget -= 1;
            self.step();
            gauges.observe(self.executed, self.queue.len());
        }
    }

    /// The stall report of the lowest-id stuck component, if any.
    pub(crate) fn first_stall_report(&self) -> Option<StallReport> {
        self.stall_reports().into_iter().next()
    }

    /// Sweeps every installed component for parked work and returns one
    /// [`StallReport`] per stuck component, in component-id order. Each
    /// report carries the cluster-wide resource gauges and, when the
    /// wait-for graph closes, the deadlock diagnosis.
    pub fn stall_reports(&self) -> Vec<StallReport> {
        let states = self.resource_states();
        let deadlock = deadlock::analyze(&states);
        let gauges: Vec<String> = states
            .iter()
            .flat_map(|(name, st)| st.gauges.iter().map(move |g| format!("{name}: {g}")))
            .collect();
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let parked = slot.as_ref()?.parked_work()?;
                let comp = ComponentId(i as u32);
                Some(StallReport {
                    comp,
                    component: self.names[i].clone(),
                    rank: parked.rank,
                    op: parked.op,
                    at: self.time,
                    recent_spans: self.span_tail(comp, STALL_SPAN_TAIL),
                    gauges: gauges.clone(),
                    deadlock: deadlock.clone(),
                })
            })
            .collect()
    }

    /// The non-empty [`ResourceState`]s of every installed component, as
    /// `(registration name, state)` in component-id order — the input to
    /// the deadlock detector's wait-for graph.
    pub fn resource_states(&self) -> Vec<(String, ResourceState)> {
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let st = slot.as_ref()?.resource_state()?;
                if st.is_empty() {
                    return None;
                }
                Some((self.names[i].clone(), st))
            })
            .collect()
    }

    /// Runs the deadlock detector over the current resource states: the
    /// diagnosed wait chain, if components are stuck on each other's (or
    /// leaked) resources. See [`crate::deadlock`].
    pub fn deadlock_report(&self) -> Option<DeadlockReport> {
        deadlock::analyze(&self.resource_states())
    }
}

/// Queue-depth tracking for one `run*` call: exact maximum, subsampled
/// series for percentiles.
pub(crate) struct DepthGauges {
    max: usize,
    samples: Vec<usize>,
}

impl DepthGauges {
    fn new() -> Self {
        DepthGauges {
            max: 0,
            samples: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn observe(&mut self, executed: u64, depth: usize) {
        if depth > self.max {
            self.max = depth;
        }
        if executed.is_multiple_of(DEPTH_SAMPLE_STRIDE) {
            self.samples.push(depth);
        }
    }

    fn summarize(mut self, outcome: RunOutcome, executed: u64, final_depth: usize) -> RunSummary {
        self.samples.sort_unstable();
        let pct = |p: f64| -> usize {
            if self.samples.is_empty() {
                return 0;
            }
            let rank = (p * (self.samples.len() - 1) as f64).round() as usize;
            self.samples[rank.min(self.samples.len() - 1)]
        };
        RunSummary {
            outcome,
            events_executed: executed,
            max_queue_depth: self.max,
            queue_depth_p50: pct(0.50),
            queue_depth_p99: pct(0.99),
            final_queue_depth: final_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A component that counts pings and optionally echoes them to a peer.
    struct Pinger {
        received: Vec<(u64, u32)>,
        peer: Option<Endpoint>,
        bounces_left: u32,
    }

    #[derive(Clone, Copy)]
    struct Ping(u32);

    impl Component for Pinger {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
            let ping = payload.downcast::<Ping>();
            self.received.push((ctx.now().as_ps(), ping.0));
            if let (Some(peer), true) = (self.peer, self.bounces_left > 0) {
                self.bounces_left -= 1;
                ctx.send(peer, Dur::from_ns(10), Ping(ping.0 + 1));
            }
        }
    }

    #[test]
    fn ping_pong_between_two_components() {
        let mut sim = Simulator::new(1);
        let a = sim.reserve("a");
        let b = sim.reserve("b");
        sim.install(
            a,
            Pinger {
                received: vec![],
                peer: Some(Endpoint::of(b)),
                bounces_left: 3,
            },
        );
        sim.install(
            b,
            Pinger {
                received: vec![],
                peer: Some(Endpoint::of(a)),
                bounces_left: 3,
            },
        );
        sim.post(Endpoint::of(a), Time::ZERO, Ping(0));
        assert_eq!(sim.run(), RunOutcome::Drained);
        // a gets pings 0, 2, 4, 6 at t = 0, 20ns, 40ns, 60ns... but bounce
        // budget of 3 per side caps the exchange at 7 total events.
        let a_ref = sim.component::<Pinger>(a);
        let b_ref = sim.component::<Pinger>(b);
        assert_eq!(a_ref.received.len() + b_ref.received.len(), 7);
        assert_eq!(a_ref.received[0], (0, 0));
        assert_eq!(b_ref.received[0], (10_000, 1));
        assert_eq!(a_ref.received[1], (20_000, 2));
        assert_eq!(sim.events_executed(), 7);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let mut sim = Simulator::new(0);
        let a = sim.add(
            "a",
            Pinger {
                received: vec![],
                peer: None,
                bounces_left: 0,
            },
        );
        sim.post(Endpoint::of(a), Time::from_ps(5_000), Ping(1));
        sim.post(Endpoint::of(a), Time::from_ps(15_000), Ping(2));
        assert_eq!(sim.run_until(Time::from_ps(10_000)), RunOutcome::Horizon);
        assert_eq!(sim.component::<Pinger>(a).received.len(), 1);
        assert_eq!(sim.now(), Time::from_ps(10_000));
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.component::<Pinger>(a).received.len(), 2);
    }

    #[test]
    fn event_budget_limits_execution() {
        struct SelfLooper;
        impl Component for SelfLooper {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, _payload: Payload) {
                ctx.send_self(port, Dur::from_ns(1), ());
            }
        }
        let mut sim = Simulator::new(0);
        let a = sim.add("loop", SelfLooper);
        sim.post(Endpoint::of(a), Time::ZERO, ());
        assert_eq!(sim.run_bounded(Time::MAX, 100), RunOutcome::Budget);
        assert_eq!(sim.events_executed(), 100);
    }

    #[test]
    fn stop_terminates_run() {
        struct Stopper;
        impl Component for Stopper {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, _payload: Payload) {
                ctx.stop();
            }
        }
        let mut sim = Simulator::new(0);
        let a = sim.add("stopper", Stopper);
        sim.post(Endpoint::of(a), Time::from_ps(7), ());
        sim.post(Endpoint::of(a), Time::from_ps(9), ());
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.now(), Time::from_ps(7));
    }

    #[test]
    #[should_panic(expected = "uninstalled component")]
    fn event_to_reserved_slot_panics() {
        let mut sim = Simulator::new(0);
        let a = sim.reserve("ghost");
        sim.post(Endpoint::of(a), Time::ZERO, ());
        sim.run();
    }

    #[test]
    fn simultaneous_events_execute_in_scheduling_order() {
        let mut sim = Simulator::new(0);
        let a = sim.add(
            "a",
            Pinger {
                received: vec![],
                peer: None,
                bounces_left: 0,
            },
        );
        for i in 0..10 {
            sim.post(Endpoint::of(a), Time::from_ps(100), Ping(i));
        }
        sim.run();
        let got: Vec<u32> = sim
            .component::<Pinger>(a)
            .received
            .iter()
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn trace_captures_deliveries_in_order() {
        let mut sim = Simulator::new(0);
        sim.enable_trace(16);
        let a = sim.add(
            "a",
            Pinger {
                received: vec![],
                peer: None,
                bounces_left: 0,
            },
        );
        for i in 0..3u64 {
            sim.post(Endpoint::of(a), Time::from_ps(i * 10), Ping(i as u32));
        }
        sim.run();
        let trace = sim.trace();
        assert_eq!(trace.len(), 3);
        assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(trace[0].payload_type.contains("Ping"));
        let tail = sim.trace_tail(2);
        assert_eq!(tail.matches("Ping").count(), 2);
    }

    #[test]
    fn trace_ring_keeps_the_newest_records() {
        let mut sim = Simulator::new(0);
        sim.enable_trace(4);
        let a = sim.add(
            "a",
            Pinger {
                received: vec![],
                peer: None,
                bounces_left: 0,
            },
        );
        for i in 0..10u64 {
            sim.post(Endpoint::of(a), Time::from_ps(i), Ping(i as u32));
        }
        sim.run();
        let trace = sim.trace();
        assert_eq!(trace.len(), 4);
        // Oldest-first and ending with the final delivery.
        assert_eq!(trace[0].time, Time::from_ps(6));
        assert_eq!(trace[3].time, Time::from_ps(9));
    }

    /// A component that holds parked work until it receives `n` pings.
    struct Collector {
        rank: u32,
        want: u32,
        got: u32,
    }

    impl Component for Collector {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _payload: Payload) {
            self.got += 1;
        }

        fn parked_work(&self) -> Option<ParkedWork> {
            (self.got < self.want).then(|| ParkedWork {
                rank: Some(self.rank),
                op: format!("WaitAll: {} of {} received", self.got, self.want),
            })
        }
    }

    #[test]
    fn watchdog_reports_parked_work_on_drain() {
        let mut sim = Simulator::new(0);
        let a = sim.add(
            "n0.collector",
            Collector {
                rank: 0,
                want: 2,
                got: 0,
            },
        );
        // Only one of the two expected pings ever arrives.
        sim.post(Endpoint::of(a), Time::from_ns(5), ());
        match sim.run() {
            RunOutcome::Stalled(report) => {
                assert_eq!(report.comp, a);
                assert_eq!(report.component, "n0.collector");
                assert_eq!(report.rank, Some(0));
                assert_eq!(report.op, "WaitAll: 1 of 2 received");
                assert_eq!(report.at, Time::from_ns(5));
                assert!(report.to_string().contains("n0.collector"));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_stays_quiet_when_work_completes() {
        let mut sim = Simulator::new(0);
        let a = sim.add(
            "collector",
            Collector {
                rank: 0,
                want: 2,
                got: 0,
            },
        );
        sim.post(Endpoint::of(a), Time::from_ns(5), ());
        sim.post(Endpoint::of(a), Time::from_ns(9), ());
        assert_eq!(sim.run(), RunOutcome::Drained);
    }

    #[test]
    fn watchdog_deadline_fires_amid_event_storms() {
        // A self-looping component keeps the queue busy forever (a
        // retransmission storm); the deadline still surfaces the stall.
        struct Storm;
        impl Component for Storm {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, _payload: Payload) {
                ctx.send_self(port, Dur::from_us(1), ());
            }
        }
        let mut sim = Simulator::new(0);
        let storm = sim.add("storm", Storm);
        let stuck = sim.add(
            "n3.collector",
            Collector {
                rank: 3,
                want: 1,
                got: 0,
            },
        );
        sim.post(Endpoint::of(storm), Time::ZERO, ());
        sim.set_stall_deadline(Time::from_us(50));
        match sim.run() {
            RunOutcome::Stalled(report) => {
                assert_eq!(report.comp, stuck);
                assert_eq!(report.rank, Some(3));
                assert!(sim.now() >= Time::from_us(50));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    /// A component blocked on a named resource, for deadlock-report tests.
    struct Waiter {
        waits: Vec<String>,
        holds: Vec<String>,
    }

    impl Component for Waiter {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _payload: Payload) {}

        fn parked_work(&self) -> Option<ParkedWork> {
            (!self.waits.is_empty()).then(|| ParkedWork {
                rank: None,
                op: format!("waiting on {}", self.waits.join(", ")),
            })
        }

        fn resource_state(&self) -> Option<ResourceState> {
            Some(ResourceState {
                waits: self.waits.clone(),
                holds: self.holds.clone(),
                gauges: vec![crate::deadlock::ResourceGauge {
                    name: "credits".into(),
                    used: self.waits.len() as u64,
                    capacity: Some(4),
                }],
            })
        }
    }

    #[test]
    fn stall_report_carries_deadlock_cycle_and_gauges() {
        let mut sim = Simulator::new(0);
        sim.add(
            "a",
            Waiter {
                waits: vec!["r1".into()],
                holds: vec!["r2".into()],
            },
        );
        sim.add(
            "b",
            Waiter {
                waits: vec!["r2".into()],
                holds: vec!["r1".into()],
            },
        );
        match sim.run() {
            RunOutcome::Stalled(report) => {
                let deadlock = report.deadlock.as_ref().expect("cycle diagnosed");
                assert_eq!(deadlock.kind, crate::deadlock::DeadlockKind::Cycle);
                assert_eq!(deadlock.chain, vec!["a", "r1", "b", "r2"]);
                assert!(report.gauges.iter().any(|g| g.contains("a: credits 1/4")));
                let rendered = report.to_string();
                assert!(rendered.contains("wait-for cycle"), "{rendered}");
                assert!(rendered.contains("gauge: b: credits 1/4"), "{rendered}");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn stall_report_names_orphaned_wait() {
        let mut sim = Simulator::new(0);
        sim.add(
            "n0.poe",
            Waiter {
                waits: vec!["net.txcredit(n0)".into()],
                holds: vec![],
            },
        );
        match sim.run() {
            RunOutcome::Stalled(report) => {
                let deadlock = report.deadlock.as_ref().expect("orphan diagnosed");
                assert_eq!(deadlock.kind, crate::deadlock::DeadlockKind::OrphanedWait);
                assert_eq!(deadlock.chain, vec!["n0.poe", "net.txcredit(n0)"]);
                assert!(report.to_string().contains("orphaned wait"));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn stall_reports_list_every_stuck_component() {
        let mut sim = Simulator::new(0);
        for rank in 0..3u32 {
            sim.add(
                format!("n{rank}.collector"),
                Collector {
                    rank,
                    want: 1,
                    got: 0,
                },
            );
        }
        assert!(matches!(sim.run(), RunOutcome::Stalled(_)));
        let reports = sim.stall_reports();
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports.iter().filter_map(|r| r.rank).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    #[allow(deprecated)]
    fn determinism_same_seed_same_timeline() {
        fn run_once(seed: u64) -> Vec<(u64, u32)> {
            use rand::RngExt;
            struct Jitterer {
                peer: Option<Endpoint>,
                log: Vec<(u64, u32)>,
                remaining: u32,
            }
            impl Component for Jitterer {
                fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
                    let v = payload.downcast::<u32>();
                    self.log.push((ctx.now().as_ps(), v));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        let jitter = ctx.rng().random_range(1..1000u64);
                        let peer = self.peer.unwrap_or(Endpoint::of(ctx.self_id()));
                        ctx.send(peer, Dur::from_ps(jitter), v + 1);
                    }
                }
            }
            let mut sim = Simulator::new(seed);
            let a = sim.add(
                "a",
                Jitterer {
                    peer: None,
                    log: vec![],
                    remaining: 50,
                },
            );
            sim.post(Endpoint::of(a), Time::ZERO, 0u32);
            sim.run();
            sim.component::<Jitterer>(a).log.clone()
        }
        assert_eq!(run_once(42), run_once(42));
        assert_ne!(run_once(42), run_once(43));
    }

    /// Workload with pseudo-random near/far delays used for the digest and
    /// queue-kind equivalence tests.
    struct JitterMix {
        remaining: u32,
    }

    impl Component for JitterMix {
        #[allow(deprecated)]
        fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
            use rand::RngExt;
            let v = payload.downcast::<u32>();
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let delay = match v % 5 {
                0 => Dur::from_us(ctx.rng().random_range(1..200u64)), // far
                _ => Dur::from_ps(ctx.rng().random_range(1..5000u64)), // near
            };
            ctx.send_self(port, delay, v + 1);
            if v.is_multiple_of(3) {
                // A second simultaneous event exercises seq tie-breaks.
                ctx.send_self(port, delay, v + 1000);
            }
        }
    }

    fn digest_with_kind(kind: QueueKind) -> u64 {
        let mut sim = Simulator::new_with_queue(7, kind);
        sim.enable_digest();
        let a = sim.add("mix", JitterMix { remaining: 500 });
        sim.post(Endpoint::of(a), Time::ZERO, 0u32);
        assert_eq!(sim.run(), RunOutcome::Drained);
        sim.timeline_digest().expect("digest enabled")
    }

    #[test]
    fn queue_kinds_produce_identical_timelines() {
        let calendar = digest_with_kind(QueueKind::Calendar);
        let heap = digest_with_kind(QueueKind::Heap);
        assert_eq!(calendar, heap, "tiered queue changed the event order");
    }

    #[test]
    fn digest_detects_timeline_differences() {
        let mut sim = Simulator::new(0);
        sim.enable_digest();
        let a = sim.add("mix", JitterMix { remaining: 10 });
        sim.post(Endpoint::of(a), Time::ZERO, 0u32);
        sim.run();
        let d1 = sim.timeline_digest().unwrap();

        let mut sim = Simulator::new(0);
        sim.enable_digest();
        let a = sim.add("mix", JitterMix { remaining: 11 });
        sim.post(Endpoint::of(a), Time::ZERO, 0u32);
        sim.run();
        let d2 = sim.timeline_digest().unwrap();
        assert_ne!(d1, d2);
    }

    #[test]
    fn set_queue_kind_mid_build_preserves_pending_events() {
        let run = |swap: bool| -> u64 {
            let mut sim = Simulator::new(3);
            sim.enable_digest();
            let a = sim.add("mix", JitterMix { remaining: 200 });
            for i in 0..10u32 {
                sim.post(Endpoint::of(a), Time::from_ps(u64::from(i) * 7), i);
            }
            if swap {
                sim.set_queue_kind(QueueKind::Heap);
                assert_eq!(sim.queue_kind(), QueueKind::Heap);
            }
            sim.run();
            sim.timeline_digest().unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn run_summary_reports_depth_and_event_gauges() {
        let mut sim = Simulator::new(0);
        let a = sim.add(
            "a",
            Pinger {
                received: vec![],
                peer: None,
                bounces_left: 0,
            },
        );
        for i in 0..100u64 {
            sim.post(Endpoint::of(a), Time::from_ps(i), Ping(i as u32));
        }
        assert_eq!(sim.run(), RunOutcome::Drained);
        let summary = sim.last_run_summary().expect("run recorded a summary");
        assert_eq!(summary.outcome, RunOutcome::Drained);
        assert_eq!(summary.events_executed, 100);
        assert_eq!(summary.max_queue_depth, 99);
        assert_eq!(summary.final_queue_depth, 0);
        assert!(summary.queue_depth_p50 <= summary.queue_depth_p99);
        assert!(summary.queue_depth_p99 <= summary.max_queue_depth);
        assert_eq!(sim.stats().counter("sim.kernel.events_executed"), 100);
        assert_eq!(
            sim.stats().max_sample("sim.kernel.queue_depth.max"),
            Some(99.0)
        );
    }
}
