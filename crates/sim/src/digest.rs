//! State-digest folding for [`crate::sim::Component::state_digest`].
//!
//! Every component that carries externally-meaningful state folds it into
//! a single `u64` with [`fnv_fold`]; the race detector's shadow runs and
//! the parallel engine's cross-mode gates compare these digests, so a
//! digest must cover exactly the state that two equivalent runs are
//! required to agree on — final logical totals and canonically-ordered
//! (`BTreeMap`) populations, never tie-order-dependent history.
//!
//! Always compiled (unlike the `race-detect`-gated [`crate::race`] module):
//! digests also feed the default-build parallel determinism gates.

/// FNV-1a fold of `bytes` into a running state digest. A zero hash is
/// seeded with the FNV offset basis first, so `0` doubles as the empty
/// initializer.
pub fn fnv_fold(hash: &mut u64, bytes: &[u8]) {
    if *hash == 0 {
        *hash = 0xcbf2_9ce4_8422_2325;
    }
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}
