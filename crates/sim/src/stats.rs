//! Simulation-wide statistics: typed counters, gauges, log-bucketed
//! histograms and sample series.
//!
//! Components record measurements under string keys; benchmark harnesses
//! read them back after a run to produce the paper's tables. Keys are
//! free-form but the convention is `"<node>.<component>.<metric>"`.
//!
//! Integer instruments ([`Stats::add`], [`Stats::set_gauge`],
//! [`Stats::observe`]) are float-free and safe to drive from sim-visible
//! paths; the `f64` sample series ([`Stats::record`]) is reserved for
//! harness-side post-processing where platform-dependent rounding cannot
//! leak back into the timeline.

use std::collections::BTreeMap;

/// Number of log2 buckets in a [`Histogram`] (covers the full `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// An integer-only, log2-bucketed histogram.
///
/// Bucket `i` counts observations whose value needs `i` bits — bucket 0
/// holds zeros, bucket 1 holds `1`, bucket 2 holds `2..=3`, and so on —
/// so queue depths, byte counts and cycle counts over many orders of
/// magnitude stay cheap and deterministic (no floats anywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `value`: the number of significant bits.
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` (inclusive).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean (sum / count), or `None` if empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Upper-bound estimate of the `p`-th permille (0..=1000) observation:
    /// the inclusive upper bound of the first bucket whose cumulative count
    /// reaches the rank, clamped to the observed min/max. Integer-only.
    pub fn percentile_permille(&self, p: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (p.min(1000) * self.count).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let ceil = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return Some(ceil.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds `other`'s observations into this histogram, as if every one
    /// of them had been observed here. Used to aggregate per-shard
    /// statistics after a parallel run.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket floor, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_floor(i), n))
    }
}

/// A set of named counters, gauges, histograms and sample series.
#[derive(Default, Debug, Clone)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<f64>>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets gauge `key` to `value` (last write wins).
    pub fn set_gauge(&mut self, key: &str, value: i64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Current value of gauge `key`, if ever set.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        self.gauges.get(key).copied()
    }

    /// Records `value` into the log2-bucketed histogram `key`.
    pub fn observe(&mut self, key: &str, value: u64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(value);
    }

    /// The histogram under `key`, if any observation was made.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Appends a sample to series `key`.
    pub fn record(&mut self, key: &str, value: f64) {
        self.series.entry(key.to_string()).or_default().push(value);
    }

    /// All samples recorded under `key`.
    pub fn samples(&self, key: &str) -> &[f64] {
        self.series.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mean of the samples under `key`, or `None` if empty.
    pub fn mean(&self, key: &str) -> Option<f64> {
        let s = self.samples(key);
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<f64>() / s.len() as f64)
        }
    }

    /// The `p` percentile (0.0..=100.0) of samples under `key`.
    ///
    /// Uses `total_cmp`, so NaN samples sort to the end (IEEE 754 total
    /// order) instead of panicking mid-report.
    pub fn percentile(&self, key: &str, p: f64) -> Option<f64> {
        let mut s: Vec<f64> = self.samples(key).to_vec();
        if s.is_empty() {
            return None;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let rank = (p / 100.0 * (s.len() - 1) as f64).round() as usize;
        Some(s[rank.min(s.len() - 1)])
    }

    /// Maximum sample under `key`.
    pub fn max_sample(&self, key: &str) -> Option<f64> {
        self.samples(key)
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Iterates over all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over all series names in key order.
    pub fn series_keys(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Folds another registry into this one: counters add, gauges take
    /// `other`'s value (last write wins, as if `other`'s writes happened
    /// after ours), histograms merge observation-wise, series append.
    /// Used to aggregate per-shard registries after a parallel run;
    /// callers merge shards in partition order so the result is
    /// deterministic and independent of the worker count.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.series {
            self.series.entry(k.clone()).or_default().extend(s);
        }
    }

    /// Clears all counters, gauges, histograms and series (e.g. between
    /// sweep points).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("pkts", 3);
        s.add("pkts", 4);
        assert_eq!(s.counter("pkts"), 7);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn series_statistics() {
        let mut s = Stats::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.record("lat", v);
        }
        assert_eq!(s.samples("lat").len(), 4);
        assert_eq!(s.mean("lat"), Some(2.5));
        assert_eq!(s.percentile("lat", 0.0), Some(1.0));
        assert_eq!(s.percentile("lat", 100.0), Some(4.0));
        assert_eq!(s.max_sample("lat"), Some(4.0));
        assert_eq!(s.mean("absent"), None);
    }

    #[test]
    fn percentile_handles_negative_duplicate_and_nan_samples() {
        let mut s = Stats::new();
        for v in [-3.0, -3.0, 0.0, 2.0, 2.0, -7.5] {
            s.record("lat", v);
        }
        assert_eq!(s.percentile("lat", 0.0), Some(-7.5));
        // Six samples sorted: [-7.5, -3, -3, 0, 2, 2]; rank(50%) = 3.
        assert_eq!(s.percentile("lat", 50.0), Some(0.0));
        assert_eq!(s.percentile("lat", 100.0), Some(2.0));
        // A NaN sample must not panic; total order sorts it last.
        s.record("lat", f64::NAN);
        assert_eq!(s.percentile("lat", 0.0), Some(-7.5));
        assert!(s.percentile("lat", 100.0).unwrap().is_nan());
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut s = Stats::new();
        assert_eq!(s.gauge("depth"), None);
        s.set_gauge("depth", 4);
        s.set_gauge("depth", -1);
        assert_eq!(s.gauge("depth"), Some(-1));
        assert_eq!(s.gauges().collect::<Vec<_>>(), vec![("depth", -1)]);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_010);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1_000_000));
        assert_eq!(h.mean(), Some(1_001_010 / 7));
        assert_eq!(h.percentile_permille(0), Some(0));
        assert_eq!(h.percentile_permille(1000), Some(1_000_000));
        // Buckets: 0 -> [0], 1 -> [1], 2..=3 -> bucket floor 2, 4 -> 4.
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert!(buckets.contains(&(0, 1)));
        assert!(buckets.contains(&(2, 2)));
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(64), 1u64 << 63);
    }

    #[test]
    fn stats_histogram_registry() {
        let mut s = Stats::new();
        s.observe("q.depth", 3);
        s.observe("q.depth", 9);
        let h = s.histogram("q.depth").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(9));
        assert!(s.histogram("absent").is_none());
        assert_eq!(s.histograms().count(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.add("a", 1);
        s.record("b", 1.0);
        s.set_gauge("c", 2);
        s.observe("d", 3);
        s.reset();
        assert_eq!(s.counter("a"), 0);
        assert!(s.samples("b").is_empty());
        assert_eq!(s.gauge("c"), None);
        assert!(s.histogram("d").is_none());
    }
}
