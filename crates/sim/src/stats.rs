//! Simulation-wide statistics: counters and sample series.
//!
//! Components record measurements under string keys; benchmark harnesses
//! read them back after a run to produce the paper's tables. Keys are
//! free-form but the convention is `"<node>.<component>.<metric>"`.

use std::collections::BTreeMap;

/// A set of named counters and sample series.
#[derive(Default, Debug, Clone)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<f64>>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Appends a sample to series `key`.
    pub fn record(&mut self, key: &str, value: f64) {
        self.series.entry(key.to_string()).or_default().push(value);
    }

    /// All samples recorded under `key`.
    pub fn samples(&self, key: &str) -> &[f64] {
        self.series.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mean of the samples under `key`, or `None` if empty.
    pub fn mean(&self, key: &str) -> Option<f64> {
        let s = self.samples(key);
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<f64>() / s.len() as f64)
        }
    }

    /// The `p` percentile (0.0..=100.0) of samples under `key`.
    pub fn percentile(&self, key: &str, p: f64) -> Option<f64> {
        let mut s: Vec<f64> = self.samples(key).to_vec();
        if s.is_empty() {
            return None;
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = (p / 100.0 * (s.len() - 1) as f64).round() as usize;
        Some(s[rank.min(s.len() - 1)])
    }

    /// Maximum sample under `key`.
    pub fn max_sample(&self, key: &str) -> Option<f64> {
        self.samples(key)
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Iterates over all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all series names in key order.
    pub fn series_keys(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Clears all counters and series (e.g. between sweep points).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("pkts", 3);
        s.add("pkts", 4);
        assert_eq!(s.counter("pkts"), 7);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn series_statistics() {
        let mut s = Stats::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.record("lat", v);
        }
        assert_eq!(s.samples("lat").len(), 4);
        assert_eq!(s.mean("lat"), Some(2.5));
        assert_eq!(s.percentile("lat", 0.0), Some(1.0));
        assert_eq!(s.percentile("lat", 100.0), Some(4.0));
        assert_eq!(s.max_sample("lat"), Some(4.0));
        assert_eq!(s.mean("absent"), None);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.add("a", 1);
        s.record("b", 1.0);
        s.reset();
        assert_eq!(s.counter("a"), 0);
        assert!(s.samples("b").is_empty());
    }
}
