//! Simulation-wide statistics: typed counters, gauges, log-bucketed
//! histograms and sample series.
//!
//! Components record measurements under string keys; benchmark harnesses
//! read them back after a run to produce the paper's tables. Keys are
//! free-form but the convention is `"<node>.<component>.<metric>"`.
//!
//! Integer instruments ([`Stats::add`], [`Stats::set_gauge`],
//! [`Stats::observe`]) are float-free and safe to drive from sim-visible
//! paths; the `f64` sample series ([`Stats::record`]) is reserved for
//! harness-side post-processing where platform-dependent rounding cannot
//! leak back into the timeline.

use std::collections::BTreeMap;

use crate::time::{Dur, Time};

/// Number of log2 buckets in a [`Histogram`] (covers the full `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// An integer-only, log2-bucketed histogram.
///
/// Bucket `i` counts observations whose value needs `i` bits — bucket 0
/// holds zeros, bucket 1 holds `1`, bucket 2 holds `2..=3`, and so on —
/// so queue depths, byte counts and cycle counts over many orders of
/// magnitude stay cheap and deterministic (no floats anywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `value`: the number of significant bits.
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` (inclusive).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean (sum / count), or `None` if empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Upper-bound estimate of the `p`-th permille (0..=1000) observation:
    /// the inclusive upper bound of the first bucket whose cumulative count
    /// reaches the rank, clamped to the observed min/max. Integer-only.
    pub fn percentile_permille(&self, p: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (p.min(1000) * self.count).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let ceil = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return Some(ceil.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds `other`'s observations into this histogram, as if every one
    /// of them had been observed here. Used to aggregate per-shard
    /// statistics after a parallel run.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket floor, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_floor(i), n))
    }
}

/// One fixed-width sim-time window's worth of metric activity: the
/// counter *deltas*, last gauge writes, and histogram observations that
/// landed while simulated time sat inside the window. Integer-only and
/// deterministic; produced by [`Stats`] when windowing is enabled via
/// [`Stats::enable_windows`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl WindowSnapshot {
    /// Counter delta accumulated in this window (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Last gauge write that landed in this window, if any.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        self.gauges.get(key).copied()
    }

    /// Histogram of the observations that landed in this window, if any.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterates over this window's counter deltas in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over this window's gauge writes in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over this window's histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another snapshot of the *same* window (from another shard)
    /// into this one: counters add, gauges take `other`'s value (callers
    /// merge shards in partition order, a pure function of the
    /// simulation), histograms merge observation-wise.
    fn merge(&mut self, other: &WindowSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

/// A set of named counters, gauges, histograms and sample series.
#[derive(Default, Debug, Clone)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<f64>>,
    /// Fixed window width in picoseconds; zero means windowing is off.
    window_width_ps: u64,
    /// Last simulated time stamped by the scheduling context (raw ps;
    /// only ever consumed by integer division, never free arithmetic).
    now_ps: u64,
    /// Per-window activity, keyed by window index `now / width`.
    windows: BTreeMap<u64, WindowSnapshot>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables fixed-width sim-time windowing: every subsequent counter
    /// add, gauge write, and histogram observation is *additionally*
    /// routed into the [`WindowSnapshot`] of the window containing the
    /// simulated time last stamped by the scheduling context. The
    /// cumulative registry is unchanged. Call before the run starts so
    /// the whole timeline is covered.
    pub fn enable_windows(&mut self, width: Dur) {
        assert!(width.as_ps() > 0, "zero-width metric window");
        self.window_width_ps = width.as_ps();
    }

    /// The configured window width, if windowing is enabled.
    pub fn window_width(&self) -> Option<Dur> {
        (self.window_width_ps > 0).then(|| Dur::from_ps(self.window_width_ps))
    }

    /// Stamps the current simulated time so subsequent instrument writes
    /// land in the right window. Called by `Ctx::stats()`; harness code
    /// writing through `Simulator::stats_mut` after a run lands in the
    /// last stamped window.
    pub(crate) fn stamp_now(&mut self, now: Time) {
        self.now_ps = now.as_ps();
    }

    /// Index of the window the last stamped time falls in (`None` when
    /// windowing is off).
    pub fn current_window(&self) -> Option<u64> {
        (self.window_width_ps > 0).then(|| self.now_ps / self.window_width_ps)
    }

    /// The recorded activity of window `idx`, if anything landed there.
    pub fn window(&self, idx: u64) -> Option<&WindowSnapshot> {
        self.windows.get(&idx)
    }

    /// Iterates over all non-empty windows in index order.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &WindowSnapshot)> {
        self.windows.iter().map(|(k, v)| (*k, v))
    }

    /// Start time of window `idx` (meaningful only when windowing is on).
    pub fn window_start(&self, idx: u64) -> Time {
        Time::ZERO + Dur::from_ps(self.window_width_ps) * idx
    }

    fn live_window(&mut self) -> Option<&mut WindowSnapshot> {
        if self.window_width_ps == 0 {
            return None;
        }
        let idx = self.now_ps / self.window_width_ps;
        Some(self.windows.entry(idx).or_default())
    }

    /// Adds `delta` to counter `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
        if let Some(w) = self.live_window() {
            *w.counters.entry(key.to_string()).or_insert(0) += delta;
        }
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets gauge `key` to `value` (last write wins).
    pub fn set_gauge(&mut self, key: &str, value: i64) {
        self.gauges.insert(key.to_string(), value);
        if let Some(w) = self.live_window() {
            w.gauges.insert(key.to_string(), value);
        }
    }

    /// Current value of gauge `key`, if ever set.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        self.gauges.get(key).copied()
    }

    /// Records `value` into the log2-bucketed histogram `key`.
    pub fn observe(&mut self, key: &str, value: u64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(value);
        if let Some(w) = self.live_window() {
            w.histograms
                .entry(key.to_string())
                .or_default()
                .observe(value);
        }
    }

    /// The histogram under `key`, if any observation was made.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Appends a sample to series `key`.
    pub fn record(&mut self, key: &str, value: f64) {
        self.series.entry(key.to_string()).or_default().push(value);
    }

    /// All samples recorded under `key`.
    pub fn samples(&self, key: &str) -> &[f64] {
        self.series.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mean of the samples under `key`, or `None` if empty.
    pub fn mean(&self, key: &str) -> Option<f64> {
        let s = self.samples(key);
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<f64>() / s.len() as f64)
        }
    }

    /// The `p` percentile (0.0..=100.0) of samples under `key`.
    ///
    /// Uses `total_cmp`, so NaN samples sort to the end (IEEE 754 total
    /// order) instead of panicking mid-report.
    pub fn percentile(&self, key: &str, p: f64) -> Option<f64> {
        let mut s: Vec<f64> = self.samples(key).to_vec();
        if s.is_empty() {
            return None;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let rank = (p / 100.0 * (s.len() - 1) as f64).round() as usize;
        Some(s[rank.min(s.len() - 1)])
    }

    /// Maximum sample under `key`.
    pub fn max_sample(&self, key: &str) -> Option<f64> {
        self.samples(key)
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Iterates over all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over all series names in key order.
    pub fn series_keys(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Folds another registry into this one: counters add, gauges take
    /// `other`'s value (last write wins, as if `other`'s writes happened
    /// after ours), histograms merge observation-wise, series append.
    /// Used to aggregate per-shard registries after a parallel run;
    /// callers merge shards in partition order so the result is
    /// deterministic and independent of the worker count.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.series {
            self.series.entry(k.clone()).or_default().extend(s);
        }
        // Windows merge by (window index, partition order): same-index
        // snapshots from different shards fold together exactly like the
        // cumulative instruments above.
        for (idx, w) in &other.windows {
            self.windows.entry(*idx).or_default().merge(w);
        }
        if self.window_width_ps == 0 {
            self.window_width_ps = other.window_width_ps;
        }
        self.now_ps = self.now_ps.max(other.now_ps);
    }

    /// Clears all counters, gauges, histograms and series (e.g. between
    /// sweep points).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.series.clear();
        self.windows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("pkts", 3);
        s.add("pkts", 4);
        assert_eq!(s.counter("pkts"), 7);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn series_statistics() {
        let mut s = Stats::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.record("lat", v);
        }
        assert_eq!(s.samples("lat").len(), 4);
        assert_eq!(s.mean("lat"), Some(2.5));
        assert_eq!(s.percentile("lat", 0.0), Some(1.0));
        assert_eq!(s.percentile("lat", 100.0), Some(4.0));
        assert_eq!(s.max_sample("lat"), Some(4.0));
        assert_eq!(s.mean("absent"), None);
    }

    #[test]
    fn percentile_handles_negative_duplicate_and_nan_samples() {
        let mut s = Stats::new();
        for v in [-3.0, -3.0, 0.0, 2.0, 2.0, -7.5] {
            s.record("lat", v);
        }
        assert_eq!(s.percentile("lat", 0.0), Some(-7.5));
        // Six samples sorted: [-7.5, -3, -3, 0, 2, 2]; rank(50%) = 3.
        assert_eq!(s.percentile("lat", 50.0), Some(0.0));
        assert_eq!(s.percentile("lat", 100.0), Some(2.0));
        // A NaN sample must not panic; total order sorts it last.
        s.record("lat", f64::NAN);
        assert_eq!(s.percentile("lat", 0.0), Some(-7.5));
        assert!(s.percentile("lat", 100.0).unwrap().is_nan());
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut s = Stats::new();
        assert_eq!(s.gauge("depth"), None);
        s.set_gauge("depth", 4);
        s.set_gauge("depth", -1);
        assert_eq!(s.gauge("depth"), Some(-1));
        assert_eq!(s.gauges().collect::<Vec<_>>(), vec![("depth", -1)]);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_010);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1_000_000));
        assert_eq!(h.mean(), Some(1_001_010 / 7));
        assert_eq!(h.percentile_permille(0), Some(0));
        assert_eq!(h.percentile_permille(1000), Some(1_000_000));
        // Buckets: 0 -> [0], 1 -> [1], 2..=3 -> bucket floor 2, 4 -> 4.
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert!(buckets.contains(&(0, 1)));
        assert!(buckets.contains(&(2, 2)));
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(64), 1u64 << 63);
    }

    #[test]
    fn stats_histogram_registry() {
        let mut s = Stats::new();
        s.observe("q.depth", 3);
        s.observe("q.depth", 9);
        let h = s.histogram("q.depth").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(9));
        assert!(s.histogram("absent").is_none());
        assert_eq!(s.histograms().count(), 1);
    }

    #[test]
    fn windows_route_by_stamped_time() {
        let mut s = Stats::new();
        s.enable_windows(Dur::from_ps(100));
        s.stamp_now(Time::from_ps(10));
        s.add("pkts", 2);
        s.observe("lat", 8);
        s.set_gauge("depth", 1);
        s.stamp_now(Time::from_ps(250));
        s.add("pkts", 5);
        s.observe("lat", 32);
        s.set_gauge("depth", 7);
        // Cumulative view is unchanged by windowing.
        assert_eq!(s.counter("pkts"), 7);
        assert_eq!(s.histogram("lat").unwrap().count(), 2);
        // Window 0 holds the first batch, window 2 the second, window 1
        // never materializes.
        let w0 = s.window(0).unwrap();
        assert_eq!(w0.counter("pkts"), 2);
        assert_eq!(w0.gauge("depth"), Some(1));
        assert_eq!(w0.histogram("lat").unwrap().max(), Some(8));
        assert!(s.window(1).is_none());
        let w2 = s.window(2).unwrap();
        assert_eq!(w2.counter("pkts"), 5);
        assert_eq!(w2.gauge("depth"), Some(7));
        assert_eq!(s.windows().count(), 2);
        assert_eq!(s.window_start(2), Time::from_ps(200));
        assert_eq!(s.current_window(), Some(2));
    }

    #[test]
    fn window_merge_matches_sequential_observation() {
        // Two "shards" observing the same window indices must merge to
        // exactly what one sequential registry would have recorded.
        let mut seq = Stats::new();
        seq.enable_windows(Dur::from_ps(10));
        let mut a = Stats::new();
        a.enable_windows(Dur::from_ps(10));
        let mut b = Stats::new();
        b.enable_windows(Dur::from_ps(10));
        for (t, v) in [(1u64, 3u64), (5, 9), (15, 2)] {
            seq.stamp_now(Time::from_ps(t));
            seq.add("n", v);
            seq.observe("h", v);
        }
        for (t, v) in [(1u64, 3u64), (15, 2)] {
            a.stamp_now(Time::from_ps(t));
            a.add("n", v);
            a.observe("h", v);
        }
        b.stamp_now(Time::from_ps(5));
        b.add("n", 9);
        b.observe("h", 9);
        let mut merged = Stats::new();
        merged.enable_windows(Dur::from_ps(10));
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.window(0), seq.window(0));
        assert_eq!(merged.window(1), seq.window(1));
        assert_eq!(merged.counter("n"), seq.counter("n"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.add("a", 1);
        s.record("b", 1.0);
        s.set_gauge("c", 2);
        s.observe("d", 3);
        s.reset();
        assert_eq!(s.counter("a"), 0);
        assert!(s.samples("b").is_empty());
        assert_eq!(s.gauge("c"), None);
        assert!(s.histogram("d").is_none());
    }
}
