//! Sim-time deadlock detection over a component/resource wait-for graph.
//!
//! When the cluster goes quiet with outstanding work, the stall watchdog
//! knows *that* something is stuck but not *why*. Under bounded resources
//! (tx credit windows, PFC pause, finite buffer pools) the "why" is usually
//! a wait chain: a component is blocked on a resource held — or leaked — by
//! someone else. This module turns the per-component
//! [`Component::resource_state`](crate::sim::Component::resource_state)
//! snapshots into a bipartite wait-for graph
//!
//! ```text
//!   component --waits--> resource --held-by--> component --waits--> ...
//! ```
//!
//! and reports either a **cycle** (a true deadlock: every participant waits
//! on a resource another participant holds) or an **orphaned wait** (a
//! component waits on a resource no live component holds — the signature of
//! a credit leak or a lost pause-resume). Analysis is purely deterministic:
//! components are visited in registration order and resources in the order
//! each component listed them, so the same stuck state always names the
//! same chain.

use std::collections::BTreeMap;

/// One bounded resource's occupancy, reported by a component for stall
/// diagnosis (e.g. `used=4, capacity=Some(4)` for an exhausted credit
/// window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceGauge {
    /// Stable resource name, conventionally `"<domain>.<what>(<scope>)"`,
    /// e.g. `"net.txcredit(n0)"` or `"cclo.rxbuf(n2)"`.
    pub name: String,
    /// Units currently in use (or queued against the resource).
    pub used: u64,
    /// Total capacity, when finite.
    pub capacity: Option<u64>,
}

impl core::fmt::Display for ResourceGauge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.capacity {
            Some(cap) => write!(f, "{} {}/{}", self.name, self.used, cap),
            None => write!(f, "{} {}", self.name, self.used),
        }
    }
}

/// A component's resource-level view for the deadlock detector, reported
/// via [`Component::resource_state`](crate::sim::Component::resource_state).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceState {
    /// Resources this component is currently blocked on (it cannot make
    /// progress until a unit becomes available). Empty when not blocked.
    pub waits: Vec<String>,
    /// Resources this component currently occupies units of and will
    /// eventually release (in-flight credits, admitted buffers, an active
    /// pause it will lift).
    pub holds: Vec<String>,
    /// Occupancy gauges for the bounded resources this component manages,
    /// attached to stall reports so overload is diagnosable from the
    /// report alone.
    pub gauges: Vec<ResourceGauge>,
}

impl ResourceState {
    /// A state that only publishes gauges (not blocked, holding nothing).
    pub fn gauges_only(gauges: Vec<ResourceGauge>) -> Self {
        ResourceState {
            waits: Vec::new(),
            holds: Vec::new(),
            gauges,
        }
    }

    /// Whether the state carries no information at all.
    pub fn is_empty(&self) -> bool {
        self.waits.is_empty() && self.holds.is_empty() && self.gauges.is_empty()
    }
}

/// What shape of stuck wait chain the detector found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockKind {
    /// A closed wait cycle: every participant waits on a resource held by
    /// the next. A true deadlock — no amount of waiting resolves it.
    Cycle,
    /// A component waits on a resource that no live component holds: the
    /// units were leaked (or their holder crashed). Waiting never resolves
    /// it either, but the fix is different — find the leak, not the cycle.
    OrphanedWait,
}

/// A diagnosed wait chain, attached to
/// [`StallReport`](crate::sim::StallReport) when the detector finds one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle or orphaned wait.
    pub kind: DeadlockKind,
    /// The chain, alternating component and resource names starting with a
    /// component: `[comp, resource, comp, resource, ...]`. For a cycle the
    /// first component is (implicitly) waited back into by the last
    /// resource; for an orphaned wait the chain ends at the resource
    /// nobody holds.
    pub chain: Vec<String>,
}

impl core::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            DeadlockKind::Cycle => {
                write!(f, "wait-for cycle: ")?;
                for (i, name) in self.chain.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{name}")?;
                }
                write!(f, " -> {}", self.chain[0])
            }
            DeadlockKind::OrphanedWait => {
                write!(f, "orphaned wait: ")?;
                for (i, name) in self.chain.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{name}")?;
                }
                write!(f, " (held by no live component: leaked or lost)")
            }
        }
    }
}

/// Analyzes the wait-for graph over per-component resource states
/// (`(component_name, state)` in component-id order) and returns the first
/// diagnosed chain, preferring a true cycle over an orphaned wait.
pub fn analyze(states: &[(String, ResourceState)]) -> Option<DeadlockReport> {
    // resource name -> indices of components holding it, in id order.
    let mut holders: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, (_, st)) in states.iter().enumerate() {
        for h in &st.holds {
            holders.entry(h.as_str()).or_default().push(i);
        }
    }

    // Cycle search: DFS over component -> (wait) resource -> holder edges,
    // rooted at each waiting component in id order.
    for root in 0..states.len() {
        if states[root].1.waits.is_empty() {
            continue;
        }
        if let Some(report) = find_cycle(states, &holders, root) {
            return Some(report);
        }
    }

    // No cycle: the first wait on a holder-less resource is an orphan.
    for (name, st) in states {
        for w in &st.waits {
            if !holders.contains_key(w.as_str()) {
                return Some(DeadlockReport {
                    kind: DeadlockKind::OrphanedWait,
                    chain: vec![name.clone(), w.clone()],
                });
            }
        }
    }
    None
}

/// DFS from `root` looking for a wait cycle; the path alternates
/// `component, resource, component, resource, ...`.
fn find_cycle(
    states: &[(String, ResourceState)],
    holders: &BTreeMap<&str, Vec<usize>>,
    root: usize,
) -> Option<DeadlockReport> {
    // Iterative DFS with an explicit stack of (component, next wait index,
    // next holder index) so the traversal order is obvious and stable.
    let mut on_path = vec![false; states.len()];
    let mut path: Vec<(usize, String)> = Vec::new(); // (comp, resource it waits on)
    let mut stack: Vec<(usize, usize, usize)> = vec![(root, 0, 0)];
    on_path[root] = true;

    while let Some(&mut (comp, ref mut wi, ref mut hi)) = stack.last_mut() {
        let waits = &states[comp].1.waits;
        if *wi >= waits.len() {
            // Exhausted this component: backtrack.
            on_path[comp] = false;
            stack.pop();
            path.pop();
            continue;
        }
        let resource = &waits[*wi];
        let hs = holders.get(resource.as_str()).map_or(&[][..], |v| &v[..]);
        if *hi >= hs.len() {
            *wi += 1;
            *hi = 0;
            continue;
        }
        let holder = hs[*hi];
        *hi += 1;
        if on_path[holder] {
            // Close the cycle at `holder`: the chain starts there.
            let mut chain = Vec::new();
            let start = path.iter().position(|&(c, _)| c == holder);
            let tail: Vec<(usize, String)> = match start {
                Some(s) => path[s..].to_vec(),
                None => Vec::new(), // holder == comp at the stack top
            };
            for (c, r) in tail {
                chain.push(states[c].0.clone());
                chain.push(r);
            }
            chain.push(states[comp].0.clone());
            chain.push(resource.clone());
            return Some(DeadlockReport {
                kind: DeadlockKind::Cycle,
                chain,
            });
        }
        if states[holder].1.waits.is_empty() {
            // A holder that isn't blocked will eventually release: not a
            // deadlock through this edge.
            continue;
        }
        path.push((comp, resource.clone()));
        on_path[holder] = true;
        stack.push((holder, 0, 0));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(waits: &[&str], holds: &[&str]) -> ResourceState {
        ResourceState {
            waits: waits.iter().map(|s| s.to_string()).collect(),
            holds: holds.iter().map(|s| s.to_string()).collect(),
            gauges: Vec::new(),
        }
    }

    fn named(states: Vec<(&str, ResourceState)>) -> Vec<(String, ResourceState)> {
        states
            .into_iter()
            .map(|(n, s)| (n.to_string(), s))
            .collect()
    }

    #[test]
    fn no_waits_no_deadlock() {
        let states = named(vec![
            ("a", st(&[], &["r1"])),
            ("b", ResourceState::default()),
        ]);
        assert_eq!(analyze(&states), None);
    }

    #[test]
    fn wait_on_live_holder_is_not_a_deadlock() {
        // b holds r1 but is not itself blocked: it will release.
        let states = named(vec![("a", st(&["r1"], &[])), ("b", st(&[], &["r1"]))]);
        assert_eq!(analyze(&states), None);
    }

    #[test]
    fn two_party_cycle_is_named() {
        let states = named(vec![
            ("a", st(&["r1"], &["r2"])),
            ("b", st(&["r2"], &["r1"])),
        ]);
        let rep = analyze(&states).expect("cycle");
        assert_eq!(rep.kind, DeadlockKind::Cycle);
        assert_eq!(rep.chain, vec!["a", "r1", "b", "r2"]);
        let s = rep.to_string();
        assert!(s.contains("wait-for cycle"), "{s}");
        assert!(s.contains("a -> r1 -> b -> r2 -> a"), "{s}");
    }

    #[test]
    fn self_cycle_is_named() {
        // A component waiting on a resource it itself holds (e.g. buffers
        // occupied by messages only it can consume).
        let states = named(vec![("rbm", st(&["buf"], &["buf"]))]);
        let rep = analyze(&states).expect("self cycle");
        assert_eq!(rep.kind, DeadlockKind::Cycle);
        assert_eq!(rep.chain, vec!["rbm", "buf"]);
    }

    #[test]
    fn three_party_cycle_found_through_benign_branch() {
        let states = named(vec![
            // a also waits on a resource held by a live (non-blocked)
            // component; the detector must skip that branch and still find
            // the cycle a -> b -> c -> a.
            ("a", st(&["benign", "r1"], &["r3"])),
            ("b", st(&["r2"], &["r1"])),
            ("c", st(&["r3"], &["r2"])),
            ("live", st(&[], &["benign"])),
        ]);
        let rep = analyze(&states).expect("cycle");
        assert_eq!(rep.kind, DeadlockKind::Cycle);
        assert_eq!(rep.chain, vec!["a", "r1", "b", "r2", "c", "r3"]);
    }

    #[test]
    fn orphaned_wait_names_the_leak() {
        let states = named(vec![
            ("poe", st(&["net.txcredit(n0)"], &[])),
            ("other", ResourceState::default()),
        ]);
        let rep = analyze(&states).expect("orphan");
        assert_eq!(rep.kind, DeadlockKind::OrphanedWait);
        assert_eq!(rep.chain, vec!["poe", "net.txcredit(n0)"]);
        assert!(rep.to_string().contains("leaked or lost"));
    }

    #[test]
    fn cycle_preferred_over_orphan() {
        let states = named(vec![
            ("x", st(&["lost"], &[])),
            ("a", st(&["r1"], &["r2"])),
            ("b", st(&["r2"], &["r1"])),
        ]);
        let rep = analyze(&states).expect("report");
        assert_eq!(rep.kind, DeadlockKind::Cycle);
    }

    #[test]
    fn gauge_display_formats() {
        let g = ResourceGauge {
            name: "net.txcredit(n1)".into(),
            used: 4,
            capacity: Some(4),
        };
        assert_eq!(g.to_string(), "net.txcredit(n1) 4/4");
        let g2 = ResourceGauge {
            name: "q".into(),
            used: 7,
            capacity: None,
        };
        assert_eq!(g2.to_string(), "q 7");
    }
}
