//! The sim-time race detector (`race-detect` feature).
//!
//! The simulator's bit-replay contract defines the order of same-timestamp
//! events as scheduling (`seq`) order. That rule makes every run
//! reproducible — but it can *mask* logical races: two handlers that fire
//! at the same simulated instant and do not commute will still replay
//! bit-identically, right up until an innocent refactor reorders their
//! scheduling and the golden digests silently move. This module makes such
//! latent races visible, in the spirit of happens-before race detectors
//! (ThreadSanitizer) transplanted to discrete-event simulated time:
//!
//! 1. **Tie-set recording** ([`TieRecorder`], enabled via
//!    `Simulator::enable_tie_recording`): the kernel groups deliveries that
//!    share a timestamp into *tie-sets* and canonicalizes each set by
//!    sorting its `(component, port, payload type)` records — an
//!    order-insensitive view of "what happened at t".
//! 2. **Shadow execution** ([`shadow_check`]): the same simulation is
//!    re-executed with a seeded *channel permutation* of the tie order
//!    (`Simulator::permute_tie_order`) — cross-timestamp order untouched,
//!    each (source → destination) channel's FIFO order untouched, but the
//!    interleaving of distinct channels within a timestamp shuffled. Same-
//!    channel order is program order (a happens-before edge, like a FIFO
//!    stream's byte order); cross-channel tie order is exactly the thing
//!    no handler may depend on. If all tied handlers commute, the
//!    canonical trace and every [`crate::sim::Component::state_digest`]
//!    must come out identical; the first divergence names the exact
//!    `(time, component, event type)` whose handlers raced.
//!
//! The feature is off by default and adds zero cost to the kernel hot path
//! when disabled (the tie-rank field and the recording branch are compiled
//! out).

use crate::event::{ComponentId, Endpoint};
use crate::sim::{RunOutcome, Simulator};
use crate::time::Time;

/// One canonicalized delivery record: `(component, port, payload type)`.
pub type CanonRec = (u32, u16, &'static str);

/// A tie-normalized trace: per distinct timestamp, the sorted set of
/// deliveries that executed at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonTrace {
    /// `(time, sorted deliveries at that time)`, in time order.
    pub sets: Vec<(Time, Vec<CanonRec>)>,
}

impl CanonTrace {
    /// Order-sensitive digest across tie-sets (order-insensitive within
    /// each): the "golden digest" two shadow runs must reproduce.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (t, recs) in &self.sets {
            fold(&t.as_ps().to_le_bytes());
            for (comp, port, ty) in recs {
                fold(&comp.to_le_bytes());
                fold(&port.to_le_bytes());
                fold(ty.as_bytes());
            }
        }
        h
    }
}

/// Groups deliveries into tie-sets as the kernel executes. Owned by the
/// simulator; see `Simulator::enable_tie_recording`.
#[derive(Debug, Default)]
pub struct TieRecorder {
    done: Vec<(Time, Vec<CanonRec>)>,
    cur_time: Option<Time>,
    cur: Vec<CanonRec>,
}

impl TieRecorder {
    pub(crate) fn new() -> Self {
        TieRecorder::default()
    }

    pub(crate) fn record(&mut self, time: Time, dst: Endpoint, type_name: &'static str) {
        self.record_raw(time, (dst.comp.index() as u32, dst.port.0, type_name));
    }

    /// Records an already-canonicalized delivery. Deliveries must arrive
    /// in non-decreasing time order (the kernel's execution order); used
    /// both by the hot path and by the parallel gather, which replays the
    /// time-merged per-shard records through the master recorder.
    pub(crate) fn record_raw(&mut self, time: Time, rec: CanonRec) {
        if self.cur_time != Some(time) {
            self.flush();
            self.cur_time = Some(time);
        }
        self.cur.push(rec);
    }

    /// Consumes the recorder, returning its raw `(time, deliveries)` sets
    /// in time order (deliveries within a set unsorted — sets are
    /// canonicalized by the consumer). Used to merge per-shard recorders
    /// back into the master after a parallel run.
    pub(crate) fn take_records(mut self) -> Vec<(Time, Vec<CanonRec>)> {
        if let Some(t) = self.cur_time.take() {
            let set = core::mem::take(&mut self.cur);
            self.done.push((t, set));
        }
        core::mem::take(&mut self.done)
    }

    fn flush(&mut self) {
        if let Some(t) = self.cur_time.take() {
            let mut set = core::mem::take(&mut self.cur);
            set.sort_unstable();
            self.done.push((t, set));
        }
    }

    /// The canonical trace recorded so far (cheap clone of the record
    /// vectors; intended for end-of-run comparison).
    pub(crate) fn canonical(&self) -> CanonTrace {
        let mut sets = self.done.clone();
        if let Some(t) = self.cur_time {
            let mut set = self.cur.clone();
            set.sort_unstable();
            sets.push((t, set));
        }
        CanonTrace { sets }
    }
}

/// Diagnosis of a sim-time race: the `(time, component, event type)` whose
/// same-timestamp handlers do not commute.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Timestamp of the tie-set where the runs diverged.
    pub time: Time,
    /// Component whose delivery record (or final state) diverged.
    pub comp: ComponentId,
    /// Registration name of that component.
    pub component: String,
    /// Payload type of the diverging delivery (or of the tied deliveries,
    /// for a state divergence).
    pub payload_type: String,
    /// Tie-order salt of the shadow run that exposed the race.
    pub salt: u64,
    /// What diverged: the canonical trace or a final state digest.
    pub detail: String,
    /// The last few spans recorded by the implicated component in the
    /// baseline run (empty unless span recording was enabled) — the causal
    /// history leading into the racing tie-set, not just delivery lines.
    pub recent_spans: Vec<String>,
}

impl core::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "sim-time race at {}: handlers of {} for [{}] do not commute under tie permutation \
             (salt {}): {}",
            self.time, self.component, self.payload_type, self.salt, self.detail
        )?;
        for line in &self.recent_spans {
            write!(f, "\n    span: {line}")?;
        }
        Ok(())
    }
}

/// Outcome of a clean [`shadow_check`]: the golden digest every permuted
/// run reproduced, plus how many tie-sets actually exercised a permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowOutcome {
    /// Digest of the tie-normalized canonical trace.
    pub golden_digest: u64,
    /// Tie-sets with more than one event (the ones a permutation can
    /// reorder). Zero means the check was vacuous.
    pub contended_ties: usize,
}

/// Runs `build` once under the FIFO tie rule (baseline) and once per salt
/// with a permuted tie order, then diffs the tie-normalized traces and the
/// per-component state digests.
///
/// `build` receives a fresh [`Simulator`] (already recording, with the
/// shadow permutation armed) and must register components and post the
/// initial events; `shadow_check` then drives each run to completion with
/// `Simulator::run`.
///
/// Returns the golden [`ShadowOutcome`] when every shadow run commutes, or
/// the first [`RaceReport`] naming the diverging
/// `(time, component, event type)`.
pub fn shadow_check<F>(seed: u64, salts: &[u64], build: F) -> Result<ShadowOutcome, RaceReport>
where
    F: Fn(&mut Simulator),
{
    let run = |salt: Option<u64>| -> (Simulator, CanonTrace, RunOutcome) {
        let mut sim = Simulator::new(seed);
        sim.enable_tie_recording();
        // When span tracing is compiled in, record it too so a diverging
        // run's RaceReport can show the causal history of the racing
        // component, not just its delivery lines.
        if crate::trace::COMPILED {
            sim.enable_spans(1 << 16);
        }
        if let Some(s) = salt {
            sim.permute_tie_order(s);
        }
        build(&mut sim);
        let outcome = sim.run();
        let trace = sim.tie_trace().expect("tie recording enabled");
        (sim, trace, outcome)
    };

    let (base_sim, base_trace, base_outcome) = run(None);
    let base_digests = base_sim.state_digests();
    for &salt in salts {
        let (sim, trace, outcome) = run(Some(salt));
        if let Some(report) = diff_traces(&base_sim, &base_trace, &trace, salt) {
            return Err(report);
        }
        if outcome != base_outcome {
            return Err(RaceReport {
                time: sim.now(),
                comp: ComponentId(0),
                component: "<run outcome>".into(),
                payload_type: format!("{base_outcome:?} vs {outcome:?}"),
                salt,
                detail: "permuted tie order changed how the run terminated".into(),
                recent_spans: Vec::new(),
            });
        }
        let digests = sim.state_digests();
        if let Some(report) = diff_digests(&base_sim, &base_trace, &base_digests, &digests, salt) {
            return Err(report);
        }
    }
    let contended_ties = base_trace.sets.iter().filter(|(_, s)| s.len() > 1).count();
    Ok(ShadowOutcome {
        golden_digest: base_trace.digest(),
        contended_ties,
    })
}

/// First divergence between two canonical traces, if any.
fn diff_traces(
    base_sim: &Simulator,
    base: &CanonTrace,
    shadow: &CanonTrace,
    salt: u64,
) -> Option<RaceReport> {
    let n = base.sets.len().min(shadow.sets.len());
    for i in 0..n {
        let (bt, bset) = &base.sets[i];
        let (st, sset) = &shadow.sets[i];
        if bt != st {
            // A whole tie-set moved in time: attribute to its first record.
            let &(comp, _, ty) = bset.first().or(sset.first())?;
            return Some(report_at(
                base_sim,
                *bt.min(st),
                comp,
                ty,
                salt,
                format!("tie-set #{i} executed at {bt} in the baseline but {st} in the shadow run"),
            ));
        }
        if bset != sset {
            // Same instant, different deliveries: name the first differing
            // record.
            let m = bset.len().min(sset.len());
            let idx = (0..m).find(|&j| bset[j] != sset[j]).unwrap_or(m);
            let &(comp, _, ty) = bset.get(idx).or(sset.get(idx))?;
            return Some(report_at(
                base_sim,
                *bt,
                comp,
                ty,
                salt,
                format!("deliveries at {bt} differ between baseline and shadow run (record {idx})"),
            ));
        }
    }
    if base.sets.len() != shadow.sets.len() {
        let (t, set) = base
            .sets
            .get(n)
            .or(shadow.sets.get(n))
            .expect("length mismatch implies an extra set");
        let &(comp, _, ty) = set.first()?;
        return Some(report_at(
            base_sim,
            *t,
            comp,
            ty,
            salt,
            format!(
                "run lengths differ: {} tie-sets vs {}",
                base.sets.len(),
                shadow.sets.len()
            ),
        ));
    }
    None
}

/// First per-component state divergence, attributed to the last contended
/// tie-set that delivered to the diverging component.
fn diff_digests(
    base_sim: &Simulator,
    base_trace: &CanonTrace,
    base: &[(ComponentId, u64)],
    shadow: &[(ComponentId, u64)],
    salt: u64,
) -> Option<RaceReport> {
    for ((bc, bd), (_, sd)) in base.iter().zip(shadow) {
        if bd != sd {
            // The trace matched, so the divergence came from handler
            // ordering inside a contended tie-set addressed to this
            // component; name the last such set.
            let hit = base_trace.sets.iter().rev().find_map(|(t, set)| {
                if set.len() < 2 {
                    return None;
                }
                set.iter()
                    .find(|&&(c, _, _)| c == bc.index() as u32)
                    .map(|&(c, _, ty)| (*t, c, ty))
            });
            let (time, comp, ty) = hit.unwrap_or((Time::ZERO, bc.index() as u32, "<unknown>"));
            return Some(report_at(
                base_sim,
                time,
                comp,
                ty,
                salt,
                format!("final state digest diverged: {bd:#018x} vs {sd:#018x}"),
            ));
        }
    }
    None
}

fn report_at(
    sim: &Simulator,
    time: Time,
    comp: u32,
    payload_type: &str,
    salt: u64,
    detail: String,
) -> RaceReport {
    let comp = ComponentId(comp);
    RaceReport {
        time,
        comp,
        component: sim.name(comp).to_string(),
        payload_type: payload_type.to_string(),
        salt,
        detail,
        recent_spans: sim.span_tail(comp, 8),
    }
}

// Re-exported for fixture components in tests and downstream crates that
// implement `state_digest` by hashing a few fields. The definition lives
// in the always-compiled [`crate::digest`] module.
pub use crate::digest::fnv_fold;
