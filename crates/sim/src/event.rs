//! Events, payloads and component addressing.
//!
//! Every interaction in the simulation is an event: a typed payload
//! delivered to a `(component, port)` pair at a simulated instant. Payloads
//! are type-erased so that crates layered above the kernel (network, memory,
//! protocol engines, ...) can define their own message types without the
//! kernel knowing about them.
//!
//! Payloads use a small-value optimization: values of at most
//! [`INLINE_PAYLOAD_WORDS`] machine words (and word alignment) are stored
//! inline in the `Payload` itself, so the dominant event types — timer
//! ticks, acknowledgements, completion records, chunk descriptors holding a
//! refcounted `Bytes` — never touch the allocator on the hot path. Larger
//! or over-aligned values fall back to boxing. The typed-downcast API is
//! identical for both representations.

use core::any::{Any, TypeId};
use core::fmt;
use core::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

/// Number of machine words a payload value may occupy and still be stored
/// inline (without boxing).
pub const INLINE_PAYLOAD_WORDS: usize = 3;

/// Identifies a component registered with the simulator.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// Raw index of this component in the simulator registry.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a registry index, for exporters that persist
    /// component indices (e.g. trace snapshots) and need to look names
    /// back up. Indices are only meaningful against the same simulator.
    pub const fn from_index(i: usize) -> ComponentId {
        ComponentId(i as u32)
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies one input port of a component.
///
/// Ports let a single component expose several logical interfaces — e.g. the
/// CCLO data-movement processor has separate ports for microcode input and
/// datapath acknowledgements — mirroring how a hardware block has distinct
/// AXI-Stream interfaces.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

impl PortId {
    /// The default port for components with a single interface.
    pub const DEFAULT: PortId = PortId(0);
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A `(component, port)` destination for events.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Target component.
    pub comp: ComponentId,
    /// Target port on that component.
    pub port: PortId,
}

impl Endpoint {
    /// Creates an endpoint addressing `port` of `comp`.
    pub const fn new(comp: ComponentId, port: PortId) -> Self {
        Endpoint { comp, port }
    }

    /// Endpoint for the default port of `comp`.
    pub const fn of(comp: ComponentId) -> Self {
        Endpoint {
            comp,
            port: PortId::DEFAULT,
        }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}.{:?}", self.comp, self.port)
    }
}

/// Per-type metadata for inline payloads, promoted to a `'static` constant
/// per monomorphization so an [`InlineValue`] carries a single pointer of
/// runtime type information.
struct PayloadMeta {
    type_id: fn() -> TypeId,
    type_name: fn() -> &'static str,
    drop_fn: unsafe fn(*mut u8),
    /// Clones the stored value from `src` into `dst` (both valid, aligned
    /// `T` slots). Present only for payloads built via
    /// [`Payload::cloneable`]; `Payload::new` cannot observe `T: Clone`.
    clone_fn: Option<unsafe fn(*const u8, *mut u8)>,
}

trait HasPayloadMeta {
    const META: PayloadMeta;
}

impl<T: 'static> HasPayloadMeta for T {
    const META: PayloadMeta = PayloadMeta {
        type_id: TypeId::of::<T>,
        type_name: core::any::type_name::<T>,
        drop_fn: drop_in_place_erased::<T>,
        clone_fn: None,
    };
}

trait HasCloneablePayloadMeta {
    const META: PayloadMeta;
}

impl<T: 'static + Clone> HasCloneablePayloadMeta for T {
    const META: PayloadMeta = PayloadMeta {
        type_id: TypeId::of::<T>,
        type_name: core::any::type_name::<T>,
        drop_fn: drop_in_place_erased::<T>,
        clone_fn: Some(clone_in_place_erased::<T>),
    };
}

/// Inline storage for small payload values: raw word-aligned bytes plus a
/// pointer to just enough runtime type information to check, drop and move
/// out the stored value.
///
/// Invariants (upheld by [`Payload::new`]):
/// - `buf` holds a valid `T` with `meta == &<T as HasPayloadMeta>::META`,
///   `size_of::<T>() <= INLINE_PAYLOAD_WORDS * word` and
///   `align_of::<T>() <= align_of::<usize>()`;
/// - `T: Send`, so the auto-derived `Send` for the raw storage is sound.
struct InlineValue {
    buf: MaybeUninit<[usize; INLINE_PAYLOAD_WORDS]>,
    meta: &'static PayloadMeta,
}

unsafe fn drop_in_place_erased<T>(p: *mut u8) {
    unsafe { core::ptr::drop_in_place(p.cast::<T>()) }
}

unsafe fn clone_in_place_erased<T: Clone>(src: *const u8, dst: *mut u8) {
    unsafe { dst.cast::<T>().write((*src.cast::<T>()).clone()) }
}

fn clone_boxed_erased<T: Any + Send + Clone>(v: &(dyn Any + Send)) -> Payload {
    Payload::cloneable(
        v.downcast_ref::<T>()
            .expect("boxed clone fn called on wrong type")
            .clone(),
    )
}

impl InlineValue {
    /// Whether a `T` qualifies for inline storage.
    const fn fits<T>() -> bool {
        size_of::<T>() <= INLINE_PAYLOAD_WORDS * size_of::<usize>()
            && align_of::<T>() <= align_of::<usize>()
    }

    fn new<T: Any + Send>(value: T) -> InlineValue {
        InlineValue::with_meta(value, &<T as HasPayloadMeta>::META)
    }

    fn new_cloneable<T: Any + Send + Clone>(value: T) -> InlineValue {
        InlineValue::with_meta(value, &<T as HasCloneablePayloadMeta>::META)
    }

    fn with_meta<T: Any + Send>(value: T, meta: &'static PayloadMeta) -> InlineValue {
        debug_assert!(InlineValue::fits::<T>());
        let mut buf = MaybeUninit::<[usize; INLINE_PAYLOAD_WORDS]>::uninit();
        // SAFETY: `fits` guarantees size and alignment; the value is moved
        // into the buffer and ownership is tracked by `InlineValue`'s Drop.
        unsafe { buf.as_mut_ptr().cast::<T>().write(value) };
        InlineValue { buf, meta }
    }

    /// Clones the stored value into a fresh `InlineValue`, if the stored
    /// type registered a clone fn (built via [`Payload::cloneable`]).
    fn try_clone(&self) -> Option<InlineValue> {
        let clone_fn = self.meta.clone_fn?;
        let mut buf = MaybeUninit::<[usize; INLINE_PAYLOAD_WORDS]>::uninit();
        // SAFETY: `clone_fn` matches the stored type per invariants; the
        // destination buffer has the same size/alignment as the source.
        unsafe {
            clone_fn(
                self.buf.as_ptr().cast::<u8>(),
                buf.as_mut_ptr().cast::<u8>(),
            )
        };
        Some(InlineValue {
            buf,
            meta: self.meta,
        })
    }

    fn is<T: Any>(&self) -> bool {
        // Same monomorphization usually means the same promoted META
        // constant; the pointer comparison is the hot-path win and the
        // `TypeId` call covers duplicate instantiations across codegen
        // units.
        core::ptr::eq(self.meta, &<T as HasPayloadMeta>::META)
            || (self.meta.type_id)() == TypeId::of::<T>()
    }

    fn peek<T: Any>(&self) -> Option<&T> {
        // SAFETY: type checked; buffer holds a valid `T` per invariants.
        self.is::<T>()
            .then(|| unsafe { &*self.buf.as_ptr().cast::<T>() })
    }

    /// Moves the stored value out. Caller must have checked `is::<T>()`.
    fn take<T: Any>(self) -> T {
        debug_assert!(self.is::<T>());
        let this = ManuallyDrop::new(self);
        // SAFETY: type checked by the caller; `ManuallyDrop` suppresses the
        // destructor so the value is not dropped after being read out.
        unsafe { this.buf.as_ptr().cast::<T>().read() }
    }
}

impl Drop for InlineValue {
    fn drop(&mut self) {
        // SAFETY: `drop_fn` matches the stored type per invariants.
        unsafe { (self.meta.drop_fn)(self.buf.as_mut_ptr().cast::<u8>()) }
    }
}

enum Repr {
    Inline(InlineValue),
    Boxed(Box<dyn Any + Send>, &'static str, BoxedCloneFn),
}

/// Clone hook for boxed payloads; `None` unless built via
/// [`Payload::cloneable`].
type BoxedCloneFn = Option<fn(&(dyn Any + Send)) -> Payload>;

/// A type-erased event payload.
///
/// Producers construct payloads from any `'static + Send` value; consumers
/// recover the concrete type with [`Payload::downcast`] (consuming) or
/// [`Payload::peek`] (borrowing). Downcasting to the wrong type is a
/// programming error and panics with the expected/actual type names, which
/// in practice pinpoints mis-wired endpoints immediately.
///
/// Values of at most [`INLINE_PAYLOAD_WORDS`] words are stored inline
/// (no allocation); larger values are boxed. The distinction is not
/// observable through the API.
pub struct Payload {
    repr: Repr,
}

impl Payload {
    /// Wraps `value` into a type-erased payload.
    #[inline]
    pub fn new<T: Any + Send>(value: T) -> Self {
        let repr = if InlineValue::fits::<T>() {
            Repr::Inline(InlineValue::new(value))
        } else {
            Repr::Boxed(Box::new(value), core::any::type_name::<T>(), None)
        };
        Payload { repr }
    }

    /// Wraps `value` into a type-erased payload that supports
    /// [`Payload::try_clone`]. Behaves identically to [`Payload::new`]
    /// otherwise; the extra `Clone` bound registers a type-erased clone
    /// hook (used e.g. by fault injection to duplicate frames in flight).
    #[inline]
    pub fn cloneable<T: Any + Send + Clone>(value: T) -> Self {
        let repr = if InlineValue::fits::<T>() {
            Repr::Inline(InlineValue::new_cloneable(value))
        } else {
            Repr::Boxed(
                Box::new(value),
                core::any::type_name::<T>(),
                Some(clone_boxed_erased::<T>),
            )
        };
        Payload { repr }
    }

    /// Deep-clones the payload, if it was built via [`Payload::cloneable`].
    /// Returns `None` for payloads without a registered clone hook.
    pub fn try_clone(&self) -> Option<Payload> {
        match &self.repr {
            Repr::Inline(v) => v.try_clone().map(|v| Payload {
                repr: Repr::Inline(v),
            }),
            Repr::Boxed(b, _, clone_fn) => clone_fn.map(|f| f(&**b)),
        }
    }

    /// Whether [`Payload::try_clone`] would succeed.
    pub fn is_cloneable(&self) -> bool {
        match &self.repr {
            Repr::Inline(v) => v.meta.clone_fn.is_some(),
            Repr::Boxed(_, _, clone_fn) => clone_fn.is_some(),
        }
    }

    /// The `type_name` of the wrapped value (for diagnostics/tracing).
    pub fn type_name(&self) -> &'static str {
        match &self.repr {
            Repr::Inline(v) => (v.meta.type_name)(),
            Repr::Boxed(_, name, _) => name,
        }
    }

    /// Whether the wrapped value is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Recovers the concrete payload value.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a `T`, naming both types.
    #[inline]
    pub fn downcast<T: Any>(self) -> T {
        match self.try_downcast::<T>() {
            Ok(v) => v,
            Err(p) => panic!(
                "payload downcast failed: expected {}, got {}",
                core::any::type_name::<T>(),
                p.type_name()
            ),
        }
    }

    /// Attempts to recover the concrete payload value, returning `self` back on mismatch.
    #[inline]
    pub fn try_downcast<T: Any>(self) -> Result<T, Payload> {
        match self.repr {
            Repr::Inline(v) if v.is::<T>() => Ok(v.take()),
            Repr::Boxed(b, name, clone_fn) => match b.downcast::<T>() {
                Ok(b) => Ok(*b),
                Err(inner) => Err(Payload {
                    repr: Repr::Boxed(inner, name, clone_fn),
                }),
            },
            repr => Err(Payload { repr }),
        }
    }

    /// Borrows the payload as a `T` if it is one.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        match &self.repr {
            Repr::Inline(v) => v.peek::<T>(),
            Repr::Boxed(b, _, _) => b.downcast_ref::<T>(),
        }
    }

    /// Whether the wrapped value is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        match &self.repr {
            Repr::Inline(v) => v.is::<T>(),
            Repr::Boxed(b, _, _) => b.is::<T>(),
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload<{}>", self.type_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn payload_downcast_roundtrip() {
        let p = Payload::new(42u32);
        assert!(p.is::<u32>());
        assert_eq!(p.peek::<u32>(), Some(&42));
        assert_eq!(p.downcast::<u32>(), 42);
    }

    #[test]
    fn payload_try_downcast_returns_self_on_mismatch() {
        let p = Payload::new("hello");
        let p = p.try_downcast::<u64>().unwrap_err();
        assert_eq!(p.downcast::<&'static str>(), "hello");
    }

    #[test]
    #[should_panic(expected = "payload downcast failed")]
    fn payload_downcast_panics_with_types() {
        Payload::new(1u8).downcast::<u16>();
    }

    #[test]
    fn small_values_are_inline_large_are_boxed() {
        assert!(Payload::new(7u64).is_inline());
        assert!(Payload::new(()).is_inline());
        assert!(Payload::new([0usize; INLINE_PAYLOAD_WORDS]).is_inline());
        // One word over the threshold: boxed.
        assert!(!Payload::new([0usize; INLINE_PAYLOAD_WORDS + 1]).is_inline());
        // Over-aligned: boxed even though it fits by size.
        #[repr(align(32))]
        struct OverAligned(#[allow(dead_code)] u8);
        assert!(!Payload::new(OverAligned(1)).is_inline());
        assert_eq!(Payload::new(OverAligned(9)).downcast::<OverAligned>().0, 9);
    }

    #[test]
    fn inline_and_boxed_have_identical_api_behaviour() {
        let small = Payload::new(5u16);
        let large = Payload::new([5u64; 8]);
        assert!(small.is::<u16>() && !small.is::<u64>());
        assert!(large.is::<[u64; 8]>());
        assert_eq!(small.peek::<u16>(), Some(&5));
        assert_eq!(large.peek::<[u64; 8]>(), Some(&[5u64; 8]));
        assert!(small.try_downcast::<u64>().is_err());
        assert_eq!(large.downcast::<[u64; 8]>(), [5u64; 8]);
    }

    #[test]
    fn inline_payloads_drop_their_value_exactly_once() {
        struct Canary(Arc<AtomicU32>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU32::new(0));

        // Dropped without downcast.
        let p = Payload::new(Canary(Arc::clone(&drops)));
        assert!(p.is_inline(), "Canary should fit inline");
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 1);

        // Moved out via downcast: dropped once by the caller.
        let p = Payload::new(Canary(Arc::clone(&drops)));
        let c = p.downcast::<Canary>();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(c);
        assert_eq!(drops.load(Ordering::SeqCst), 2);

        // Failed try_downcast keeps the value alive in the returned payload.
        let p = Payload::new(Canary(Arc::clone(&drops)));
        let p = p.try_downcast::<u32>().unwrap_err();
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cloneable_payloads_clone_inline_and_boxed() {
        // Inline.
        let p = Payload::cloneable(31u64);
        assert!(p.is_inline() && p.is_cloneable());
        let q = p.try_clone().expect("inline clone");
        assert_eq!(p.downcast::<u64>(), 31);
        assert_eq!(q.downcast::<u64>(), 31);
        // Boxed.
        let p = Payload::cloneable([3u64; 16]);
        assert!(!p.is_inline() && p.is_cloneable());
        let q = p.try_clone().expect("boxed clone");
        assert_eq!(q.downcast::<[u64; 16]>(), [3u64; 16]);
        assert_eq!(p.downcast::<[u64; 16]>(), [3u64; 16]);
    }

    #[test]
    fn plain_payloads_are_not_cloneable() {
        assert!(!Payload::new(7u32).is_cloneable());
        assert!(Payload::new(7u32).try_clone().is_none());
        assert!(Payload::new([0u64; 8]).try_clone().is_none());
    }

    #[test]
    fn cloned_payloads_drop_independently() {
        #[derive(Clone)]
        struct Canary(Arc<AtomicU32>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU32::new(0));
        let p = Payload::cloneable(Canary(Arc::clone(&drops)));
        let q = p.try_clone().expect("clone");
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(q);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }
}
