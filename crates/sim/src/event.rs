//! Events, payloads and component addressing.
//!
//! Every interaction in the simulation is an event: a typed payload
//! delivered to a `(component, port)` pair at a simulated instant. Payloads
//! are type-erased so that crates layered above the kernel (network, memory,
//! protocol engines, ...) can define their own message types without the
//! kernel knowing about them.

use core::any::Any;
use core::fmt;

use crate::time::Time;

/// Identifies a component registered with the simulator.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// Raw index of this component in the simulator registry.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies one input port of a component.
///
/// Ports let a single component expose several logical interfaces — e.g. the
/// CCLO data-movement processor has separate ports for microcode input and
/// datapath acknowledgements — mirroring how a hardware block has distinct
/// AXI-Stream interfaces.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

impl PortId {
    /// The default port for components with a single interface.
    pub const DEFAULT: PortId = PortId(0);
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A `(component, port)` destination for events.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Target component.
    pub comp: ComponentId,
    /// Target port on that component.
    pub port: PortId,
}

impl Endpoint {
    /// Creates an endpoint addressing `port` of `comp`.
    pub const fn new(comp: ComponentId, port: PortId) -> Self {
        Endpoint { comp, port }
    }

    /// Endpoint for the default port of `comp`.
    pub const fn of(comp: ComponentId) -> Self {
        Endpoint {
            comp,
            port: PortId::DEFAULT,
        }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}.{:?}", self.comp, self.port)
    }
}

/// A type-erased event payload.
///
/// Producers construct payloads from any `'static + Send` value; consumers
/// recover the concrete type with [`Payload::downcast`] (consuming) or
/// [`Payload::peek`] (borrowing). Downcasting to the wrong type is a
/// programming error and panics with the expected/actual type names, which
/// in practice pinpoints mis-wired endpoints immediately.
pub struct Payload {
    inner: Box<dyn Any + Send>,
    type_name: &'static str,
}

impl Payload {
    /// Wraps `value` into a type-erased payload.
    pub fn new<T: Any + Send>(value: T) -> Self {
        Payload {
            inner: Box::new(value),
            type_name: core::any::type_name::<T>(),
        }
    }

    /// The `type_name` of the wrapped value (for diagnostics/tracing).
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    /// Recovers the concrete payload value.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a `T`, naming both types.
    pub fn downcast<T: Any>(self) -> T {
        match self.inner.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "payload downcast failed: expected {}, got {}",
                core::any::type_name::<T>(),
                self.type_name
            ),
        }
    }

    /// Attempts to recover the concrete payload value, returning `self` back on mismatch.
    pub fn try_downcast<T: Any>(self) -> Result<T, Payload> {
        let type_name = self.type_name;
        match self.inner.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(inner) => Err(Payload { inner, type_name }),
        }
    }

    /// Borrows the payload as a `T` if it is one.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.inner.downcast_ref::<T>()
    }

    /// Whether the wrapped value is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.inner.is::<T>()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload<{}>", self.type_name)
    }
}

/// An event scheduled for execution: `payload` delivered to `dst` at `time`.
pub(crate) struct Scheduled {
    pub time: Time,
    /// Monotone sequence number breaking ties between simultaneous events;
    /// this makes the execution order total and the simulation deterministic.
    pub seq: u64,
    pub dst: Endpoint,
    pub payload: Payload,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn payload_downcast_roundtrip() {
        let p = Payload::new(42u32);
        assert!(p.is::<u32>());
        assert_eq!(p.peek::<u32>(), Some(&42));
        assert_eq!(p.downcast::<u32>(), 42);
    }

    #[test]
    fn payload_try_downcast_returns_self_on_mismatch() {
        let p = Payload::new("hello");
        let p = p.try_downcast::<u64>().unwrap_err();
        assert_eq!(p.downcast::<&'static str>(), "hello");
    }

    #[test]
    #[should_panic(expected = "payload downcast failed")]
    fn payload_downcast_panics_with_types() {
        Payload::new(1u8).downcast::<u16>();
    }

    #[test]
    fn scheduled_orders_by_time_then_seq() {
        let ep = Endpoint::of(ComponentId(0));
        let mk = |time, seq| Scheduled {
            time: Time::from_ps(time),
            seq,
            dst: ep,
            payload: Payload::new(()),
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(10, 2));
        heap.push(mk(5, 3));
        heap.push(mk(10, 1));
        heap.push(mk(5, 0));
        let order: Vec<(u64, u64)> = core::iter::from_fn(|| heap.pop())
            .map(|s| (s.time.as_ps(), s.seq))
            .collect();
        assert_eq!(order, vec![(5, 0), (5, 3), (10, 1), (10, 2)]);
    }
}
