//! Causal span tracing: sim-time spans with parent-child causality,
//! recorded into a bounded ring with stable, deterministic ids.
//!
//! The paper's evaluation is built on latency *attribution* (Fig. 9's
//! PCIe-vs-collective breakdown, Fig. 8/13's invocation penalties). This
//! module is the measurement substrate: components open spans
//! ([`crate::sim::Ctx::span_begin`] / [`crate::sim::Ctx::span_end`]), link
//! them causally by carrying a [`SpanId`] in payloads, and attach typed
//! [`AttrValue`] attributes. A single collective then yields a complete
//! multi-rank timeline exportable as Chrome/Perfetto `trace_event` JSON
//! ([`chrome_trace_json`]) or summarized into a latency-breakdown table
//! ([`span_breakdown`]).
//!
//! # Determinism contract
//!
//! Recording is read-only observation: it never schedules events, draws
//! randomness, or perturbs the timeline. Span ids are *content-derived* —
//! FNV-1a over `(component, span name, parent id, per-(component, name,
//! parent) ordinal)` — not allocation-order counters, so ids and
//! timestamps replay bit-identically across `QueueKind` A/B and across
//! the race detector's tie-order permutations (two tied handlers may swap
//! execution order, but each span keeps the id derived from its causal
//! position, not from global arrival order at the component). The whole module
//! is integer-only in sim-visible paths and passes `accl-lint`.
//!
//! # Overhead contract
//!
//! The `trace` cargo feature gates all recording. [`COMPILED`] is `false`
//! without the feature, every recording entry point starts with a
//! `const`-foldable `if !COMPILED { return }`, and the [`trace_span!`] /
//! [`trace_instant!`] macros do not even evaluate their attribute
//! arguments — the instrumented hot paths compile to exactly the
//! uninstrumented code (guarded by the `micro_simcore` bench). With the
//! feature on but recording not enabled ([`crate::sim::Simulator::enable_spans`]
//! not called), the cost is one branch per call site.

use std::collections::BTreeMap;

use crate::event::ComponentId;
use crate::time::{Dur, Time};

/// Whether span recording is compiled into this build (the `trace` cargo
/// feature). When `false`, every recording entry point is a no-op the
/// optimizer removes entirely.
pub const COMPILED: bool = cfg!(feature = "trace");

/// Identity of one span. `SpanId::NONE` (zero) means "no span" — the
/// parent of a root span, or any id produced while tracing is disabled.
///
/// Ids are deterministic: FNV-1a of the recording component, the span
/// name, the parent id, and the ordinal of that `(component, name,
/// parent)` triple — see the module docs. Payload structs carry a
/// `SpanId` to hand causality across component boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of roots; produced when tracing is off).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Identity of one cross-component *flow edge*: an explicit causal arrow
/// from a producing span (Tx side of a handoff) to the consuming span (Rx
/// side), carried through payloads exactly like a [`SpanId`]. Flow ids are
/// derived by the same content-derived FNV machinery as span ids, so they
/// replay bit-identically; `FlowId::NONE` (zero) means "no flow" and is
/// what every emission returns while tracing is disabled.
///
/// Flows exist because parent links alone cannot express a *join*: the
/// receive-side span of a Tx→Rx handoff has the wire span as its parent,
/// but when the handoff crosses ranks (or shards of a parallel run) the
/// consumer may also causally depend on state owned by another chain.
/// Emit with [`crate::sim::Ctx::flow_begin`], join with
/// [`crate::sim::Ctx::flow_end`]; exporters render them as Chrome `s`/`f`
/// flow arrows and `accl-obs` treats them as extra DAG edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u64);

impl FlowId {
    /// The absent flow (produced when tracing is off).
    pub const NONE: FlowId = FlowId(0);

    /// Whether this is [`FlowId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// A typed attribute value. Deliberately float-free: attributes ride in
/// sim-visible code and must not introduce platform-dependent rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned quantity (counts, lengths, ranks, tickets).
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A static label (op names, protocol names).
    Str(&'static str),
    /// A byte count (rendered with a unit by exporters).
    Bytes(u64),
    /// A duration.
    Dur(Dur),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<u16> for AttrValue {
    fn from(v: u16) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

impl From<Dur> for AttrValue {
    fn from(v: Dur) -> Self {
        AttrValue::Dur(v)
    }
}

/// One `key = value` span attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name.
    pub key: &'static str,
    /// Attribute value.
    pub value: AttrValue,
}

/// What a [`SpanEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanEventKind {
    /// A span opened at `time`.
    Begin,
    /// A span closed at `time`.
    End,
    /// A point event (no duration).
    Instant,
    /// A flow edge departed: `id` is the [`FlowId`] (as a raw u64),
    /// `parent` the producing span it is anchored to.
    FlowBegin,
    /// A flow edge arrived: `id` is the [`FlowId`], `parent` the
    /// consuming span it joins into.
    FlowEnd,
}

/// One record in the span ring: a span opening, closing, or a point event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Simulated time of the event. Interval spans recorded via
    /// [`crate::sim::Ctx::span_interval`] may carry times in the simulated
    /// future (a pipe reservation's end); exporters sort by time.
    pub time: Time,
    /// Whether this opens, closes, or marks.
    pub kind: SpanEventKind,
    /// The span's id (`Begin`/`End` pairs share it; instants get their own).
    pub id: SpanId,
    /// Causal parent ([`SpanId::NONE`] for roots). Meaningful on
    /// `Begin`/`Instant`.
    pub parent: SpanId,
    /// Component that recorded the event.
    pub comp: ComponentId,
    /// Span name (`layer.stage` convention, e.g. `"uc.call"`).
    pub name: &'static str,
    /// Typed attributes attached at this event.
    pub attrs: Vec<Attr>,
}

/// The bounded span ring plus the deterministic id allocator. Owned by the
/// simulator; enabled via [`crate::sim::Simulator::enable_spans`].
#[derive(Debug, Default)]
pub struct SpanRecorder {
    enabled: bool,
    cap: usize,
    ring: Vec<SpanEvent>,
    /// Total events recorded (ring rotates at `recorded % cap`).
    recorded: u64,
    /// Per-(component, name, parent) ordinals feeding the id hash.
    ordinals: BTreeMap<(u32, &'static str, SpanId), u64>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl SpanRecorder {
    /// Enables recording into a ring of `capacity` events.
    pub(crate) fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "zero-capacity span ring");
        if !COMPILED {
            panic!("span recording requested but accl-sim was built without the `trace` feature");
        }
        if !self.enabled {
            self.enabled = true;
            self.cap = capacity;
            self.ring = Vec::with_capacity(capacity.min(4096));
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        COMPILED && self.enabled
    }

    /// Events recorded but evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.recorded.saturating_sub(self.ring.len() as u64)
    }

    /// Derives the deterministic id for the next `(comp, name, parent)`
    /// span. The parent participates in both the ordinal key and the hash
    /// so a span's id is a function of its *causal position* — the Nth
    /// `"net.queue"` child of one particular frame span — not of the
    /// global arrival order at the component. Same-timestamp events from
    /// different causes can then execute in any tie order without ids
    /// migrating between causal chains (the permuted-tie-order golden
    /// digest depends on this).
    fn next_id(&mut self, comp: ComponentId, name: &'static str, parent: SpanId) -> SpanId {
        let ord = self
            .ordinals
            .entry((comp.index() as u32, name, parent))
            .or_insert(0);
        *ord += 1;
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, &(comp.index() as u32).to_le_bytes());
        fnv1a(&mut h, name.as_bytes());
        fnv1a(&mut h, &parent.0.to_le_bytes());
        fnv1a(&mut h, &ord.to_le_bytes());
        // Zero is reserved for NONE; remix the (astronomically unlikely)
        // collision instead of emitting it.
        SpanId(if h == 0 { FNV_PRIME } else { h })
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.ring.len() < self.cap {
            self.ring.push(ev);
        } else {
            let idx = (self.recorded as usize) % self.cap;
            self.ring[idx] = ev;
        }
        self.recorded += 1;
    }

    /// Records a span opening at `time`; returns its id.
    pub(crate) fn begin(
        &mut self,
        time: Time,
        comp: ComponentId,
        name: &'static str,
        parent: SpanId,
        attrs: &[Attr],
    ) -> SpanId {
        if !COMPILED || !self.enabled {
            return SpanId::NONE;
        }
        let id = self.next_id(comp, name, parent);
        self.push(SpanEvent {
            time,
            kind: SpanEventKind::Begin,
            id,
            parent,
            comp,
            name,
            attrs: attrs.to_vec(),
        });
        id
    }

    /// Records a span closing at `time`. No-op for [`SpanId::NONE`].
    pub(crate) fn end(&mut self, time: Time, comp: ComponentId, id: SpanId, attrs: &[Attr]) {
        if !COMPILED || !self.enabled || id.is_none() {
            return;
        }
        self.push(SpanEvent {
            time,
            kind: SpanEventKind::End,
            id,
            parent: SpanId::NONE,
            comp,
            name: "",
            attrs: attrs.to_vec(),
        });
    }

    /// Records a point event at `time`.
    pub(crate) fn instant(
        &mut self,
        time: Time,
        comp: ComponentId,
        name: &'static str,
        parent: SpanId,
        attrs: &[Attr],
    ) {
        if !COMPILED || !self.enabled {
            return;
        }
        let id = self.next_id(comp, name, parent);
        self.push(SpanEvent {
            time,
            kind: SpanEventKind::Instant,
            id,
            parent,
            comp,
            name,
            attrs: attrs.to_vec(),
        });
    }

    /// Records the departure side of a cross-component flow edge at
    /// `time`, anchored to the producing span `from`; returns the
    /// deterministic [`FlowId`] to carry in the payload. The id is derived
    /// by the same `(component, name, anchor)` ordinal hash as span ids,
    /// so it replays bit-identically and never collides with `NONE`.
    pub(crate) fn flow_begin(
        &mut self,
        time: Time,
        comp: ComponentId,
        name: &'static str,
        from: SpanId,
    ) -> FlowId {
        if !COMPILED || !self.enabled {
            return FlowId::NONE;
        }
        let id = self.next_id(comp, name, from);
        self.push(SpanEvent {
            time,
            kind: SpanEventKind::FlowBegin,
            id,
            parent: from,
            comp,
            name,
            attrs: Vec::new(),
        });
        FlowId(id.0)
    }

    /// Records the arrival side of a flow edge at `time`, joining it into
    /// the consuming span `to`. No-op for [`FlowId::NONE`] (the edge was
    /// emitted while tracing was off, or never emitted).
    pub(crate) fn flow_end(
        &mut self,
        time: Time,
        comp: ComponentId,
        name: &'static str,
        flow: FlowId,
        to: SpanId,
    ) {
        if !COMPILED || !self.enabled || flow.is_none() {
            return;
        }
        self.push(SpanEvent {
            time,
            kind: SpanEventKind::FlowEnd,
            id: SpanId(flow.0),
            parent: to,
            comp,
            name,
            attrs: Vec::new(),
        });
    }

    /// Records a complete `[start, end]` span in one call (e.g. a pipe
    /// reservation whose end is already known); returns its id.
    pub(crate) fn interval(
        &mut self,
        comp: ComponentId,
        name: &'static str,
        parent: SpanId,
        start: Time,
        end: Time,
        attrs: &[Attr],
    ) -> SpanId {
        if !COMPILED || !self.enabled {
            return SpanId::NONE;
        }
        debug_assert!(end >= start, "inverted span interval");
        let id = self.begin(start, comp, name, parent, attrs);
        self.end(end, comp, id, &[]);
        id
    }

    /// The surviving ring contents, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        if self.ring.len() < self.cap || self.cap == 0 {
            self.ring.clone()
        } else {
            let split = (self.recorded as usize) % self.cap;
            let mut out = self.ring[split..].to_vec();
            out.extend_from_slice(&self.ring[..split]);
            out
        }
    }

    /// Splits off a recorder for partition `p` of a parallel run: same
    /// enablement and capacity, an empty ring, and ownership of the
    /// ordinal streams of every component assigned to `p` (moved, not
    /// copied, so a span's deterministic id does not depend on whether it
    /// was recorded sequentially or inside a shard). The shard recorders
    /// are merged back with [`SpanRecorder::absorb_shards`].
    pub(crate) fn fork_for_partition(&mut self, p: u32, partition_of: &[u32]) -> SpanRecorder {
        let mut ordinals = BTreeMap::new();
        if self.enabled {
            let keys: Vec<(u32, &'static str, SpanId)> = self
                .ordinals
                .keys()
                .filter(|(comp, _, _)| partition_of.get(*comp as usize) == Some(&p))
                .copied()
                .collect();
            for k in keys {
                if let Some(v) = self.ordinals.remove(&k) {
                    ordinals.insert(k, v);
                }
            }
        }
        SpanRecorder {
            enabled: self.enabled,
            cap: self.cap,
            ring: Vec::new(),
            recorded: 0,
            ordinals,
        }
    }

    /// Merges shard recorders (in partition order) back into the master
    /// after a parallel run: ordinal streams return home, and the ring is
    /// rebuilt as the globally newest `cap` events of the time-merged
    /// union — the same events a generously sized sequential ring would
    /// retain. The merge reads only partition order and simulated time,
    /// never thread scheduling, so the result is deterministic and
    /// independent of the worker count.
    pub(crate) fn absorb_shards(&mut self, shards: Vec<SpanRecorder>) {
        if !self.enabled {
            return;
        }
        let mut events = self.events();
        for shard in shards {
            events.extend(shard.events());
            self.recorded += shard.recorded;
            for (k, v) in shard.ordinals {
                let slot = self.ordinals.entry(k).or_insert(0);
                *slot = (*slot).max(v);
            }
        }
        // Stable by time: ties keep (master, partition-order) insertion
        // order, a pure function of the simulation.
        events.sort_by_key(|e| e.time);
        if events.len() > self.cap {
            events.drain(..events.len() - self.cap);
        }
        if events.len() < self.cap {
            self.ring = events;
        } else {
            // `events()` unwraps the ring at `recorded % cap`; store the
            // chronological tail rotated so that unwrap reproduces it.
            let split = (self.recorded as usize) % self.cap;
            let mut ring = events.split_off(events.len() - split);
            ring.append(&mut events);
            self.ring = ring;
        }
    }
}

/// Opens a span (with optional `key = value` attributes) through a
/// [`crate::sim::Ctx`], evaluating nothing when tracing is compiled out.
///
/// ```ignore
/// let sp = trace_span!(ctx, "uc.call", parent_id, "op" = "allreduce", "len" = len);
/// ```
#[macro_export]
macro_rules! trace_span {
    ($ctx:expr, $name:expr, $parent:expr) => {
        if $crate::trace::COMPILED {
            $ctx.span_begin($name, $parent)
        } else {
            $crate::trace::SpanId::NONE
        }
    };
    ($ctx:expr, $name:expr, $parent:expr, $($key:literal = $val:expr),+ $(,)?) => {
        if $crate::trace::COMPILED {
            $ctx.span_begin_attrs(
                $name,
                $parent,
                &[$($crate::trace::Attr {
                    key: $key,
                    value: $crate::trace::AttrValue::from($val),
                }),+],
            )
        } else {
            $crate::trace::SpanId::NONE
        }
    };
}

/// Closes a span opened by [`trace_span!`]. Compiles away with the ring.
#[macro_export]
macro_rules! trace_end {
    ($ctx:expr, $id:expr) => {
        if $crate::trace::COMPILED {
            $ctx.span_end($id);
        }
    };
    ($ctx:expr, $id:expr, at: $time:expr) => {
        if $crate::trace::COMPILED {
            $ctx.span_end_at($id, $time);
        }
    };
}

/// Records an instant (point) event, evaluating nothing when tracing is
/// compiled out.
#[macro_export]
macro_rules! trace_instant {
    ($ctx:expr, $name:expr, $parent:expr) => {
        if $crate::trace::COMPILED {
            $ctx.span_instant($name, $parent);
        }
    };
    ($ctx:expr, $name:expr, $parent:expr, $($key:literal = $val:expr),+ $(,)?) => {
        if $crate::trace::COMPILED {
            $ctx.span_instant_attrs(
                $name,
                $parent,
                &[$($crate::trace::Attr {
                    key: $key,
                    value: $crate::trace::AttrValue::from($val),
                }),+],
            );
        }
    };
}

/// Order-sensitive FNV-1a digest of a span event list, canonicalized by a
/// stable sort on `(time, name, id, kind)` so same-timestamp *record*
/// order does not matter — the "golden span digest" replay and
/// queue-A/B tests pin. It hashes ids and parents, so it is exact about
/// causal attachment; for invariance under the race detector's permuted
/// tie order use [`span_canon_digest`] instead.
pub fn span_digest(events: &[SpanEvent]) -> u64 {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.time, e.name, e.id, e.kind));
    let mut h = FNV_OFFSET;
    for e in sorted {
        fnv1a(&mut h, &e.time.as_ps().to_le_bytes());
        fnv1a(&mut h, &[e.kind as u8]);
        fnv1a(&mut h, &e.id.0.to_le_bytes());
        fnv1a(&mut h, &e.parent.0.to_le_bytes());
        fnv1a(&mut h, &(e.comp.index() as u32).to_le_bytes());
        fnv1a(&mut h, e.name.as_bytes());
    }
    h
}

/// Tie-normalized span digest: the sorted multiset of
/// `(kind, component, name)` tuples, with times, ids, parents and
/// attributes quotiented out.
///
/// This is the span-stream analogue of the race detector's canonical
/// delivery records, `(component, port, payload type)` — deliberately
/// insensitive to *which* of several same-typed, same-timestamp events a
/// handler saw first, because cross-channel tie order is exactly the
/// thing no handler may depend on. Under a permuted tie order both
/// timing and causal attachment may legitimately move (when two frames
/// reach a switch egress at the same instant, which one queues and which
/// one grabs the wire is an arbitration choice, and that choice shifts
/// downstream arrival times); what must not move is the *population* of
/// work — every component still records the same spans, the same number
/// of times. Compare with [`span_digest`], which additionally pins
/// timing, ids and parents and is the replay/queue-invariance bar.
pub fn span_canon_digest(events: &[SpanEvent]) -> u64 {
    let mut recs: Vec<(u8, u32, &'static str)> = events
        .iter()
        .map(|e| (e.kind as u8, e.comp.index() as u32, e.name))
        .collect();
    recs.sort_unstable();
    let mut h = FNV_OFFSET;
    for (kind, comp, name) in recs {
        fnv1a(&mut h, &[kind]);
        fnv1a(&mut h, &comp.to_le_bytes());
        fnv1a(&mut h, name.as_bytes());
    }
    h
}

/// Maximum parent-chain depth over the event list (a root span is depth 1).
pub fn max_span_depth(events: &[SpanEvent]) -> usize {
    let mut parents: BTreeMap<SpanId, SpanId> = BTreeMap::new();
    for e in events {
        if matches!(e.kind, SpanEventKind::Begin | SpanEventKind::Instant) {
            parents.insert(e.id, e.parent);
        }
    }
    let mut max = 0usize;
    for &id in parents.keys() {
        let mut depth = 0usize;
        let mut cur = id;
        while !cur.is_none() && depth <= parents.len() {
            depth += 1;
            cur = parents.get(&cur).copied().unwrap_or(SpanId::NONE);
        }
        max = max.max(depth);
    }
    max
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn attr_json(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) | AttrValue::Bytes(n) => format!("{n}"),
        AttrValue::I64(n) => format!("{n}"),
        AttrValue::Str(s) => format!("\"{}\"", json_escape(s)),
        AttrValue::Dur(d) => format!("\"{d}\""),
    }
}

fn args_json(attrs: &[Attr]) -> String {
    if attrs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = attrs
        .iter()
        .map(|a| format!("\"{}\": {}", json_escape(a.key), attr_json(&a.value)))
        .collect();
    format!(", \"args\": {{{}}}", body.join(", "))
}

/// `pid` for the Chrome export: ranks (components named `n<r>.…`) map to
/// process `r`; everything else (harness components) to `u32::MAX`.
fn pid_of(name: &str) -> u32 {
    name.strip_prefix('n')
        .and_then(|rest| rest.split('.').next())
        .and_then(|digits| digits.parse::<u32>().ok())
        .unwrap_or(u32::MAX)
}

/// Exports the simulator's span ring as Chrome/Perfetto `trace_event` JSON
/// (the `{"traceEvents": […]}` object form). Matched begin/end pairs
/// become complete (`"ph": "X"`) events; instants become `"ph": "i"`;
/// an unmatched begin (still-open span, or its end was evicted from the
/// ring) becomes a `"ph": "B"` without an `E`, which Perfetto renders as
/// unterminated. Timestamps are microseconds (the format's unit), emitted
/// with picosecond precision.
pub fn chrome_trace_json(sim: &crate::sim::Simulator) -> String {
    let events = sim.span_events();
    // Pair Begin/End by id (ids are unique by construction).
    let mut ends: BTreeMap<SpanId, Time> = BTreeMap::new();
    for e in &events {
        if e.kind == SpanEventKind::End {
            ends.insert(e.id, e.time);
        }
    }
    let ts = |t: Time| -> String {
        let ps = t.as_ps();
        format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
    };
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    // Process/thread naming metadata.
    let mut named: BTreeMap<(u32, u32), &str> = BTreeMap::new();
    for e in &events {
        let name = sim.name(e.comp);
        named
            .entry((pid_of(name), e.comp.index() as u32))
            .or_insert(name);
    }
    let mut pids: Vec<u32> = named.keys().map(|&(p, _)| p).collect();
    pids.dedup();
    for pid in pids {
        let label = if pid == u32::MAX {
            "harness".to_string()
        } else {
            format!("rank {pid}")
        };
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"{label}\"}}}}"
            ),
            &mut out,
        );
    }
    for (&(pid, tid), name) in &named {
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                json_escape(name)
            ),
            &mut out,
        );
    }
    for e in &events {
        let pid = pid_of(sim.name(e.comp));
        let tid = e.comp.index() as u32;
        let cat = e.name.split('.').next().unwrap_or("span");
        match e.kind {
            SpanEventKind::Begin => {
                let common = format!(
                    "\"name\": \"{}\", \"cat\": \"{}\", \"pid\": {}, \"tid\": {}, \
                     \"ts\": {}{}",
                    json_escape(e.name),
                    json_escape(cat),
                    pid,
                    tid,
                    ts(e.time),
                    args_json(&e.attrs),
                );
                match ends.get(&e.id) {
                    Some(&end) => {
                        let dur_ps = end.as_ps().saturating_sub(e.time.as_ps());
                        push(
                            format!(
                                "{{\"ph\": \"X\", {common}, \"dur\": {}.{:06}}}",
                                dur_ps / 1_000_000,
                                dur_ps % 1_000_000
                            ),
                            &mut out,
                        );
                    }
                    None => push(format!("{{\"ph\": \"B\", {common}}}"), &mut out),
                }
            }
            SpanEventKind::Instant => push(
                format!(
                    "{{\"ph\": \"i\", \"s\": \"t\", \"name\": \"{}\", \"cat\": \"{}\", \
                     \"pid\": {}, \"tid\": {}, \"ts\": {}{}}}",
                    json_escape(e.name),
                    json_escape(cat),
                    pid,
                    tid,
                    ts(e.time),
                    args_json(&e.attrs),
                ),
                &mut out,
            ),
            // Chrome flow events: `s` (start) on the producing slice,
            // `f` with `bp: "e"` (bind to enclosing slice end) on the
            // consuming slice. Pairs share `cat`, `name`, and `id`; the
            // id is the deterministic FlowId rendered in hex.
            SpanEventKind::FlowBegin => push(
                format!(
                    "{{\"ph\": \"s\", \"id\": \"{:#x}\", \"name\": \"{}\", \
                     \"cat\": \"flow\", \"pid\": {}, \"tid\": {}, \"ts\": {}}}",
                    e.id.0,
                    json_escape(e.name),
                    pid,
                    tid,
                    ts(e.time),
                ),
                &mut out,
            ),
            SpanEventKind::FlowEnd => push(
                format!(
                    "{{\"ph\": \"f\", \"bp\": \"e\", \"id\": \"{:#x}\", \"name\": \"{}\", \
                     \"cat\": \"flow\", \"pid\": {}, \"tid\": {}, \"ts\": {}}}",
                    e.id.0,
                    json_escape(e.name),
                    pid,
                    tid,
                    ts(e.time),
                ),
                &mut out,
            ),
            SpanEventKind::End => {}
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One category of the latency breakdown: spans whose names start with any
/// of `prefixes` are attributed to `category`. Earlier rules win when
/// categories overlap in time (priority order).
#[derive(Debug, Clone, Copy)]
pub struct BreakdownRule {
    /// Category label in the output table.
    pub category: &'static str,
    /// Span-name prefixes mapped to this category.
    pub prefixes: &'static [&'static str],
}

/// The default attribution rules for an ACCL+ collective: time on the
/// wire, time queued at switch egress, time on PCIe, uC control time, and
/// datapath (DMP/RBM/Tx/Rx/HBM) time, in that priority order.
pub const ACCL_BREAKDOWN: &[BreakdownRule] = &[
    BreakdownRule {
        category: "wire",
        prefixes: &["net.wire", "net.hop"],
    },
    BreakdownRule {
        category: "switch-queue",
        prefixes: &["net.queue"],
    },
    BreakdownRule {
        category: "pcie",
        prefixes: &["mem.pcie", "mem.xdma", "driver.stage"],
    },
    // `uc.call` is deliberately absent: it brackets the whole collective
    // (control *state*, not control *work*) and would otherwise absorb
    // every instant the higher-priority rules leave free. Only the uC's
    // actual busy intervals count as control time.
    BreakdownRule {
        category: "uc",
        prefixes: &["uc.decode", "uc.issue", "driver.invoke"],
    },
    BreakdownRule {
        category: "datapath",
        prefixes: &["dmp.", "rbm.", "tx.", "rx.", "mem.hbm", "poe."],
    },
];

/// Per-category attribution of one root span's wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breakdown {
    /// Root span begin time.
    pub start: Time,
    /// Root span end time.
    pub end: Time,
    /// `(category, attributed time)` per rule, in rule order, followed by
    /// `("other", residue)` — the partition is exact: the durations sum to
    /// `end - start`.
    pub shares: Vec<(&'static str, Dur)>,
}

impl Breakdown {
    /// End-to-end duration of the root span.
    pub fn total(&self) -> Dur {
        self.end - self.start
    }

    /// Sum of all attributed shares (equals [`Breakdown::total`] by
    /// construction; exposed so tests can assert the partition is exact).
    pub fn attributed(&self) -> Dur {
        let ps: u64 = self.shares.iter().map(|(_, d)| d.as_ps()).sum();
        Dur::from_ps(ps)
    }

    /// Renders the breakdown as an aligned human-readable table.
    pub fn table(&self, title: &str) -> String {
        let total = self.total().as_ps().max(1);
        let mut out = format!("{title}\n");
        out.push_str(&format!(
            "  {:<14} {:>12} {:>7}\n",
            "category", "time", "share"
        ));
        for (cat, d) in &self.shares {
            out.push_str(&format!(
                "  {:<14} {:>12} {:>6}%\n",
                cat,
                format!("{d}"),
                u128::from(d.as_ps()) * 100 / u128::from(total)
            ));
        }
        out.push_str(&format!(
            "  {:<14} {:>12} {:>6}%\n",
            "total",
            format!("{}", self.total()),
            100
        ));
        out
    }
}

/// Attributes the wall time of the span `root` across `rules` categories.
///
/// Every instant of `[begin(root), end(root)]` is assigned to exactly one
/// category: the first rule (priority order) with at least one active
/// descendant span of `root` at that instant, or `"other"` when none is
/// active (untraced gaps). Descendants are found by walking recorded
/// parent links, so causality carried across components (and across the
/// wire via payload span ids) is followed. Returns `None` when `root` has
/// no begin/end pair in `events`.
pub fn span_breakdown(
    events: &[SpanEvent],
    root: SpanId,
    rules: &[BreakdownRule],
) -> Option<Breakdown> {
    let mut begin: Option<Time> = None;
    let mut end: Option<Time> = None;
    // Map ids to (parent, name) for descendant discovery.
    let mut info: BTreeMap<SpanId, (SpanId, &'static str)> = BTreeMap::new();
    let mut ends: BTreeMap<SpanId, Time> = BTreeMap::new();
    let mut begins: BTreeMap<SpanId, Time> = BTreeMap::new();
    for e in events {
        match e.kind {
            SpanEventKind::Begin => {
                info.insert(e.id, (e.parent, e.name));
                begins.insert(e.id, e.time);
                if e.id == root {
                    begin = Some(e.time);
                }
            }
            SpanEventKind::End => {
                ends.insert(e.id, e.time);
                if e.id == root {
                    end = Some(e.time);
                }
            }
            SpanEventKind::Instant | SpanEventKind::FlowBegin | SpanEventKind::FlowEnd => {}
        }
    }
    let (t0, t1) = (begin?, end?);
    // Category of each span that descends from `root`.
    let category_of = |name: &str| -> Option<usize> {
        rules
            .iter()
            .position(|r| r.prefixes.iter().any(|p| name.starts_with(p)))
    };
    let descends = |mut id: SpanId| -> bool {
        let mut hops = 0usize;
        while !id.is_none() && hops <= info.len() {
            if id == root {
                return true;
            }
            id = info.get(&id).map(|&(p, _)| p).unwrap_or(SpanId::NONE);
            hops += 1;
        }
        false
    };
    // Sweep: +1/-1 edges per (time, category).
    let mut edges: Vec<(Time, i32, usize)> = Vec::new();
    for (&id, &(_, name)) in &info {
        if id == root || !descends(id) {
            continue;
        }
        let Some(cat) = category_of(name) else {
            continue;
        };
        let (Some(&b), Some(&e)) = (begins.get(&id), ends.get(&id)) else {
            continue;
        };
        let (b, e) = (b.max(t0), e.min(t1));
        if b >= e {
            continue;
        }
        edges.push((b, 1, cat));
        edges.push((e, -1, cat));
    }
    edges.sort_by_key(|&(t, delta, cat)| (t, delta, cat));
    let mut active = vec![0i64; rules.len()];
    let mut shares_ps = vec![0u64; rules.len() + 1]; // + "other"
    let mut cursor = t0;
    let mut i = 0usize;
    while i <= edges.len() {
        let next = edges.get(i).map(|&(t, _, _)| t).unwrap_or(t1);
        let upto = next.min(t1).max(cursor);
        if upto > cursor {
            let cat = active.iter().position(|&n| n > 0).unwrap_or(rules.len());
            shares_ps[cat] += (upto - cursor).as_ps();
            cursor = upto;
        }
        let Some(&(_, delta, cat)) = edges.get(i) else {
            break;
        };
        active[cat] += i64::from(delta);
        i += 1;
    }
    if cursor < t1 {
        let cat = active.iter().position(|&n| n > 0).unwrap_or(rules.len());
        shares_ps[cat] += (t1 - cursor).as_ps();
    }
    let mut shares: Vec<(&'static str, Dur)> = rules
        .iter()
        .zip(&shares_ps)
        .map(|(r, &ps)| (r.category, Dur::from_ps(ps)))
        .collect();
    shares.push(("other", Dur::from_ps(shares_ps[rules.len()])));
    Some(Breakdown {
        start: t0,
        end: t1,
        shares,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        time_ps: u64,
        kind: SpanEventKind,
        id: u64,
        parent: u64,
        name: &'static str,
    ) -> SpanEvent {
        SpanEvent {
            time: Time::from_ps(time_ps),
            kind,
            id: SpanId(id),
            parent: SpanId(parent),
            comp: ComponentId(0),
            name,
            attrs: vec![],
        }
    }

    #[test]
    fn breakdown_partitions_exactly() {
        use SpanEventKind::{Begin, End};
        // root [0, 100]; uc [0, 30]; wire [20, 60] (wire wins the overlap);
        // gap [60, 100] is "other".
        let events = vec![
            ev(0, Begin, 1, 0, "driver.coll"),
            ev(0, Begin, 2, 1, "uc.decode"),
            ev(20, Begin, 3, 2, "net.wire"),
            ev(30, End, 2, 0, ""),
            ev(60, End, 3, 0, ""),
            ev(100, End, 1, 0, ""),
        ];
        let b = span_breakdown(&events, SpanId(1), ACCL_BREAKDOWN).unwrap();
        assert_eq!(b.total(), Dur::from_ps(100));
        assert_eq!(b.attributed(), b.total());
        let get = |cat: &str| {
            b.shares
                .iter()
                .find(|(c, _)| *c == cat)
                .map(|(_, d)| d.as_ps())
                .unwrap()
        };
        assert_eq!(get("wire"), 40);
        assert_eq!(get("uc"), 20);
        assert_eq!(get("other"), 40);
        assert_eq!(get("pcie"), 0);
    }

    #[test]
    fn depth_walks_parent_chain() {
        use SpanEventKind::Begin;
        let events = vec![
            ev(0, Begin, 1, 0, "a"),
            ev(0, Begin, 2, 1, "b"),
            ev(0, Begin, 3, 2, "c"),
        ];
        assert_eq!(max_span_depth(&events), 3);
        assert_eq!(max_span_depth(&[]), 0);
    }

    #[test]
    fn digest_is_invariant_to_record_order() {
        use SpanEventKind::Begin;
        let a = ev(5, Begin, 1, 0, "x");
        let b = ev(5, Begin, 2, 0, "y");
        let fwd = span_digest(&[a.clone(), b.clone()]);
        let rev = span_digest(&[b, a]);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn canon_digest_quotients_out_causal_attachment() {
        use SpanEventKind::Begin;
        // Two tied frames at a switch egress: under a permuted tie order
        // the queue/wire roles swap parents (and hence ids). The strict
        // digest distinguishes the runs; the canonical one must not.
        let run_a = [
            ev(5, Begin, 10, 1, "net.queue"),
            ev(5, Begin, 11, 2, "net.wire"),
        ];
        let run_b = [
            ev(8, Begin, 12, 2, "net.queue"),
            ev(5, Begin, 13, 1, "net.wire"),
        ];
        assert_ne!(span_digest(&run_a), span_digest(&run_b));
        assert_eq!(span_canon_digest(&run_a), span_canon_digest(&run_b));
        // But it still detects missing or renamed work.
        let renamed = [
            ev(5, Begin, 10, 1, "net.hop"),
            ev(5, Begin, 11, 2, "net.wire"),
        ];
        assert_ne!(span_canon_digest(&run_a), span_canon_digest(&renamed));
        assert_ne!(span_canon_digest(&run_a), span_canon_digest(&run_a[..1]));
    }
}
