//! Bandwidth-limited FIFO resources.
//!
//! [`Pipe`] is the timing model shared by every serial resource in the
//! simulation: a network link serializing frames, a PCIe DMA channel, an HBM
//! pseudo-channel, or the CCLO's 64 B/cycle internal datapath. Work items
//! occupy the resource back-to-back; reserving a transfer returns the
//! interval it occupies, which callers convert into event schedules.
//!
//! This "next-free bookkeeping" style is equivalent to simulating an
//! output-queued FIFO explicitly, but costs O(1) per transfer instead of an
//! event per queue slot.

use crate::time::{Dur, Time};

/// A FIFO resource with fixed bandwidth and an optional fixed per-item overhead.
#[derive(Debug, Clone)]
pub struct Pipe {
    bytes_per_sec: f64,
    per_item: Dur,
    next_free: Time,
    busy: Dur,
    items: u64,
    bytes: u64,
}

impl Pipe {
    /// Creates a pipe with `gbps` (10^9 bits/s) of bandwidth.
    pub fn gbps(gbps: f64) -> Self {
        Self::bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// Creates a pipe with `bps` bytes/second of bandwidth.
    pub fn bytes_per_sec(bps: f64) -> Self {
        assert!(bps > 0.0, "pipe bandwidth must be positive");
        Pipe {
            bytes_per_sec: bps,
            per_item: Dur::ZERO,
            next_free: Time::ZERO,
            busy: Dur::ZERO,
            items: 0,
            bytes: 0,
        }
    }

    /// Adds a fixed overhead charged per reserved item (e.g. a DMA descriptor
    /// setup or per-packet header processing).
    pub fn with_per_item(mut self, overhead: Dur) -> Self {
        self.per_item = overhead;
        self
    }

    /// The configured bandwidth in bytes/second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Earliest instant at which the resource is idle.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Time the resource has spent busy so far.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Items reserved so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Bytes reserved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Pure query: how long would `bytes` occupy this resource?
    pub fn service_time(&self, bytes: u64) -> Dur {
        Dur::for_bytes_bw(bytes, self.bytes_per_sec) + self.per_item
    }

    /// Reserves the resource for `bytes` arriving at `now`.
    ///
    /// Returns `(start, end)`: the transfer begins when the resource frees up
    /// (no earlier than `now`) and ends after its serialization time.
    pub fn reserve(&mut self, now: Time, bytes: u64) -> (Time, Time) {
        let start = self.next_free.max(now);
        let dur = self.service_time(bytes);
        let end = start + dur;
        self.next_free = end;
        self.busy += dur;
        self.items += 1;
        self.bytes += bytes;
        (start, end)
    }

    /// Queueing delay a `bytes`-sized item arriving `now` would experience
    /// before starting service.
    pub fn queuing_delay(&self, now: Time) -> Dur {
        self.next_free.since(now)
    }

    /// Resets occupancy bookkeeping (bandwidth configuration is kept).
    pub fn reset(&mut self) {
        self.next_free = Time::ZERO;
        self.busy = Dur::ZERO;
        self.items = 0;
        self.bytes = 0;
    }
}

/// A fixed-latency stage, e.g. link propagation or a switch forwarding delay.
///
/// Unlike [`Pipe`], a `Latency` stage is infinitely parallel: items do not
/// queue behind each other, they are merely delayed.
#[derive(Debug, Clone, Copy)]
pub struct Latency(pub Dur);

impl Latency {
    /// Creates a fixed-latency stage of `ns` nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        Latency(Dur::from_ns(ns))
    }

    /// When an item entering at `now` exits this stage.
    pub fn through(&self, now: Time) -> Time {
        now + self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transfers_queue() {
        let mut p = Pipe::gbps(100.0); // 12.5 GB/s
        let t0 = Time::ZERO;
        let (s1, e1) = p.reserve(t0, 1250); // 100 ns
        assert_eq!(s1, t0);
        assert_eq!(e1, Time::from_ps(100_000));
        // Second transfer arrives while the first is in flight: it queues.
        let (s2, e2) = p.reserve(Time::from_ps(50_000), 1250);
        assert_eq!(s2, e1);
        assert_eq!(e2, Time::from_ps(200_000));
        assert_eq!(p.items(), 2);
        assert_eq!(p.bytes_moved(), 2500);
        assert_eq!(p.busy_time(), Dur::from_ns(200));
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut p = Pipe::gbps(100.0);
        p.reserve(Time::ZERO, 1250);
        // Arrives long after the pipe freed up: starts immediately.
        let (s, _) = p.reserve(Time::from_ps(1_000_000), 1250);
        assert_eq!(s, Time::from_ps(1_000_000));
        assert_eq!(p.busy_time(), Dur::from_ns(200));
    }

    #[test]
    fn per_item_overhead_is_charged() {
        let mut p = Pipe::gbps(100.0).with_per_item(Dur::from_ns(50));
        let (_, e) = p.reserve(Time::ZERO, 1250);
        assert_eq!(e, Time::from_ps(150_000));
        assert_eq!(p.service_time(1250), Dur::from_ns(150));
    }

    #[test]
    fn queuing_delay_reports_backlog() {
        let mut p = Pipe::gbps(8.0); // 1 GB/s
        p.reserve(Time::ZERO, 1_000_000); // busy 1 ms
        assert_eq!(p.queuing_delay(Time::from_ps(0)), Dur::from_us(1_000));
        assert_eq!(p.queuing_delay(Time::from_ps(10u64.pow(9))), Dur::ZERO);
    }

    #[test]
    fn latency_stage_is_parallel() {
        let l = Latency::from_ns(500);
        assert_eq!(l.through(Time::ZERO), Time::from_ps(500_000));
        assert_eq!(l.through(Time::from_ps(100)), Time::from_ps(500_100));
    }

    #[test]
    fn reset_preserves_bandwidth() {
        let mut p = Pipe::gbps(100.0);
        p.reserve(Time::ZERO, 10_000);
        p.reset();
        assert_eq!(p.items(), 0);
        assert_eq!(p.next_free(), Time::ZERO);
        let (s, _) = p.reserve(Time::ZERO, 1250);
        assert_eq!(s, Time::ZERO);
    }
}
