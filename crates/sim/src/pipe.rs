//! Bandwidth-limited FIFO resources.
//!
//! [`Pipe`] is the timing model shared by every serial resource in the
//! simulation: a network link serializing frames, a PCIe DMA channel, an HBM
//! pseudo-channel, or the CCLO's 64 B/cycle internal datapath. Work items
//! occupy the resource back-to-back; reserving a transfer returns the
//! interval it occupies, which callers convert into event schedules.
//!
//! This "next-free bookkeeping" style is equivalent to simulating an
//! output-queued FIFO explicitly, but costs O(1) per transfer instead of an
//! event per queue slot.
//!
//! # Arithmetic
//!
//! Occupancy is tracked in **fixed-point picoseconds** (32 fractional
//! bits). The serialization cost of one byte is the integer
//! `round(1e12 * 2^32 / bytes_per_sec)`; reservations accumulate byte
//! counts against that constant at full precision and only truncate to
//! whole picoseconds when reporting `(start, end)` instants. Two
//! consequences the rest of the stack relies on:
//!
//! - **No drift**: back-to-back reservations of `k` and `n - k` bytes end
//!   at exactly the same instant as one reservation of `n` bytes (for any
//!   split), because `k*c + (n-k)*c == n*c` in integer math. Per-`reserve`
//!   float rounding used to break this for odd splits.
//! - **Determinism**: no floating point on the reservation path, so
//!   timelines cannot vary with compiler float contraction or platform
//!   rounding modes.
//!
//! Common configured rates are exactly representable: 100 Gb/s is
//! 80 ps/byte (`80 << 32`), 8 Gb/s is 1000 ps/byte, one 64 B beat per
//! 4 ns cycle is 62.5 ps/byte (`125 << 31`).

use crate::time::{Dur, Time};

/// Fractional bits of the fixed-point picosecond representation.
const FP_BITS: u32 = 32;

/// A FIFO resource with fixed bandwidth and an optional fixed per-item overhead.
#[derive(Debug, Clone)]
pub struct Pipe {
    /// Configured bandwidth, kept only for reporting.
    bytes_per_sec: f64,
    /// Serialization cost of one byte, in fixed-point picoseconds.
    cost_per_byte_fp: u128,
    per_item: Dur,
    /// Earliest idle instant, in fixed-point picoseconds.
    next_free_fp: u128,
    /// Accumulated busy time, in fixed-point picoseconds.
    busy_fp: u128,
    items: u64,
    bytes: u64,
}

impl Pipe {
    /// Creates a pipe with `gbps` (10^9 bits/s) of bandwidth.
    pub fn gbps(gbps: f64) -> Self {
        Self::bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// Creates a pipe with `bps` bytes/second of bandwidth.
    pub fn bytes_per_sec(bps: f64) -> Self {
        assert!(bps > 0.0, "pipe bandwidth must be positive");
        let cost = (1e12 * (1u64 << FP_BITS) as f64 / bps).round();
        Pipe {
            bytes_per_sec: bps,
            cost_per_byte_fp: cost as u128,
            per_item: Dur::ZERO,
            next_free_fp: 0,
            busy_fp: 0,
            items: 0,
            bytes: 0,
        }
    }

    /// Adds a fixed overhead charged per reserved item (e.g. a DMA descriptor
    /// setup or per-packet header processing).
    pub fn with_per_item(mut self, overhead: Dur) -> Self {
        self.per_item = overhead;
        self
    }

    /// The configured bandwidth in bytes/second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Earliest instant at which the resource is idle.
    pub fn next_free(&self) -> Time {
        Time::from_ps((self.next_free_fp >> FP_BITS) as u64)
    }

    /// Time the resource has spent busy so far.
    pub fn busy_time(&self) -> Dur {
        Dur::from_ps((self.busy_fp >> FP_BITS) as u64)
    }

    /// Items reserved so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Bytes reserved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Occupancy cost of `bytes` in `items` units, in fixed-point ps.
    #[inline]
    fn cost_fp(&self, bytes: u64, items: u64) -> u128 {
        bytes as u128 * self.cost_per_byte_fp
            + ((self.per_item.as_ps() as u128) << FP_BITS) * items as u128
    }

    /// Pure query: how long would `bytes` occupy this resource?
    pub fn service_time(&self, bytes: u64) -> Dur {
        Dur::from_ps((self.cost_fp(bytes, 1) >> FP_BITS) as u64)
    }

    /// Reserves the resource for `bytes` arriving at `now`.
    ///
    /// Returns `(start, end)`: the transfer begins when the resource frees up
    /// (no earlier than `now`) and ends after its serialization time.
    #[inline]
    pub fn reserve(&mut self, now: Time, bytes: u64) -> (Time, Time) {
        self.reserve_batch(now, bytes, 1)
    }

    /// Reserves one back-to-back burst of `items` units totalling `bytes`.
    ///
    /// Equivalent in occupancy to `items` consecutive `reserve` calls over
    /// the same bytes — the per-item overhead is charged `items` times —
    /// but returns a single `(start, end)` interval and counts as one
    /// scheduling decision. This is what segment coalescing in the POEs
    /// uses: one event reserves `k` MTU segments and the wire occupancy is
    /// identical to the per-segment schedule.
    pub fn reserve_batch(&mut self, now: Time, bytes: u64, items: u64) -> (Time, Time) {
        let start_fp = self.next_free_fp.max((now.as_ps() as u128) << FP_BITS);
        let cost = self.cost_fp(bytes, items);
        let end_fp = start_fp + cost;
        self.next_free_fp = end_fp;
        self.busy_fp += cost;
        self.items += items;
        self.bytes += bytes;
        (
            Time::from_ps((start_fp >> FP_BITS) as u64),
            Time::from_ps((end_fp >> FP_BITS) as u64),
        )
    }

    /// Queueing delay a `bytes`-sized item arriving `now` would experience
    /// before starting service.
    pub fn queuing_delay(&self, now: Time) -> Dur {
        self.next_free().since(now)
    }

    /// Resets occupancy bookkeeping (bandwidth configuration is kept).
    pub fn reset(&mut self) {
        self.next_free_fp = 0;
        self.busy_fp = 0;
        self.items = 0;
        self.bytes = 0;
    }
}

/// A fixed-latency stage, e.g. link propagation or a switch forwarding delay.
///
/// Unlike [`Pipe`], a `Latency` stage is infinitely parallel: items do not
/// queue behind each other, they are merely delayed.
#[derive(Debug, Clone, Copy)]
pub struct Latency(pub Dur);

impl Latency {
    /// Creates a fixed-latency stage of `ns` nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        Latency(Dur::from_ns(ns))
    }

    /// When an item entering at `now` exits this stage.
    pub fn through(&self, now: Time) -> Time {
        now + self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transfers_queue() {
        let mut p = Pipe::gbps(100.0); // 12.5 GB/s
        let t0 = Time::ZERO;
        let (s1, e1) = p.reserve(t0, 1250); // 100 ns
        assert_eq!(s1, t0);
        assert_eq!(e1, Time::from_ps(100_000));
        // Second transfer arrives while the first is in flight: it queues.
        let (s2, e2) = p.reserve(Time::from_ps(50_000), 1250);
        assert_eq!(s2, e1);
        assert_eq!(e2, Time::from_ps(200_000));
        assert_eq!(p.items(), 2);
        assert_eq!(p.bytes_moved(), 2500);
        assert_eq!(p.busy_time(), Dur::from_ns(200));
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut p = Pipe::gbps(100.0);
        p.reserve(Time::ZERO, 1250);
        // Arrives long after the pipe freed up: starts immediately.
        let (s, _) = p.reserve(Time::from_ps(1_000_000), 1250);
        assert_eq!(s, Time::from_ps(1_000_000));
        assert_eq!(p.busy_time(), Dur::from_ns(200));
    }

    #[test]
    fn per_item_overhead_is_charged() {
        let mut p = Pipe::gbps(100.0).with_per_item(Dur::from_ns(50));
        let (_, e) = p.reserve(Time::ZERO, 1250);
        assert_eq!(e, Time::from_ps(150_000));
        assert_eq!(p.service_time(1250), Dur::from_ns(150));
    }

    #[test]
    fn queuing_delay_reports_backlog() {
        let mut p = Pipe::gbps(8.0); // 1 GB/s
        p.reserve(Time::ZERO, 1_000_000); // busy 1 ms
        assert_eq!(p.queuing_delay(Time::from_ps(0)), Dur::from_us(1_000));
        assert_eq!(p.queuing_delay(Time::from_ps(10u64.pow(9))), Dur::ZERO);
    }

    #[test]
    fn latency_stage_is_parallel() {
        let l = Latency::from_ns(500);
        assert_eq!(l.through(Time::ZERO), Time::from_ps(500_000));
        assert_eq!(l.through(Time::from_ps(100)), Time::from_ps(500_100));
    }

    #[test]
    fn reset_preserves_bandwidth() {
        let mut p = Pipe::gbps(100.0);
        p.reserve(Time::ZERO, 10_000);
        p.reset();
        assert_eq!(p.items(), 0);
        assert_eq!(p.next_free(), Time::ZERO);
        let (s, _) = p.reserve(Time::ZERO, 1250);
        assert_eq!(s, Time::ZERO);
    }

    #[test]
    fn split_reservations_end_exactly_where_one_would() {
        // The fixed-point accumulator makes segmentation timing-neutral
        // even at rates where one byte is not a whole picosecond and for
        // odd splits; f64-per-call rounding used to drift here.
        for gbps in [100.0, 400.0, 123.0, 17.3] {
            for n in [1u64, 3, 1249, 1250, 1500, 1 << 20] {
                for k in [1u64, n / 3 + 1, n / 2, n - 1] {
                    let k = k.min(n);
                    let mut whole = Pipe::gbps(gbps);
                    let (_, e1) = whole.reserve(Time::ZERO, n);
                    let mut halves = Pipe::gbps(gbps);
                    halves.reserve(Time::ZERO, k);
                    let (_, e2) = halves.reserve(Time::ZERO, n - k);
                    assert_eq!(e1, e2, "gbps={gbps} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn reserve_batch_matches_consecutive_reserves() {
        let mut batched = Pipe::gbps(100.0).with_per_item(Dur::from_ns(50));
        let mut serial = Pipe::gbps(100.0).with_per_item(Dur::from_ns(50));
        let (bs, be) = batched.reserve_batch(Time::ZERO, 4 * 1250, 4);
        let mut last = (Time::ZERO, Time::ZERO);
        for _ in 0..4 {
            last = serial.reserve(Time::ZERO, 1250);
        }
        assert_eq!(bs, Time::ZERO);
        assert_eq!(be, last.1);
        assert_eq!(batched.items(), 4);
        assert_eq!(batched.bytes_moved(), 5000);
        assert_eq!(batched.busy_time(), serial.busy_time());
    }
}
