//! XDMA staging engine for partitioned-memory (Vitis/XRT) platforms.
//!
//! On Vitis platforms FPGA kernels cannot reach host memory; the XRT-driven
//! XDMA IP copies buffers between host DRAM and card memory. The ACCL+ CCL
//! driver *stages* host buffers through this engine before/after collectives
//! (§4.2), which is exactly the overhead that makes XRT H2H collectives slow
//! in Fig. 13. The engine composes the two memory targets of the node's
//! [`crate::bus::MemoryBus`]: a read stream from the source target feeds writes into the
//! destination target.

use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};
use std::collections::BTreeMap;

use crate::bus::{ports as bus_ports, MemAddr, MemChunk, MemDone, MemReadReq, MemWriteReq};
use crate::tlb::MemTarget;

/// Direction of a staging copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XdmaDir {
    /// Host DRAM → card memory (before a collective on host data).
    HostToDevice,
    /// Card memory → host DRAM (after a collective producing host data).
    DeviceToHost,
}

/// A staging copy request.
#[derive(Debug, Clone, Copy)]
pub struct XdmaCopy {
    /// Copy direction.
    pub dir: XdmaDir,
    /// Host-side physical address.
    pub host_addr: u64,
    /// Device-side physical address.
    pub dev_addr: u64,
    /// Bytes to copy.
    pub len: u64,
    /// Receiver of the [`XdmaDone`] completion.
    pub done_to: Endpoint,
    /// Caller-chosen tag echoed in the completion.
    pub tag: u64,
    /// Causal parent span of the requester ([`SpanId::NONE`] if untraced).
    pub span: SpanId,
}

/// Completion of a staging copy.
#[derive(Debug, Clone, Copy)]
pub struct XdmaDone {
    /// Tag of the completed copy.
    pub tag: u64,
    /// Bytes copied.
    pub len: u64,
}

/// Ports of the [`XdmaEngine`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Copy requests ([`super::XdmaCopy`]).
    pub const COPY: PortId = PortId(0);
    /// Read data returning from the memory bus (internal).
    pub const RD_DATA: PortId = PortId(1);
    /// Write completions returning from the memory bus (internal).
    pub const WR_DONE: PortId = PortId(2);
}

struct CopyState {
    req: XdmaCopy,
    written: u64,
    span: SpanId,
}

/// The XDMA staging engine component.
pub struct XdmaEngine {
    bus: ComponentId,
    /// Driver + descriptor setup cost charged per copy (XRT ioctl path).
    setup: Dur,
    inflight: BTreeMap<u64, CopyState>,
    next_tag: u64,
    bytes_copied: u64,
}

impl XdmaEngine {
    /// Creates an engine driving the given memory bus.
    ///
    /// `setup_us` is the per-copy software setup cost; XRT's buffer
    /// migration path costs tens of microseconds.
    pub fn new(bus: ComponentId, setup_us: u64) -> Self {
        XdmaEngine {
            bus,
            setup: Dur::from_us(setup_us),
            inflight: BTreeMap::new(),
            next_tag: 0,
            bytes_copied: 0,
        }
    }

    /// Total bytes staged so far.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    fn src_dst(req: &XdmaCopy) -> ((MemTarget, u64), (MemTarget, u64)) {
        match req.dir {
            XdmaDir::HostToDevice => (
                (MemTarget::Host, req.host_addr),
                (MemTarget::Device, req.dev_addr),
            ),
            XdmaDir::DeviceToHost => (
                (MemTarget::Device, req.dev_addr),
                (MemTarget::Host, req.host_addr),
            ),
        }
    }
}

impl Component for XdmaEngine {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::COPY => {
                let req = payload.downcast::<XdmaCopy>();
                assert!(req.len > 0, "zero-length XDMA copy");
                let tag = self.next_tag;
                self.next_tag += 1;
                let ((src_t, src_a), _) = Self::src_dst(&req);
                // The copy span opens at acceptance so the XRT setup cost is
                // attributed to the staging engine, not to the memory bus.
                let span = ctx.span_begin_attrs(
                    "mem.xdma.copy",
                    req.span,
                    &[
                        Attr {
                            key: "bytes",
                            value: AttrValue::Bytes(req.len),
                        },
                        Attr {
                            key: "dir",
                            value: AttrValue::Str(match req.dir {
                                XdmaDir::HostToDevice => "h2d",
                                XdmaDir::DeviceToHost => "d2h",
                            }),
                        },
                    ],
                );
                self.inflight.insert(
                    tag,
                    CopyState {
                        req,
                        written: 0,
                        span,
                    },
                );
                ctx.send(
                    Endpoint::new(self.bus, bus_ports::READ),
                    self.setup,
                    MemReadReq {
                        addr: MemAddr::Phys(src_t, src_a),
                        len: req.len,
                        data_to: Endpoint::new(ctx.self_id(), ports::RD_DATA),
                        done_to: None,
                        tag,
                        span,
                    },
                );
            }
            ports::RD_DATA => {
                let chunk = payload.downcast::<MemChunk>();
                let state = self
                    .inflight
                    .get(&chunk.tag)
                    .expect("XDMA chunk for unknown copy");
                let (_, (dst_t, dst_a)) = Self::src_dst(&state.req);
                let span = state.span;
                ctx.send(
                    Endpoint::new(self.bus, bus_ports::WRITE),
                    Dur::ZERO,
                    MemWriteReq {
                        addr: MemAddr::Phys(dst_t, dst_a + chunk.offset),
                        data: chunk.data,
                        done_to: Some(Endpoint::new(ctx.self_id(), ports::WR_DONE)),
                        tag: chunk.tag,
                        span,
                    },
                );
            }
            ports::WR_DONE => {
                let done = payload.downcast::<MemDone>();
                let state = self
                    .inflight
                    .get_mut(&done.tag)
                    .expect("XDMA write-done for unknown copy");
                state.written += done.len;
                debug_assert!(state.written <= state.req.len);
                if state.written == state.req.len {
                    let state = self.inflight.remove(&done.tag).unwrap();
                    self.bytes_copied += state.req.len;
                    ctx.stats().add("mem.xdma.bytes", state.req.len);
                    ctx.span_end(state.span);
                    ctx.send(
                        state.req.done_to,
                        Dur::ZERO,
                        XdmaDone {
                            tag: state.req.tag,
                            len: state.req.len,
                        },
                    );
                }
            }
            other => panic!("XDMA engine has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = 0u64;
        for v in [self.bytes_copied, self.next_tag, self.inflight.len() as u64] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{MemBusConfig, MemoryBus};

    fn setup() -> (Simulator, ComponentId, ComponentId, ComponentId) {
        let mut sim = Simulator::new(0);
        let bus = sim.add("bus", MemoryBus::new(MemBusConfig::default()));
        let xdma = sim.add("xdma", XdmaEngine::new(bus, 30));
        let done = sim.add("done", Mailbox::<XdmaDone>::new());
        (sim, bus, xdma, done)
    }

    #[test]
    fn host_to_device_copies_bytes() {
        let (mut sim, bus, xdma, done) = setup();
        let data: Vec<u8> = (0..20_000).map(|i| (i % 97) as u8).collect();
        sim.component_mut::<MemoryBus>(bus)
            .host_write(0x1000, &data);
        sim.post(
            Endpoint::new(xdma, ports::COPY),
            Time::ZERO,
            XdmaCopy {
                dir: XdmaDir::HostToDevice,
                host_addr: 0x1000,
                dev_addr: 0x8_0000,
                len: data.len() as u64,
                done_to: Endpoint::of(done),
                tag: 42,
                span: SpanId::NONE,
            },
        );
        sim.run();
        let mb = sim.component::<Mailbox<XdmaDone>>(done);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.items()[0].1.tag, 42);
        // Setup cost must be visible: >= 30 us even for a small copy.
        assert!(mb.items()[0].0.as_us_f64() >= 30.0);
        assert_eq!(
            sim.component::<MemoryBus>(bus)
                .device_read(0x8_0000, data.len()),
            data
        );
    }

    #[test]
    fn device_to_host_copies_bytes() {
        let (mut sim, bus, xdma, done) = setup();
        let data = vec![0xabu8; 5000];
        sim.component_mut::<MemoryBus>(bus)
            .device_write(0x40, &data);
        sim.post(
            Endpoint::new(xdma, ports::COPY),
            Time::ZERO,
            XdmaCopy {
                dir: XdmaDir::DeviceToHost,
                host_addr: 0x9000,
                dev_addr: 0x40,
                len: 5000,
                done_to: Endpoint::of(done),
                tag: 0,
                span: SpanId::NONE,
            },
        );
        sim.run();
        assert_eq!(
            sim.component::<MemoryBus>(bus).host_read(0x9000, 5000),
            data
        );
        assert_eq!(sim.component::<XdmaEngine>(xdma).bytes_copied(), 5000);
    }

    #[test]
    fn large_copy_is_pcie_bound() {
        let (mut sim, bus, xdma, done) = setup();
        let len = 16u64 << 20; // 16 MiB
        sim.component_mut::<MemoryBus>(bus).host_write(0, &[1u8; 1]);
        sim.post(
            Endpoint::new(xdma, ports::COPY),
            Time::ZERO,
            XdmaCopy {
                dir: XdmaDir::HostToDevice,
                host_addr: 0,
                dev_addr: 0,
                len,
                done_to: Endpoint::of(done),
                tag: 0,
                span: SpanId::NONE,
            },
        );
        sim.run();
        let t = sim.component::<Mailbox<XdmaDone>>(done).items()[0]
            .0
            .as_us_f64();
        // 16 MiB at 12.5 GB/s ≈ 1342 us (+ setup); must be within 10%.
        assert!((1300.0..1600.0).contains(&t), "t={t}us");
    }

    #[test]
    fn concurrent_copies_complete_independently() {
        let (mut sim, bus, xdma, done) = setup();
        sim.component_mut::<MemoryBus>(bus)
            .host_write(0, &[7u8; 100]);
        for tag in 0..3u64 {
            sim.post(
                Endpoint::new(xdma, ports::COPY),
                Time::ZERO,
                XdmaCopy {
                    dir: XdmaDir::HostToDevice,
                    host_addr: tag * 0x100,
                    dev_addr: tag * 0x100,
                    len: 100,
                    done_to: Endpoint::of(done),
                    tag,
                    span: SpanId::NONE,
                },
            );
        }
        sim.run();
        let mut tags: Vec<u64> = sim
            .component::<Mailbox<XdmaDone>>(done)
            .values()
            .map(|d| d.tag)
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2]);
    }
}
