//! Sparse byte-addressable backing store.
//!
//! Every simulated memory (host DDR, FPGA HBM) holds real bytes so that
//! collectives, reductions and the DLRM use case produce verifiable results,
//! not just timing. The store is sparse — pages materialize on first write —
//! because experiments address gigabyte-scale spaces while touching only the
//! buffers in use.

use bytes::Bytes;
use std::collections::BTreeMap;

/// Page size of the backing store, in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// A sparse, zero-initialized byte store.
#[derive(Default)]
pub struct MemStore {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let page_base = a & !(PAGE_SIZE - 1);
            let in_page = (a - page_base) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(data.len() - off);
            let page = self
                .pages
                .entry(page_base)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            page[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Reads `len` bytes starting at `addr`; untouched bytes read as zero.
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let page_base = a & !(PAGE_SIZE - 1);
            let in_page = (a - page_base) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(len - off);
            if let Some(page) = self.pages.get(&page_base) {
                out[off..off + n].copy_from_slice(&page[in_page..in_page + n]);
            }
            off += n;
        }
        out
    }

    /// Reads `len` bytes starting at `addr` into a shared, refcounted
    /// buffer.
    ///
    /// This is the DMA-path entry point: the returned [`Bytes`] is handed
    /// through chunking, framing and retransmission queues as zero-copy
    /// slices of the one allocation made here.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Bytes {
        Bytes::from(self.read(addr, len))
    }

    /// Number of materialized pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Drops all contents.
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_a_page() {
        let mut m = MemStore::new();
        m.write(100, &[1, 2, 3]);
        assert_eq!(m.read(100, 3), vec![1, 2, 3]);
        assert_eq!(m.read(99, 5), vec![0, 1, 2, 3, 0]);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn roundtrip_across_pages() {
        let mut m = MemStore::new();
        let data: Vec<u8> = (0..=255)
            .cycle()
            .take(3 * PAGE_SIZE as usize)
            .map(|v| v as u8)
            .collect();
        let addr = PAGE_SIZE - 7;
        m.write(addr, &data);
        assert_eq!(m.read(addr, data.len()), data);
        assert_eq!(m.resident_pages(), 4);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = MemStore::new();
        assert_eq!(m.read(1 << 40, 8), vec![0; 8]);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_bytes_matches_read_and_slices_share_storage() {
        let mut m = MemStore::new();
        m.write(10, &[9u8; 100]);
        let b = m.read_bytes(0, 200);
        assert_eq!(&b[..], &m.read(0, 200)[..]);
        // Slicing the returned buffer must not copy.
        assert_eq!(b.slice(10..110).as_ptr(), b[10..].as_ptr());
    }

    #[test]
    fn overwrite_is_last_writer_wins() {
        let mut m = MemStore::new();
        m.write(0, &[1; 16]);
        m.write(4, &[2; 4]);
        let mut expect = vec![1u8; 16];
        expect[4..8].fill(2);
        assert_eq!(m.read(0, 16), expect);
    }
}
