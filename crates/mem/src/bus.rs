//! The per-node memory bus: host DRAM over PCIe + card memory (HBM).
//!
//! One `MemoryBus` component per node serves read/write requests from DMA
//! masters (the CCLO's data movers, protocol engines needing retransmission
//! buffers, XDMA staging copies). Timing distinguishes the two targets:
//! card HBM is reached at hundreds of GB/s with ~100 ns latency, host DRAM
//! crosses PCIe at ~12.5 GB/s effective with ~700 ns latency — the asymmetry
//! at the heart of the paper's partitioned-vs-unified memory comparisons.
//!
//! When configured with a [`Tlb`], the bus accepts *virtual* addresses and
//! resolves their physical location per request, modelling Coyote's
//! shared-virtual-memory shell; without one it accepts only physical
//! `(target, addr)` pairs, modelling the Vitis partitioned-memory model.

use bytes::Bytes;

use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};
use serde::{Deserialize, Serialize};

use crate::store::{MemStore, PAGE_SIZE};
use crate::tlb::{MemTarget, Tlb, TlbConfig};

/// An address understood by the memory bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAddr {
    /// Virtual address; requires the bus to have a TLB (Coyote mode).
    Virt(u64),
    /// Physical address within an explicit target (Vitis mode, or shell
    /// internals that already translated).
    Phys(MemTarget, u64),
}

impl MemAddr {
    /// The raw address value regardless of kind.
    pub fn raw(self) -> u64 {
        match self {
            MemAddr::Virt(a) | MemAddr::Phys(_, a) => a,
        }
    }

    /// Shifts the address by `off` bytes.
    pub fn offset(self, off: u64) -> MemAddr {
        match self {
            MemAddr::Virt(a) => MemAddr::Virt(a + off),
            MemAddr::Phys(t, a) => MemAddr::Phys(t, a + off),
        }
    }
}

/// Read request: stream `len` bytes from `addr` to `data_to` in chunks.
#[derive(Debug)]
pub struct MemReadReq {
    /// Source address.
    pub addr: MemAddr,
    /// Bytes to read.
    pub len: u64,
    /// Destination for [`MemChunk`] events.
    pub data_to: Endpoint,
    /// Optional destination for the final [`MemDone`].
    pub done_to: Option<Endpoint>,
    /// Caller-chosen tag echoed in chunks and completion.
    pub tag: u64,
    /// Causal parent span of the requester ([`SpanId::NONE`] if untraced).
    pub span: SpanId,
}

/// Write request: store `data` at `addr`.
#[derive(Debug)]
pub struct MemWriteReq {
    /// Destination address.
    pub addr: MemAddr,
    /// The bytes to write.
    pub data: Bytes,
    /// Optional destination for the [`MemDone`].
    pub done_to: Option<Endpoint>,
    /// Caller-chosen tag echoed in the completion.
    pub tag: u64,
    /// Causal parent span of the requester ([`SpanId::NONE`] if untraced).
    pub span: SpanId,
}

/// A slice of read data in flight to a DMA master.
#[derive(Debug, Clone)]
pub struct MemChunk {
    /// Tag of the originating request.
    pub tag: u64,
    /// Offset of this chunk within the request.
    pub offset: u64,
    /// The chunk's bytes.
    pub data: Bytes,
    /// Whether this is the final chunk of the request.
    pub last: bool,
}

/// Completion notification for a read or write request.
#[derive(Debug, Clone, Copy)]
pub struct MemDone {
    /// Tag of the completed request.
    pub tag: u64,
    /// Bytes moved.
    pub len: u64,
}

/// Timing and translation configuration of a node's memory system.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemBusConfig {
    /// Effective PCIe bandwidth to host memory, Gb/s (Gen3 x16 ≈ 100).
    pub pcie_gbps: f64,
    /// PCIe round-trip latency per DMA transfer, ns.
    pub pcie_latency_ns: u64,
    /// Aggregate card-memory (HBM) bandwidth, Gb/s (U55C ≈ 3680).
    pub hbm_gbps: f64,
    /// Card-memory access latency, ns.
    pub hbm_latency_ns: u64,
    /// Chunk size for streamed read data, bytes.
    pub chunk_bytes: u32,
    /// Translation model; `Some` = Coyote shared virtual memory.
    pub tlb: Option<TlbConfig>,
}

impl Default for MemBusConfig {
    fn default() -> Self {
        MemBusConfig {
            pcie_gbps: 100.0,
            pcie_latency_ns: 700,
            hbm_gbps: 3680.0,
            hbm_latency_ns: 120,
            chunk_bytes: 4096,
            tlb: None,
        }
    }
}

impl MemBusConfig {
    /// Coyote-style configuration: same fabric, plus a TLB.
    pub fn coyote() -> Self {
        MemBusConfig {
            tlb: Some(TlbConfig::default()),
            ..Self::default()
        }
    }
}

/// Ports of the [`MemoryBus`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Read requests ([`super::MemReadReq`]).
    pub const READ: PortId = PortId(0);
    /// Write requests ([`super::MemWriteReq`]).
    pub const WRITE: PortId = PortId(1);
}

/// The per-node memory system component.
pub struct MemoryBus {
    cfg: MemBusConfig,
    host: MemStore,
    device: MemStore,
    // PCIe and HBM are full duplex: independent read and write pipes.
    pcie_rd: Pipe,
    pcie_wr: Pipe,
    hbm_rd: Pipe,
    hbm_wr: Pipe,
    tlb: Option<Tlb>,
    bytes_read: u64,
    bytes_written: u64,
}

impl MemoryBus {
    /// Creates a memory bus with the given configuration.
    pub fn new(cfg: MemBusConfig) -> Self {
        MemoryBus {
            host: MemStore::new(),
            device: MemStore::new(),
            pcie_rd: Pipe::gbps(cfg.pcie_gbps),
            pcie_wr: Pipe::gbps(cfg.pcie_gbps),
            hbm_rd: Pipe::gbps(cfg.hbm_gbps),
            hbm_wr: Pipe::gbps(cfg.hbm_gbps),
            tlb: cfg.tlb.map(Tlb::new),
            bytes_read: 0,
            bytes_written: 0,
            cfg,
        }
    }

    /// Zero-time access to host memory (setup/verification only).
    pub fn host_write(&mut self, addr: u64, data: &[u8]) {
        self.host.write(addr, data);
    }

    /// Zero-time read of host memory (setup/verification only).
    pub fn host_read(&self, addr: u64, len: usize) -> Vec<u8> {
        self.host.read(addr, len)
    }

    /// Zero-time access to device memory (setup/verification only).
    pub fn device_write(&mut self, addr: u64, data: &[u8]) {
        self.device.write(addr, data);
    }

    /// Zero-time read of device memory (setup/verification only).
    pub fn device_read(&self, addr: u64, len: usize) -> Vec<u8> {
        self.device.read(addr, len)
    }

    /// Maps `[addr, addr+len)` to `target` in the TLB (driver eager mapping).
    ///
    /// # Panics
    ///
    /// Panics if the bus has no TLB (partitioned-memory platform).
    pub fn map_range(&mut self, addr: u64, len: u64, target: MemTarget) {
        self.tlb
            .as_mut()
            .expect("map_range on a bus without a TLB")
            .map_range(addr, len, target);
    }

    /// TLB counters `(hits, misses, faults)`, if a TLB is configured.
    pub fn tlb_counters(&self) -> Option<(u64, u64, u64)> {
        self.tlb.as_ref().map(Tlb::counters)
    }

    /// Total bytes served to readers.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes accepted from writers.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Resolves an address to `(target, physical address, penalty)`.
    ///
    /// Virtual requests consult the TLB once per request (translations are
    /// page-granular in hardware but pipelined; serializing a per-page
    /// penalty would overcharge large DMAs). If any page of the range is
    /// unmapped the request takes one page-fault penalty and the fault
    /// handler maps the whole range — matching Coyote, where one interrupt
    /// services the faulting descriptor.
    fn resolve(&mut self, addr: MemAddr, len: u64) -> (MemTarget, u64, Dur) {
        match addr {
            MemAddr::Phys(t, a) => (t, a, Dur::ZERO),
            MemAddr::Virt(a) => {
                let tlb = self
                    .tlb
                    .as_mut()
                    .expect("virtual address on a bus without a TLB");
                let first = tlb.translate(a);
                let mut penalty = first.penalty;
                // Touch the remaining pages so fault accounting is honest for
                // ranges that straddle an unmapped tail.
                let mut page = (a / PAGE_SIZE + 1) * PAGE_SIZE;
                while page < a + len {
                    let t = tlb.translate(page);
                    if t.faulted {
                        penalty = penalty.max(t.penalty);
                    }
                    page += PAGE_SIZE;
                }
                (first.target, a, penalty)
            }
        }
    }

    fn pipe(&mut self, target: MemTarget, write: bool) -> (&mut Pipe, Dur) {
        match (target, write) {
            (MemTarget::Host, false) => (&mut self.pcie_rd, Dur::from_ns(self.cfg.pcie_latency_ns)),
            (MemTarget::Host, true) => (&mut self.pcie_wr, Dur::from_ns(self.cfg.pcie_latency_ns)),
            (MemTarget::Device, false) => (&mut self.hbm_rd, Dur::from_ns(self.cfg.hbm_latency_ns)),
            (MemTarget::Device, true) => (&mut self.hbm_wr, Dur::from_ns(self.cfg.hbm_latency_ns)),
        }
    }

    /// Cumulative busy time of the PCIe pipes (read + write), for link
    /// utilization accounting.
    pub fn pcie_busy_time(&self) -> Dur {
        self.pcie_rd.busy_time() + self.pcie_wr.busy_time()
    }

    /// Records the TLB counter deltas since `before` into the stats
    /// registry, so hit rates aggregate across requests and nodes.
    fn record_tlb_delta(&self, ctx: &mut Ctx<'_>, before: Option<(u64, u64, u64)>) {
        if let (Some((h0, m0, f0)), Some((h1, m1, f1))) = (before, self.tlb_counters()) {
            ctx.stats().add("mem.tlb.hits", h1 - h0);
            ctx.stats().add("mem.tlb.misses", m1 - m0);
            ctx.stats().add("mem.tlb.faults", f1 - f0);
        }
    }
}

/// Span/stat name for a bus leg: `(counter key, span name)`.
fn leg_names(target: MemTarget, write: bool) -> (&'static str, &'static str) {
    match (target, write) {
        (MemTarget::Host, false) => ("mem.pcie.bytes", "mem.pcie.read"),
        (MemTarget::Host, true) => ("mem.pcie.bytes", "mem.pcie.write"),
        (MemTarget::Device, false) => ("mem.hbm.bytes", "mem.hbm.read"),
        (MemTarget::Device, true) => ("mem.hbm.bytes", "mem.hbm.write"),
    }
}

impl Component for MemoryBus {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::READ => {
                let req = payload.downcast::<MemReadReq>();
                assert!(req.len > 0, "zero-length read");
                let tlb_before = self.tlb_counters();
                let (target, base, penalty) = self.resolve(req.addr, req.len);
                self.record_tlb_delta(ctx, tlb_before);
                let chunk = u64::from(self.cfg.chunk_bytes.max(1));
                // One allocation per request; every chunk below is a
                // refcounted slice of it.
                let data = match target {
                    MemTarget::Host => self.host.read_bytes(base, req.len as usize),
                    MemTarget::Device => self.device.read_bytes(base, req.len as usize),
                };
                self.bytes_read += req.len;
                let (counter, span_name) = leg_names(target, false);
                ctx.stats().add(counter, req.len);
                let (pipe, latency) = self.pipe(target, false);
                let start = ctx.now() + penalty;
                let (xfer_start, xfer_end) = pipe.reserve(start, req.len);
                if ctx.spans_enabled() {
                    ctx.span_interval_attrs(
                        span_name,
                        req.span,
                        xfer_start,
                        xfer_end + latency,
                        &[Attr {
                            key: "bytes",
                            value: AttrValue::Bytes(req.len),
                        }],
                    );
                }
                // Deliver chunks pipelined: chunk i lands once its bytes have
                // crossed the pipe, plus the access latency.
                let mut off = 0u64;
                let t0 = pipe.next_free() - pipe.service_time(req.len);
                while off < req.len {
                    let n = chunk.min(req.len - off);
                    let done_bytes = off + n;
                    let at = t0
                        + Dur::for_bytes_bw(done_bytes, pipe.bandwidth_bytes_per_sec())
                        + latency;
                    let last = done_bytes == req.len;
                    ctx.send_at(
                        req.data_to,
                        at,
                        MemChunk {
                            tag: req.tag,
                            offset: off,
                            data: data.slice(off as usize..done_bytes as usize),
                            last,
                        },
                    );
                    if last {
                        if let Some(done) = req.done_to {
                            ctx.send_at(
                                done,
                                at,
                                MemDone {
                                    tag: req.tag,
                                    len: req.len,
                                },
                            );
                        }
                    }
                    off = done_bytes;
                }
            }
            ports::WRITE => {
                let req = payload.downcast::<MemWriteReq>();
                let len = req.data.len() as u64;
                assert!(len > 0, "zero-length write");
                let tlb_before = self.tlb_counters();
                let (target, base, penalty) = self.resolve(req.addr, len);
                self.record_tlb_delta(ctx, tlb_before);
                match target {
                    MemTarget::Host => self.host.write(base, &req.data),
                    MemTarget::Device => self.device.write(base, &req.data),
                }
                self.bytes_written += len;
                let (counter, span_name) = leg_names(target, true);
                ctx.stats().add(counter, len);
                let (pipe, latency) = self.pipe(target, true);
                let (start, end) = pipe.reserve(ctx.now() + penalty, len);
                if ctx.spans_enabled() {
                    ctx.span_interval_attrs(
                        span_name,
                        req.span,
                        start,
                        end + latency,
                        &[Attr {
                            key: "bytes",
                            value: AttrValue::Bytes(len),
                        }],
                    );
                }
                if let Some(done) = req.done_to {
                    ctx.send_at(done, end + latency, MemDone { tag: req.tag, len });
                }
            }
            other => panic!("memory bus has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        // Traffic totals plus each pipe's reservation horizon: the full
        // externally-visible effect of every read/write the bus served.
        let mut h = 0u64;
        for v in [
            self.bytes_read,
            self.bytes_written,
            self.pcie_rd.next_free().as_ps(),
            self.pcie_wr.next_free().as_ps(),
            self.hbm_rd.next_free().as_ps(),
            self.hbm_wr.next_free().as_ps(),
        ] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cfg: MemBusConfig) -> (Simulator, ComponentId, ComponentId, ComponentId) {
        let mut sim = Simulator::new(0);
        let bus = sim.add("bus", MemoryBus::new(cfg));
        let chunks = sim.add("chunks", Mailbox::<MemChunk>::new());
        let dones = sim.add("dones", Mailbox::<MemDone>::new());
        (sim, bus, chunks, dones)
    }

    #[test]
    fn device_read_streams_chunks_in_order() {
        let (mut sim, bus, chunks, dones) = setup(MemBusConfig::default());
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        sim.component_mut::<MemoryBus>(bus)
            .device_write(0x100, &payload);
        sim.post(
            Endpoint::new(bus, ports::READ),
            Time::ZERO,
            MemReadReq {
                addr: MemAddr::Phys(MemTarget::Device, 0x100),
                len: payload.len() as u64,
                data_to: Endpoint::of(chunks),
                done_to: Some(Endpoint::of(dones)),
                tag: 7,
                span: SpanId::NONE,
            },
        );
        sim.run();
        let mb = sim.component::<Mailbox<MemChunk>>(chunks);
        assert_eq!(mb.len(), 3); // 4096 + 4096 + 1808
        let mut got = Vec::new();
        for (_, c) in mb.items() {
            assert_eq!(c.tag, 7);
            assert_eq!(c.offset, got.len() as u64);
            got.extend_from_slice(&c.data);
        }
        assert_eq!(got, payload);
        assert!(mb.items()[2].1.last);
        assert_eq!(sim.component::<Mailbox<MemDone>>(dones).len(), 1);
    }

    #[test]
    fn host_access_is_slower_than_device() {
        let run = |target, addr| {
            let (mut sim, bus, chunks, _) = setup(MemBusConfig::default());
            sim.post(
                Endpoint::new(bus, ports::READ),
                Time::ZERO,
                MemReadReq {
                    addr: MemAddr::Phys(target, addr),
                    len: 1 << 20,
                    data_to: Endpoint::of(chunks),
                    done_to: None,
                    tag: 0,
                    span: SpanId::NONE,
                },
            );
            sim.run();
            sim.component::<Mailbox<MemChunk>>(chunks)
                .last_arrival()
                .unwrap()
        };
        let host = run(MemTarget::Host, 0);
        let dev = run(MemTarget::Device, 0);
        // 1 MiB over 12.5 GB/s PCIe ≈ 84 us; over 460 GB/s HBM ≈ 2.3 us.
        assert!(host.as_us_f64() > 80.0, "host={host}");
        assert!(dev.as_us_f64() < 4.0, "dev={dev}");
    }

    #[test]
    fn write_then_read_roundtrip_through_events() {
        let (mut sim, bus, chunks, dones) = setup(MemBusConfig::default());
        sim.post(
            Endpoint::new(bus, ports::WRITE),
            Time::ZERO,
            MemWriteReq {
                addr: MemAddr::Phys(MemTarget::Device, 0x2000),
                data: Bytes::from_static(b"hello accl"),
                done_to: Some(Endpoint::of(dones)),
                tag: 1,
                span: SpanId::NONE,
            },
        );
        sim.run();
        assert_eq!(sim.component::<Mailbox<MemDone>>(dones).len(), 1);
        sim.post(
            Endpoint::new(bus, ports::READ),
            sim.now(),
            MemReadReq {
                addr: MemAddr::Phys(MemTarget::Device, 0x2000),
                len: 10,
                data_to: Endpoint::of(chunks),
                done_to: None,
                tag: 2,
                span: SpanId::NONE,
            },
        );
        sim.run();
        let mb = sim.component::<Mailbox<MemChunk>>(chunks);
        assert_eq!(&mb.items()[0].1.data[..], b"hello accl");
    }

    #[test]
    fn virtual_addresses_require_tlb() {
        let (mut sim, bus, chunks, _) = setup(MemBusConfig::coyote());
        sim.component_mut::<MemoryBus>(bus)
            .map_range(0x8000, 4096, MemTarget::Device);
        sim.component_mut::<MemoryBus>(bus)
            .device_write(0x8000, &[5u8; 16]);
        sim.post(
            Endpoint::new(bus, ports::READ),
            Time::ZERO,
            MemReadReq {
                addr: MemAddr::Virt(0x8000),
                len: 16,
                data_to: Endpoint::of(chunks),
                done_to: None,
                tag: 0,
                span: SpanId::NONE,
            },
        );
        sim.run();
        let mb = sim.component::<Mailbox<MemChunk>>(chunks);
        assert_eq!(&mb.items()[0].1.data[..], &[5u8; 16]);
        let (hits, misses, faults) = sim.component::<MemoryBus>(bus).tlb_counters().unwrap();
        assert_eq!((hits, misses, faults), (0, 1, 0));
    }

    #[test]
    fn unmapped_virtual_page_faults_and_costs() {
        let (mut sim, bus, chunks, _) = setup(MemBusConfig::coyote());
        sim.post(
            Endpoint::new(bus, ports::READ),
            Time::ZERO,
            MemReadReq {
                addr: MemAddr::Virt(0xf000_0000),
                len: 16,
                data_to: Endpoint::of(chunks),
                done_to: None,
                tag: 0,
                span: SpanId::NONE,
            },
        );
        sim.run();
        let mb = sim.component::<Mailbox<MemChunk>>(chunks);
        // Delivery must include the 20 us fault penalty.
        assert!(mb.items()[0].0.as_us_f64() >= 20.0);
        let (_, _, faults) = sim.component::<MemoryBus>(bus).tlb_counters().unwrap();
        assert_eq!(faults, 1);
    }

    #[test]
    #[should_panic(expected = "without a TLB")]
    fn virtual_address_without_tlb_panics() {
        let (mut sim, bus, chunks, _) = setup(MemBusConfig::default());
        sim.post(
            Endpoint::new(bus, ports::READ),
            Time::ZERO,
            MemReadReq {
                addr: MemAddr::Virt(0),
                len: 1,
                data_to: Endpoint::of(chunks),
                done_to: None,
                tag: 0,
                span: SpanId::NONE,
            },
        );
        sim.run();
    }

    #[test]
    fn concurrent_reads_share_pipe_bandwidth() {
        let (mut sim, bus, chunks, _) = setup(MemBusConfig::default());
        for tag in 0..2u64 {
            sim.post(
                Endpoint::new(bus, ports::READ),
                Time::ZERO,
                MemReadReq {
                    addr: MemAddr::Phys(MemTarget::Host, tag * 0x1_0000),
                    len: 1 << 20,
                    data_to: Endpoint::of(chunks),
                    done_to: None,
                    tag,
                    span: SpanId::NONE,
                },
            );
        }
        sim.run();
        let last = sim
            .component::<Mailbox<MemChunk>>(chunks)
            .last_arrival()
            .unwrap();
        // Two 1 MiB reads over one PCIe pipe: ~168 us, not ~84 us.
        assert!(last.as_us_f64() > 160.0, "last={last}");
    }
}
