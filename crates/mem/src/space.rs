//! Address-space allocation for simulated buffers.
//!
//! A first-fit free-list allocator: simple, deterministic, and sufficient
//! for driver-style buffer management (the ACCL+ CCL driver allocates
//! communicator Rx buffer pools and user buffers through exactly such an
//! interface).

/// A region of an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Start address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// Exclusive end address.
    pub fn end(&self) -> u64 {
        self.addr + self.len
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

/// A first-fit allocator over `[base, base+size)`.
#[derive(Debug, Clone)]
pub struct AddrSpace {
    base: u64,
    size: u64,
    /// Free regions, sorted by address, non-adjacent (coalesced).
    free: Vec<Region>,
    allocated: u64,
}

impl AddrSpace {
    /// Creates an address space covering `[base, base + size)`.
    pub fn new(base: u64, size: u64) -> Self {
        assert!(size > 0, "empty address space");
        AddrSpace {
            base,
            size,
            free: vec![Region {
                addr: base,
                len: size,
            }],
            allocated: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.size
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Allocates `len` bytes aligned to `align` (a power of two).
    ///
    /// Returns `None` when no free region fits.
    pub fn alloc(&mut self, len: u64, align: u64) -> Option<Region> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(len > 0, "zero-length allocation");
        for i in 0..self.free.len() {
            let r = self.free[i];
            let aligned = (r.addr + align - 1) & !(align - 1);
            let pad = aligned - r.addr;
            if pad + len <= r.len {
                // Split: [r.addr, aligned) stays free, [aligned, aligned+len)
                // is allocated, the tail stays free.
                let tail_len = r.len - pad - len;
                let mut replace = Vec::with_capacity(2);
                if pad > 0 {
                    replace.push(Region {
                        addr: r.addr,
                        len: pad,
                    });
                }
                if tail_len > 0 {
                    replace.push(Region {
                        addr: aligned + len,
                        len: tail_len,
                    });
                }
                self.free.splice(i..=i, replace);
                self.allocated += len;
                return Some(Region { addr: aligned, len });
            }
        }
        None
    }

    /// Returns a region to the free list, coalescing neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps the free list (double free) or lies
    /// outside the space.
    pub fn free(&mut self, region: Region) {
        assert!(
            region.addr >= self.base && region.end() <= self.base + self.size,
            "free of region outside the space"
        );
        let idx = self.free.partition_point(|r| r.addr < region.addr);
        if let Some(next) = self.free.get(idx) {
            assert!(region.end() <= next.addr, "double free / overlap");
        }
        if idx > 0 {
            assert!(
                self.free[idx - 1].end() <= region.addr,
                "double free / overlap"
            );
        }
        self.free.insert(idx, region);
        self.allocated -= region.len;
        // Coalesce with neighbours.
        if idx + 1 < self.free.len() && self.free[idx].end() == self.free[idx + 1].addr {
            self.free[idx].len += self.free[idx + 1].len;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].end() == self.free[idx].addr {
            self.free[idx - 1].len += self.free[idx].len;
            self.free.remove(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut s = AddrSpace::new(0x1000, 1 << 20);
        let a = s.alloc(100, 64).unwrap();
        let b = s.alloc(100, 64).unwrap();
        assert_eq!(a.addr % 64, 0);
        assert_eq!(b.addr % 64, 0);
        assert!(a.end() <= b.addr || b.end() <= a.addr);
        assert_eq!(s.allocated_bytes(), 200);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut s = AddrSpace::new(0, 1024);
        assert!(s.alloc(1024, 1).is_some());
        assert!(s.alloc(1, 1).is_none());
    }

    #[test]
    fn free_coalesces_for_reuse() {
        let mut s = AddrSpace::new(0, 1024);
        let a = s.alloc(512, 1).unwrap();
        let b = s.alloc(512, 1).unwrap();
        s.free(a);
        s.free(b);
        assert_eq!(s.allocated_bytes(), 0);
        // Only possible if the two halves coalesced.
        assert!(s.alloc(1024, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s = AddrSpace::new(0, 1024);
        let a = s.alloc(100, 1).unwrap();
        s.free(a);
        s.free(a);
    }

    #[test]
    fn alignment_padding_stays_usable() {
        let mut s = AddrSpace::new(1, 4096);
        let a = s.alloc(100, 256).unwrap();
        assert_eq!(a.addr % 256, 0);
        // The padding before `a` is still free for small allocations.
        let small = s.alloc(100, 1).unwrap();
        assert!(small.addr < a.addr);
    }
}
