//! # accl-mem — per-node memory substrate
//!
//! Models the two memory organizations the paper targets:
//!
//! - **Partitioned memory (Vitis/XRT)**: host DRAM and card memory are
//!   separate; FPGA kernels reach only card memory, and host buffers must be
//!   *staged* through the [`xdma::XdmaEngine`].
//! - **Shared virtual memory (Coyote)**: a [`tlb::Tlb`]-fronted
//!   [`bus::MemoryBus`] lets FPGA-side masters address host and device pages
//!   uniformly through virtual addresses, with eager driver mapping avoiding
//!   page faults.
//!
//! All memories hold real bytes ([`store::MemStore`]) so collectives and the
//! DLRM use case are verified end-to-end, not just timed.

#![warn(missing_docs)]

pub mod bus;
pub mod space;
pub mod store;
pub mod tlb;
pub mod xdma;

pub use bus::{MemAddr, MemBusConfig, MemChunk, MemDone, MemReadReq, MemWriteReq, MemoryBus};
pub use space::{AddrSpace, Region};
pub use store::{MemStore, PAGE_SIZE};
pub use tlb::{MemTarget, Tlb, TlbConfig};
pub use xdma::{XdmaCopy, XdmaDir, XdmaDone, XdmaEngine};
