//! Coyote-style memory translation: software-populated TLB with page faults.
//!
//! Coyote's shell translates FPGA-side virtual addresses through a TLB that
//! the host driver populates; an unmapped page raises an interrupt to the
//! CPU and costs a page-fault round trip (§4.2). The ACCL+ CoyoteBuffer
//! class *eagerly maps* its pages at allocation time precisely to avoid
//! that penalty — behaviour this model lets us quantify.

use std::collections::BTreeMap;

use accl_sim::time::Dur;
use serde::{Deserialize, Serialize};

use crate::store::PAGE_SIZE;

/// Where a page physically resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTarget {
    /// Host DRAM, reached over PCIe.
    Host,
    /// FPGA card memory (HBM/DDR).
    Device,
}

/// TLB geometry and penalty configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (ways per set). The paper's integration work increased
    /// this for ACCL+ (§4.2).
    pub ways: usize,
    /// Cost of a TLB miss whose page *is* mapped (walk of the shell's
    /// mapping structures).
    pub miss_penalty_ns: u64,
    /// Cost of an unmapped page: interrupt, host fault handler, map, retry.
    pub fault_penalty_us: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            sets: 64,
            ways: 4,
            miss_penalty_ns: 250,
            fault_penalty_us: 20,
        }
    }
}

/// Result of translating one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical location of the page.
    pub target: MemTarget,
    /// Modelled cost of the lookup.
    pub penalty: Dur,
    /// Whether a page fault was taken.
    pub faulted: bool,
}

/// A software-populated page map plus a set-associative TLB cache.
pub struct Tlb {
    cfg: TlbConfig,
    /// Driver-populated translations (the "mapped pages").
    map: BTreeMap<u64, MemTarget>,
    /// TLB cache: per-set LRU lists of virtual page numbers (front = MRU).
    cache: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
    faults: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.sets > 0 && cfg.ways > 0, "degenerate TLB geometry");
        Tlb {
            cfg,
            map: BTreeMap::new(),
            cache: vec![Vec::new(); cfg.sets],
            hits: 0,
            misses: 0,
            faults: 0,
        }
    }

    /// Maps the pages covering `[addr, addr+len)` to `target`
    /// (what `CoyoteBuffer` does eagerly at allocation).
    pub fn map_range(&mut self, addr: u64, len: u64, target: MemTarget) {
        let first = addr / PAGE_SIZE;
        let last = (addr + len.max(1) - 1) / PAGE_SIZE;
        for vpn in first..=last {
            self.map.insert(vpn, target);
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// (hits, misses, faults) observed so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.faults)
    }

    /// Translates the page containing `addr`.
    ///
    /// Unmapped pages fault and are then mapped to host memory (the Coyote
    /// fault handler pins the host page and installs the translation).
    pub fn translate(&mut self, addr: u64) -> Translation {
        let vpn = addr / PAGE_SIZE;
        let set = (vpn as usize) % self.cfg.sets;
        if let Some(pos) = self.cache[set].iter().position(|&v| v == vpn) {
            // Hit: refresh LRU position.
            let v = self.cache[set].remove(pos);
            self.cache[set].insert(0, v);
            self.hits += 1;
            let target = self.map[&vpn];
            return Translation {
                target,
                penalty: Dur::ZERO,
                faulted: false,
            };
        }
        // Miss: consult the mapping structures.
        let (target, penalty, faulted) = match self.map.get(&vpn) {
            Some(&t) => (t, Dur::from_ns(self.cfg.miss_penalty_ns), false),
            None => {
                self.faults += 1;
                self.map.insert(vpn, MemTarget::Host);
                (
                    MemTarget::Host,
                    Dur::from_us(self.cfg.fault_penalty_us),
                    true,
                )
            }
        };
        self.misses += 1;
        // Fill, evicting LRU if the set is full.
        if self.cache[set].len() >= self.cfg.ways {
            self.cache[set].pop();
        }
        self.cache[set].insert(0, vpn);
        Translation {
            target,
            penalty,
            faulted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapped_page_misses_then_hits() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.map_range(0x1_0000, PAGE_SIZE, MemTarget::Device);
        let t1 = tlb.translate(0x1_0000);
        assert_eq!(t1.target, MemTarget::Device);
        assert!(!t1.faulted);
        assert_eq!(t1.penalty, Dur::from_ns(250));
        let t2 = tlb.translate(0x1_0008);
        assert_eq!(t2.penalty, Dur::ZERO);
        assert_eq!(tlb.counters(), (1, 1, 0));
    }

    #[test]
    fn unmapped_page_faults_once() {
        let mut tlb = Tlb::new(TlbConfig::default());
        let t1 = tlb.translate(0xdead_0000);
        assert!(t1.faulted);
        assert_eq!(t1.target, MemTarget::Host);
        assert_eq!(t1.penalty, Dur::from_us(20));
        // Fault handler mapped it; next access hits the cache.
        let t2 = tlb.translate(0xdead_0004);
        assert!(!t2.faulted);
        assert_eq!(t2.penalty, Dur::ZERO);
        assert_eq!(tlb.counters(), (1, 1, 1));
    }

    #[test]
    fn map_range_covers_partial_pages() {
        let mut tlb = Tlb::new(TlbConfig::default());
        // 1 byte shy of two full pages starting mid-page: must map 3 pages.
        tlb.map_range(PAGE_SIZE / 2, 2 * PAGE_SIZE - 1, MemTarget::Device);
        assert_eq!(tlb.mapped_pages(), 3);
    }

    #[test]
    fn low_associativity_thrashes() {
        // 1-way, 1-set TLB: alternating pages always miss.
        let cfg = TlbConfig {
            sets: 1,
            ways: 1,
            ..TlbConfig::default()
        };
        let mut tlb = Tlb::new(cfg);
        tlb.map_range(0, 4 * PAGE_SIZE, MemTarget::Device);
        for _ in 0..4 {
            tlb.translate(0);
            tlb.translate(PAGE_SIZE);
        }
        let (hits, misses, _) = tlb.counters();
        assert_eq!(hits, 0);
        assert_eq!(misses, 8);
        // Higher associativity fixes it — the paper's Coyote modification.
        let mut tlb = Tlb::new(TlbConfig {
            sets: 1,
            ways: 2,
            ..TlbConfig::default()
        });
        tlb.map_range(0, 4 * PAGE_SIZE, MemTarget::Device);
        for _ in 0..4 {
            tlb.translate(0);
            tlb.translate(PAGE_SIZE);
        }
        let (hits, misses, _) = tlb.counters();
        assert_eq!((hits, misses), (6, 2));
    }
}
