//! Fixture tests for the parser-backed rule families — resource-pairing,
//! digest-coverage, exhaustive-handling, layering, time-safety — plus the
//! two planted-bug integration tests from the acceptance criteria: a
//! deleted credit-release call and a deleted span `End`, each caught by
//! the flow-sensitive resource-pairing rule before the runtime deadlock
//! detector would ever see the leak.

use accl_lint::lint_source;

fn gating(file: &str, src: &str) -> Vec<(&'static str, u32)> {
    lint_source(file, src)
        .into_iter()
        .filter(|f| f.allowed.is_none())
        .map(|f| (f.rule, f.line))
        .collect()
}

fn has_rule(found: &[(&'static str, u32)], rule: &str) -> bool {
    found.iter().any(|&(r, _)| r == rule)
}

// ---------------------------------------------------------------------------
// resource-pairing: span lifecycle
// ---------------------------------------------------------------------------

#[test]
fn span_leaked_on_early_return_is_flagged() {
    let src = "
fn run_op(&mut self, ctx: &mut Ctx<'_>, req: OpReq) {
    let span = ctx.span_begin(\"uc.op\", req.parent);
    if req.bytes == 0 {
        return;
    }
    ctx.span_end(span);
}
";
    let found = gating("fixture.rs", src);
    assert!(
        has_rule(&found, "resource-pairing"),
        "early return with the span still open must be flagged: {found:?}"
    );
}

#[test]
fn span_ended_on_every_path_is_clean() {
    let src = "
fn run_op(&mut self, ctx: &mut Ctx<'_>, req: OpReq) {
    let span = ctx.span_begin(\"uc.op\", req.parent);
    if req.bytes == 0 {
        ctx.span_end(span);
        return;
    }
    self.issue(ctx, req);
    ctx.span_end(span);
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

#[test]
fn span_escaping_into_a_struct_transfers_ownership() {
    // The XDMA pattern: the span handle is stashed in the in-flight table
    // and ended by a later completion handler — not a leak.
    let src = "
fn start_copy(&mut self, ctx: &mut Ctx<'_>, req: XdmaCopy) {
    let span = ctx.span_begin_attrs(\"mem.xdma.copy\", req.span, &[]);
    self.inflight.insert(req.tag, CopyState { req, written: 0, span });
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

#[test]
fn span_leak_behind_a_diverging_path_is_exempt() {
    let src = "
fn run_op(&mut self, ctx: &mut Ctx<'_>, req: OpReq) {
    let span = ctx.span_begin(\"uc.op\", req.parent);
    if req.bytes == 0 {
        panic!(\"zero-length op\");
    }
    ctx.span_end(span);
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

// ---------------------------------------------------------------------------
// resource-pairing: credit consumption
// ---------------------------------------------------------------------------

#[test]
fn swallowed_credit_return_is_flagged() {
    let src = "
fn on_credit(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
    match payload.try_downcast::<accl_net::CreditReturn>() {
        Ok(ret) => {
            ctx.stats().add(\"poe.credits_seen\", u64::from(ret.credits));
        }
        Err(other) => {
            drop(other);
        }
    }
}
";
    let found = gating("fixture.rs", src);
    assert!(
        has_rule(&found, "resource-pairing"),
        "an Ok(CreditReturn) arm that never credits its gate must be flagged: {found:?}"
    );
}

#[test]
fn credited_and_retransmitted_credit_return_is_clean() {
    let src = "
fn on_credit(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
    match payload.try_downcast::<accl_net::CreditReturn>() {
        Ok(ret) => {
            for frame in self.gate.credit(ret.credits, self.credit_ep) {
                ctx.send(self.net_tx, self.latency, frame);
            }
        }
        Err(other) => {
            drop(other);
        }
    }
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

#[test]
fn discarded_gate_result_is_flagged() {
    let src = "
fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: Frame) {
    let _ = self.gate.admit(frame, self.credit_ep);
}
";
    let found = gating("fixture.rs", src);
    assert!(has_rule(&found, "resource-pairing"), "{found:?}");
    // Binding and using the released frames is the correct shape.
    let good = "
fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: Frame) {
    for out in self.gate.admit(frame, self.credit_ep) {
        ctx.send(self.net_tx, self.latency, out);
    }
}
";
    assert_eq!(gating("fixture.rs", good), vec![]);
}

// ---------------------------------------------------------------------------
// resource-pairing: counter custody
// ---------------------------------------------------------------------------

#[test]
fn release_side_counter_mutation_outside_custodian_is_flagged() {
    let src = "
impl Rbm {
    fn sneak_release(&mut self) {
        self.free_bufs += 1;
    }
    fn spend(&mut self) {
        self.free_bufs -= 1;
    }
    fn release_buf(&mut self) {
        self.free_bufs += 1;
    }
}
";
    let found = gating("crates/cclo/src/rbm.rs", src);
    let custody: Vec<_> = found
        .iter()
        .filter(|&&(r, _)| r == "resource-pairing")
        .collect();
    assert_eq!(
        custody.len(),
        1,
        "only the out-of-custody `+=` (not the acquire-side `-=`, not the \
         custodian) should be flagged: {found:?}"
    );
    assert_eq!(custody[0].1, 4, "{found:?}");
}

// ---------------------------------------------------------------------------
// digest-coverage
// ---------------------------------------------------------------------------

#[test]
fn component_without_state_digest_is_flagged() {
    let src = "
impl Component for Switch {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        drop((ctx, port, payload));
    }
}
";
    let found = gating("fixture.rs", src);
    assert!(has_rule(&found, "digest-coverage"), "{found:?}");
}

#[test]
fn component_with_state_digest_is_clean() {
    let src = "
impl Component for Switch {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        drop((ctx, port, payload));
    }
    fn state_digest(&self) -> Option<u64> {
        let mut h = 0u64;
        accl_sim::digest::fnv_fold(&mut h, &self.frames.to_le_bytes());
        Some(h)
    }
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

#[test]
fn non_component_impls_are_not_digest_checked() {
    let src = "
impl fmt::Display for Switch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, \"switch\")
    }
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

// ---------------------------------------------------------------------------
// exhaustive-handling
// ---------------------------------------------------------------------------

#[test]
fn wildcard_over_protocol_enum_is_flagged() {
    let src = "
fn apply(&mut self, action: FaultAction) {
    match action {
        FaultAction::Drop => self.dropped += 1,
        _ => {}
    }
}
";
    let found = gating("fixture.rs", src);
    assert!(has_rule(&found, "exhaustive-handling"), "{found:?}");
    // A bare lowercase binding is the same silent catch-all.
    let bound = "
fn apply(&mut self, status: CmdStatus) {
    match status {
        CmdStatus::Ok => self.done += 1,
        other => self.note(other),
    }
}
";
    let found = gating("fixture.rs", bound);
    assert!(has_rule(&found, "exhaustive-handling"), "{found:?}");
}

#[test]
fn wildcard_over_membership_event_is_flagged() {
    // Recovery handlers must take a position on every lifecycle event:
    // a stale `_` arm would silently ignore a new membership transition
    // (and `CclError::Partitioned` carries the same contract).
    let src = "
fn on_membership(&mut self, ev: MembershipEvent) {
    match ev {
        MembershipEvent::Suspected { node } => self.suspect(node),
        MembershipEvent::Confirmed { node } => self.confirm(node),
        _ => {}
    }
}
";
    let found = gating("fixture.rs", src);
    assert!(has_rule(&found, "exhaustive-handling"), "{found:?}");
    let err = "
fn classify(&mut self, e: CclError) {
    match e {
        CclError::Partitioned => self.partitioned += 1,
        _ => self.other += 1,
    }
}
";
    let found = gating("fixture.rs", err);
    assert!(has_rule(&found, "exhaustive-handling"), "{found:?}");
}

#[test]
fn spelled_out_membership_match_is_clean() {
    let src = "
fn on_membership(&mut self, ev: MembershipEvent) {
    match ev {
        MembershipEvent::Suspected { node } => self.suspect(node),
        MembershipEvent::Confirmed { node } => self.confirm(node),
        MembershipEvent::Restarted { node } => self.restarted(node),
        MembershipEvent::Rejoined { node } => self.rejoined(node),
        MembershipEvent::Partitioned { mask } => self.cut(mask),
        MembershipEvent::Healed { mask } => self.heal(mask),
    }
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

#[test]
fn diverging_catch_all_over_protocol_enum_is_clean() {
    let src = "
fn apply(&mut self, action: FaultAction) {
    match action {
        FaultAction::Drop => self.dropped += 1,
        other => panic!(\"unhandled fault action {other:?}\"),
    }
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

#[test]
fn spelled_out_protocol_match_is_clean() {
    let src = "
fn apply(&mut self, action: FaultAction) {
    match action {
        FaultAction::Drop => self.dropped += 1,
        FaultAction::Corrupt(seed) => self.corrupt(seed),
        FaultAction::Delay(d) => self.delay(d),
    }
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

#[test]
fn wildcard_over_unlisted_enum_is_not_flagged() {
    // Only the sim-visible protocol enums carry the contract.
    let src = "
fn apply(&mut self, kind: LocalKind) {
    match kind {
        LocalKind::A => self.a += 1,
        _ => {}
    }
}
";
    assert_eq!(gating("fixture.rs", src), vec![]);
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

#[test]
fn net_depending_on_poe_is_flagged() {
    let found = gating(
        "crates/net/src/fixture.rs",
        "use accl_poe::iface::TxCreditGate;\n",
    );
    assert!(has_rule(&found, "layering"), "{found:?}");
}

#[test]
fn poe_reaching_past_the_net_frame_surface_is_flagged() {
    let found = gating(
        "crates/poe/src/fixture.rs",
        "use accl_net::switch::EgressQueue;\n",
    );
    assert!(has_rule(&found, "layering"), "{found:?}");
    // The frame-level surface stays open to the transport layer.
    assert_eq!(
        gating(
            "crates/poe/src/fixture.rs",
            "use accl_net::frame::Frame;\nuse accl_net::{CreditReturn, NodeAddr};\n",
        ),
        vec![]
    );
}

#[test]
fn swmpi_may_share_the_schedule_ir_but_not_the_engine() {
    let found = gating("crates/swmpi/src/fixture.rs", "use accl_cclo::rbm::Rbm;\n");
    assert!(has_rule(&found, "layering"), "{found:?}");
    assert_eq!(
        gating(
            "crates/swmpi/src/fixture.rs",
            "use accl_cclo::command::CcloCommand;\nuse accl_cclo::firmware::Firmware;\n",
        ),
        vec![]
    );
}

// ---------------------------------------------------------------------------
// time-safety
// ---------------------------------------------------------------------------

#[test]
fn raw_picosecond_arithmetic_is_flagged() {
    let add = "fn f(t: Time, d: Dur) -> u64 { t.as_ps() + d.as_ps() }";
    assert!(has_rule(&gating("fixture.rs", add), "time-safety"), "{add}");
    let mul = "fn f(d: Dur) -> u64 { 100 * d.as_ps() }";
    assert!(has_rule(&gating("fixture.rs", mul), "time-safety"), "{mul}");
    let ctor = "fn f(n: u64, per: u64) -> Dur { Dur::from_ps(n * per) }";
    assert!(
        has_rule(&gating("fixture.rs", ctor), "time-safety"),
        "{ctor}"
    );
}

#[test]
fn widened_and_divided_picosecond_math_is_clean() {
    // Division cannot overflow; widening to u128 before multiplying is the
    // documented escape hatch (the trace latency table does exactly this).
    let div = "fn f(t: Time) -> u64 { t.as_ps() / 1000 }";
    assert_eq!(gating("fixture.rs", div), vec![]);
    let widened =
        "fn f(d: Dur, total: u64) -> u128 { u128::from(d.as_ps()) * 100 / u128::from(total) }";
    assert_eq!(gating("fixture.rs", widened), vec![]);
    let checked = "fn f(a: Dur, b: Dur) -> Dur { a + b }";
    assert_eq!(gating("fixture.rs", checked), vec![]);
}

// ---------------------------------------------------------------------------
// planted-bug integration tests (acceptance criteria)
// ---------------------------------------------------------------------------

#[test]
fn planted_bug_deleted_credit_release_is_caught() {
    // Take the real UDP engine source, verify it is clean, then plant the
    // bug the chaos harness hunts at runtime: the CREDIT handler consumes
    // the CreditReturn without crediting its gate. The analyzer must catch
    // it statically.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../poe/src/udp.rs");
    let src = std::fs::read_to_string(path).expect("read crates/poe/src/udp.rs");
    let clean = gating("crates/poe/src/udp.rs", &src);
    assert_eq!(clean, vec![], "shipping UDP engine must lint clean");

    let planted = src.replace("self.gate.credit(ret.credits, credit_ep)", "[]");
    assert_ne!(
        planted, src,
        "credit-release site not found — handler moved?"
    );
    let found = gating("crates/poe/src/udp.rs", &planted);
    assert!(
        found.iter().any(|&(r, _)| r == "resource-pairing"),
        "deleting the gate.credit call must trip resource-pairing: {found:?}"
    );
}

#[test]
fn planted_bug_deleted_span_end_is_caught() {
    // An op handler in the engine's house style: span opened at entry,
    // ended on both the early-out and the fall-through path. Deleting one
    // `span_end` (the early-out one) leaves a path that exits with the
    // span open — the leak the trace ring would otherwise carry forever.
    let handler = "
fn run_op(&mut self, ctx: &mut Ctx<'_>, req: OpReq) {
    let span = ctx.span_begin_attrs(\"uc.op\", req.span, &[]);
    if req.bytes == 0 {
        ctx.span_end(span);
        return;
    }
    self.issue(ctx, req);
    ctx.span_end(span);
}
";
    assert_eq!(gating("fixture.rs", handler), vec![]);

    let planted = handler.replacen("ctx.span_end(span);", "", 1);
    assert_ne!(planted, handler);
    let found = gating("fixture.rs", &planted);
    assert!(
        found.iter().any(|&(r, _)| r == "resource-pairing"),
        "deleting the early-out span_end must trip resource-pairing: {found:?}"
    );
}

// ---------------------------------------------------------------------------
// resource-pairing: flow-edge lifecycle
// ---------------------------------------------------------------------------

#[test]
fn flow_handle_dropped_on_early_return_is_flagged() {
    let src = "
fn send_seg(&mut self, ctx: &mut Ctx<'_>, seg: Seg) {
    let flow = ctx.flow_begin(\"poe.flow\", seg.span);
    if seg.bytes == 0 {
        return;
    }
    self.wire(ctx, seg.with_flow(flow));
}
";
    let found = gating("fixture.rs", src);
    assert!(
        has_rule(&found, "resource-pairing"),
        "early return with the flow handle unjoined and unescaped must be flagged: {found:?}"
    );
}

#[test]
fn flow_handle_joined_or_escaping_is_clean() {
    // The shipping Tx-side shape: the handle is stamped into the frame
    // (escape — the Rx side joins it later) …
    let tx = "
fn send_seg(&mut self, ctx: &mut Ctx<'_>, seg: Seg) {
    let flow = ctx.flow_begin(\"poe.flow\", seg.span);
    self.wire(ctx, seg.with_flow(flow));
}
";
    assert_eq!(gating("fixture.rs", tx), vec![]);
    // … and a local loopback that joins the handle itself.
    let local = "
fn loopback(&mut self, ctx: &mut Ctx<'_>, span: SpanId, rx_span: SpanId) {
    let flow = ctx.flow_begin(\"poe.flow\", span);
    ctx.flow_end(\"poe.flow\", flow, rx_span);
}
";
    assert_eq!(gating("fixture.rs", local), vec![]);
}

#[test]
fn flow_emit_without_any_join_in_the_corpus_is_flagged() {
    // The workspace-level half: both sides of a handoff live in different
    // functions (often different files), so the emit/join name match runs
    // over every collected site at once.
    let tx = accl_lint::flow_edge_uses_in(
        "tx.rs",
        "fn a(&mut self, ctx: &mut Ctx<'_>, s: SpanId) -> FlowId { ctx.flow_begin(\"poe.flow\", s) }",
    );
    let rx = accl_lint::flow_edge_uses_in(
        "rx.rs",
        "fn b(&mut self, ctx: &mut Ctx<'_>, f: FlowId, s: SpanId) { ctx.flow_end(\"poe.flow\", f, s) }",
    );
    let paired: Vec<_> = tx.iter().cloned().chain(rx.iter().cloned()).collect();
    assert!(accl_lint::rules::flow_join_findings(&paired).is_empty());

    // Tx alone: the edge is emitted but nothing in the corpus joins it.
    let findings = accl_lint::rules::flow_join_findings(&tx);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "resource-pairing");
    assert!(findings[0].message.contains("poe.flow"), "{findings:?}");

    // Rx alone: an orphaned join is just as wrong.
    assert_eq!(accl_lint::rules::flow_join_findings(&rx).len(), 1);
}

#[test]
fn planted_bug_deleted_flow_join_is_caught_workspace_wide() {
    // Take the real UDP engine, verify its flow edges pair, then delete
    // the Rx-side join. The per-file walk cannot see the loss (the handle
    // rides inside the frame), but the corpus-level name match must.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../poe/src/udp.rs");
    let src = std::fs::read_to_string(path).expect("read crates/poe/src/udp.rs");
    let clean = accl_lint::flow_edge_uses_in("crates/poe/src/udp.rs", &src);
    assert!(clean.iter().any(|u| u.emitted) && clean.iter().any(|u| !u.emitted));
    assert!(accl_lint::rules::flow_join_findings(&clean).is_empty());

    let planted = src.replace("ctx.flow_end(\"poe.flow\", frame.flow, rx_span);", "");
    assert_ne!(
        planted, src,
        "flow join site not found — receive path moved?"
    );
    let uses = accl_lint::flow_edge_uses_in("crates/poe/src/udp.rs", &planted);
    let findings = accl_lint::rules::flow_join_findings(&uses);
    assert!(
        !findings.is_empty(),
        "deleting the Rx-side flow_end must trip the workspace flow-pairing check"
    );
    assert!(findings.iter().all(|f| f.rule == "resource-pairing"));
}
