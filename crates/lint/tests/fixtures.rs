//! Fixture tests for the determinism linter: each rule has a positive
//! snippet (must be flagged), a negative snippet (must stay clean), and an
//! allow-annotated snippet (flagged but audited).

use accl_lint::{lint_source, Severity};

fn rules(src: &str) -> Vec<(&'static str, u32, bool)> {
    lint_source("fixture.rs", src)
        .into_iter()
        .map(|f| (f.rule, f.line, f.allowed.is_some()))
        .collect()
}

fn gating_rules(src: &str) -> Vec<&'static str> {
    lint_source("fixture.rs", src)
        .into_iter()
        .filter(|f| f.allowed.is_none())
        .map(|f| f.rule)
        .collect()
}

#[test]
fn hashmap_state_is_flagged() {
    let src = "
use std::collections::HashMap;
struct S { sessions: HashMap<u32, u64> }
";
    let found = rules(src);
    assert!(
        found
            .iter()
            .filter(|(r, _, _)| *r == "unordered-collection")
            .count()
            >= 2,
        "both the import and the field should be flagged: {found:?}"
    );
    assert!(found
        .iter()
        .any(|&(r, line, _)| r == "unordered-collection" && line == 3));
}

#[test]
fn hashmap_iteration_is_flagged_at_the_iteration_site() {
    let src = "
struct S { qps: HashMap<u32, u64> }
impl S {
    fn sum(&self) -> u64 { self.qps.values().sum() }
    fn walk(&self) { for kv in &self.qps { drop(kv); } }
}
";
    let found = rules(src);
    assert!(
        found
            .iter()
            .any(|&(r, line, _)| r == "unordered-iteration" && line == 4),
        "`.values()` on a tracked HashMap field must be flagged: {found:?}"
    );
    assert!(
        found
            .iter()
            .any(|&(r, line, _)| r == "unordered-iteration" && line == 5),
        "`for … in &map` must be flagged: {found:?}"
    );
}

#[test]
fn btreemap_is_clean() {
    let src = "
use std::collections::BTreeMap;
struct S { sessions: BTreeMap<u32, u64> }
impl S {
    fn sum(&self) -> u64 { self.sessions.values().sum() }
}
";
    assert!(gating_rules(src).is_empty());
}

#[test]
fn wall_clock_and_entropy_are_flagged() {
    let src = "
fn bad() {
    let t = std::time::Instant::now();
    let mut rng = rand::thread_rng();
    drop((t, rng));
}
";
    let found = gating_rules(src);
    assert!(found.contains(&"wall-clock"), "{found:?}");
    assert!(found.contains(&"ambient-entropy"), "{found:?}");
}

#[test]
fn qualified_enum_variant_named_instant_is_not_wall_clock() {
    // `SpanEventKind::Instant` (the trace module's point event) is a
    // qualified item of another type, not `std::time::Instant`.
    let clean = "
fn f(kind: SpanEventKind) -> bool {
    matches!(kind, SpanEventKind::Instant | SpanEventKind::Begin)
}
";
    assert!(gating_rules(clean).is_empty(), "{:?}", rules(clean));
    // The real clock stays banned in every spelling that can reach it.
    for bad in [
        "use std::time::Instant;",
        "use std::time::{Duration, Instant};",
        "fn f() { let t = Instant::now(); drop(t); }",
        "fn f() -> std::time::Instant { std::time::Instant::now() }",
    ] {
        assert!(gating_rules(bad).contains(&"wall-clock"), "{bad}");
    }
}

#[test]
fn float_in_time_constructor_is_flagged_integer_is_not() {
    let bad = "fn f(bytes: u64) -> Dur { Dur::from_ps((bytes as f64 * 3.2) as u64) }";
    assert!(gating_rules(bad).contains(&"float-timing"), "{bad}");
    let bad2 = "fn f(x: u64) -> Time { Time::from_ns(x.pow(2) as u64 + 1.5 as u64) }";
    assert!(gating_rules(bad2).contains(&"float-timing"));
    // Unchecked integer multiplication inside `from_ps` is the time-safety
    // rule's territory now; pure division cannot overflow and stays clean.
    let good = "fn f(bytes: u64) -> Dur { Dur::from_ps(bytes / 10) }";
    assert!(gating_rules(good).is_empty(), "{good}");
}

#[test]
fn tie_prone_unstable_sorts_warn_but_value_sorts_do_not() {
    let bad = "fn f(v: &mut Vec<(u64, u64)>) { v.sort_unstable_by_key(|&(a, _)| a); }";
    let found = lint_source("fixture.rs", bad);
    assert!(found
        .iter()
        .any(|f| f.rule == "unstable-tie-sort" && f.severity == Severity::Warn));
    let good = "fn f(v: &mut Vec<u64>) { v.sort_unstable(); }";
    assert!(gating_rules(good).is_empty());
}

#[test]
fn allow_annotation_audits_a_finding() {
    let src = "
fn f(v: &mut Vec<(u64, u64)>) {
    // allow_nondeterminism(unstable-tie-sort): keys are unique by construction
    v.sort_unstable_by_key(|&(a, _)| a);
}
";
    let found = rules(src);
    assert_eq!(
        found
            .iter()
            .filter(|&&(r, _, allowed)| r == "unstable-tie-sort" && allowed)
            .count(),
        1,
        "{found:?}"
    );
    assert!(gating_rules(src).is_empty());
}

#[test]
fn same_line_allow_annotation_works() {
    let src =
        "fn f(v: &mut Vec<u64>) { v.sort_unstable_by(|a, b| a.cmp(b)); } // allow_nondeterminism(unstable-tie-sort): total order\n";
    assert!(gating_rules(src).is_empty());
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = "
// allow_nondeterminism(wall-clock): wrong rule
let m: HashMap<u32, u32> = HashMap::new();
";
    assert!(gating_rules(src).contains(&"unordered-collection"));
}

#[test]
fn malformed_allow_is_itself_a_finding() {
    let src = "
// allow_nondeterminism: no rule name given
fn f() {}
";
    assert!(gating_rules(src).contains(&"bad-allow-annotation"));
}

#[test]
fn cfg_test_items_are_skipped() {
    let src = "
struct S;
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        let _ = std::time::Instant::now();
        drop(m);
    }
}
";
    assert!(
        gating_rules(src).is_empty(),
        "test-only code may observe nondeterminism: {:?}",
        rules(src)
    );
}

#[test]
fn strings_and_comments_are_not_findings() {
    let src = r##"
// HashMap mentioned in a comment is fine
fn f() -> &'static str { "Instant::now and thread_rng in a string" }
"##;
    assert!(gating_rules(src).is_empty());
}

#[test]
fn trace_module_passes_all_rules() {
    // The tracing subsystem is part of the simulator's determinism
    // contract (span ids feed golden digests), so the real module source
    // must come through the linter with zero gating findings — not as a
    // synthetic snippet, but the file that ships.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../sim/src/trace.rs");
    let src = std::fs::read_to_string(path).expect("read crates/sim/src/trace.rs");
    let findings = lint_source("crates/sim/src/trace.rs", &src);
    let gating: Vec<_> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    assert!(
        gating.is_empty(),
        "trace module has unaudited determinism findings: {gating:?}"
    );
}

#[test]
fn injected_hazard_in_sim_crate_fails_the_gate() {
    // The CI-gate scenario from the acceptance criteria: a HashMap iteration
    // injected into a kernel-like snippet is caught as a deny finding.
    let src = "
pub struct Kernel { pending: HashMap<u64, Event> }
impl Kernel {
    pub fn flush(&mut self) {
        for (_, ev) in self.pending.drain() { dispatch(ev); }
    }
}
";
    let found = lint_source("crates/sim/src/kernel.rs", src);
    assert!(found.iter().any(|f| f.rule == "unordered-iteration"
        && f.severity == Severity::Deny
        && f.allowed.is_none()));
}
