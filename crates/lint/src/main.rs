//! CLI entry point: `cargo run -p accl-lint [workspace-root]`.
//!
//! Lints the sim-visible crates and exits nonzero on any unannotated
//! finding — the CI determinism gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(find_workspace_root);
    let findings = match accl_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "accl-lint: cannot walk workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let mut gating = 0usize;
    let mut allowed = 0usize;
    for f in &findings {
        println!("{f}");
        if f.allowed.is_some() {
            allowed += 1;
        } else {
            gating += 1;
        }
    }
    println!(
        "accl-lint: {gating} finding(s), {allowed} audited exception(s) across {} crate(s)",
        accl_lint::LINTED_CRATES.len()
    );
    if gating > 0 {
        eprintln!(
            "accl-lint: determinism gate FAILED — fix the findings above or annotate audited \
             exceptions with `// allow_nondeterminism(rule): reason`"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the first dir containing a
/// `crates/` subdirectory and a `Cargo.toml` (the workspace root), so the
/// binary works from any subdirectory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("current dir");
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
