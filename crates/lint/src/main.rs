//! CLI entry point: `cargo run -p accl-lint -- [--workspace] [--json]
//! [--audit-allows] [workspace-root]`.
//!
//! Lints the sim-visible crates and exits with a CI-friendly code:
//!
//! * `0` — clean (no unaudited findings; in `--audit-allows` mode, also no
//!   stale annotations)
//! * `1` — findings (or stale allows under `--audit-allows`)
//! * `2` — internal error (cannot walk/read the workspace, bad usage)
//!
//! `--json` switches stdout to one JSON object per finding (a stream CI can
//! archive as an artifact); the human summary moves to stderr.

use std::path::PathBuf;
use std::process::ExitCode;

use accl_lint::{Finding, StaleAllow};

struct Opts {
    root: Option<PathBuf>,
    json: bool,
    audit_allows: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        json: false,
        audit_allows: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            // `--workspace` is the (only) default mode; accepted for
            // explicitness in CI invocations.
            "--workspace" => {}
            "--json" => opts.json = true,
            "--audit-allows" => opts.audit_allows = true,
            "--help" | "-h" => {
                return Err("usage: accl-lint [--workspace] [--json] [--audit-allows] \
                            [workspace-root]"
                    .into());
            }
            s if s.starts_with('-') => return Err(format!("unknown flag `{s}`")),
            path => {
                if opts.root.replace(PathBuf::from(path)).is_some() {
                    return Err("more than one workspace root given".into());
                }
            }
        }
    }
    Ok(opts)
}

/// Minimal JSON string escaping (the only non-trivial values are messages
/// and paths; the crate is dependency-free by construction).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    let allowed = match &f.allowed {
        Some(r) => format!("\"{}\"", json_escape(r)),
        None => "null".into(),
    };
    format!(
        "{{\"kind\":\"finding\",\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\
         \"severity\":\"{}\",\"message\":\"{}\",\"allowed\":{}}}",
        json_escape(&f.file),
        f.line,
        f.rule,
        f.severity,
        json_escape(&f.message),
        allowed
    )
}

fn stale_json(s: &StaleAllow) -> String {
    format!(
        "{{\"kind\":\"stale-allow\",\"file\":\"{}\",\"line\":{},\"rule\":\"{}\"}}",
        json_escape(&s.file),
        s.line,
        json_escape(&s.rule)
    )
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("accl-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = opts.root.clone().unwrap_or_else(find_workspace_root);
    let (findings, stale) = match accl_lint::lint_workspace_full(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "accl-lint: cannot walk workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let mut gating = 0usize;
    let mut allowed = 0usize;
    for f in &findings {
        if opts.json {
            println!("{}", finding_json(f));
        } else {
            println!("{f}");
        }
        if f.allowed.is_some() {
            allowed += 1;
        } else {
            gating += 1;
        }
    }
    let mut stale_gating = 0usize;
    if opts.audit_allows {
        for s in &stale {
            if opts.json {
                println!("{}", stale_json(s));
            } else {
                println!("{s}");
            }
            stale_gating += 1;
        }
    }
    let summary = format!(
        "accl-lint: {gating} finding(s), {allowed} audited exception(s){} across {} crate(s)",
        if opts.audit_allows {
            format!(", {stale_gating} stale allow(s)")
        } else {
            String::new()
        },
        accl_lint::LINTED_CRATES.len()
    );
    if opts.json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    if gating > 0 || stale_gating > 0 {
        eprintln!(
            "accl-lint: determinism gate FAILED — fix the findings above or annotate audited \
             exceptions with `// allow_nondeterminism(rule): reason`"
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the first dir containing a
/// `crates/` subdirectory and a `Cargo.toml` (the workspace root), so the
/// binary works from any subdirectory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("current dir");
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
