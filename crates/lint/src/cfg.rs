//! Path-sensitive flow analysis over the statement tree of [`crate::parse`].
//!
//! The engine is a small abstract interpreter: it walks a function body
//! maintaining a *set* of path states, each tracking the multiset of
//! obligations (acquired-but-unreleased resources) open along that path.
//! Branch constructs (`if`, `match`) fork the state set and union the
//! results; loops run to a two-iteration fixpoint (the lattice only moves
//! by key insertions/removals, so one extra pass reaches all reachable
//! balances this analysis distinguishes); `return` nodes and the function
//! end are exit points where every live path must have discharged its
//! obligations.
//!
//! Rules drive the engine by supplying a *leaf scanner* that turns a
//! straight-line token run into a sequence of [`Event`]s. The engine knows
//! nothing about spans or credits — only open/close/escape/diverge.
//!
//! This is equivalent to a CFG walk for the reducible control flow the
//! parser recovers; irreducible flow (`goto` does not exist in Rust) and
//! early exits from closures are out of scope.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::Node;

/// One abstract effect of a straight-line token run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A resource identified by `key` is acquired; `note` describes it for
    /// diagnostics (e.g. the span name or resource class).
    Open {
        key: String,
        line: u32,
        note: String,
    },
    /// The resource `key` is released.
    Close { key: String },
    /// The handle for `key` escapes the function (stored, passed on,
    /// returned): the pairing obligation transfers to the new owner and
    /// this analysis stops tracking it.
    Escape { key: String },
    /// The path diverges (`panic!`, `unreachable!`): no obligations are
    /// checked past this point.
    Diverge,
}

/// An obligation that some path can exit the function without discharging.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Leak {
    /// Key of the leaked resource.
    pub key: String,
    /// Line where it was acquired.
    pub line: u32,
    /// Description supplied at the open site.
    pub note: String,
    /// Line of the exit (`return` or end of function) that leaks it.
    pub exit_line: u32,
}

/// One path's open obligations. `dead` paths (after `return`/`panic!`)
/// carry no further checks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
struct PathState {
    open: BTreeMap<String, (u32, String)>,
    dead: bool,
}

/// Cap on distinct path states tracked per function: beyond this the
/// analysis merges rather than forks, trading precision for termination
/// on pathological match ladders.
const MAX_STATES: usize = 48;

/// Analyzes one function body. `scan` maps each leaf token run to events;
/// `end_line` is used as the exit line for fall-off-the-end paths.
pub fn analyze(
    body: &[Node],
    end_line: u32,
    scan: &mut dyn FnMut(&Node) -> Vec<Event>,
) -> Vec<Leak> {
    let mut leaks = BTreeSet::new();
    let init = vec![PathState::default()];
    let finals = walk(body, init, scan, &mut leaks);
    for st in finals {
        if st.dead {
            continue;
        }
        for (key, (line, note)) in &st.open {
            leaks.insert(Leak {
                key: key.clone(),
                line: *line,
                note: note.clone(),
                exit_line: end_line,
            });
        }
    }
    leaks.into_iter().collect()
}

/// Seeds the analysis with an already-open obligation (used for rules of
/// the form "everything that enters this block must release X").
pub fn analyze_with_seed(
    body: &[Node],
    end_line: u32,
    seed_key: &str,
    seed_line: u32,
    seed_note: &str,
    scan: &mut dyn FnMut(&Node) -> Vec<Event>,
) -> Vec<Leak> {
    let mut leaks = BTreeSet::new();
    let mut st = PathState::default();
    st.open
        .insert(seed_key.to_string(), (seed_line, seed_note.to_string()));
    let finals = walk(body, vec![st], scan, &mut leaks);
    for st in finals {
        if st.dead {
            continue;
        }
        for (key, (line, note)) in &st.open {
            leaks.insert(Leak {
                key: key.clone(),
                line: *line,
                note: note.clone(),
                exit_line: end_line,
            });
        }
    }
    leaks.into_iter().collect()
}

fn apply_events(st: &mut PathState, events: &[Event]) {
    for ev in events {
        if st.dead {
            return;
        }
        match ev {
            Event::Open { key, line, note } => {
                st.open.insert(key.clone(), (*line, note.clone()));
            }
            Event::Close { key } | Event::Escape { key } => {
                st.open.remove(key);
            }
            Event::Diverge => st.dead = true,
        }
    }
}

fn dedup(states: Vec<PathState>) -> Vec<PathState> {
    let set: BTreeSet<PathState> = states.into_iter().collect();
    let mut v: Vec<PathState> = set.into_iter().collect();
    if v.len() > MAX_STATES {
        // Merge the overflow into the first state, unioning obligations:
        // over-approximates (may report a leak a real path pair avoids)
        // but never drops one.
        let mut merged = v[0].clone();
        for st in v.drain(MAX_STATES - 1..) {
            for (k, val) in st.open {
                merged.open.entry(k).or_insert(val);
            }
            merged.dead &= st.dead;
        }
        v.push(merged);
    }
    v
}

fn walk(
    nodes: &[Node],
    mut states: Vec<PathState>,
    scan: &mut dyn FnMut(&Node) -> Vec<Event>,
    leaks: &mut BTreeSet<Leak>,
) -> Vec<PathState> {
    for node in nodes {
        match node {
            Node::Leaf(_) => {
                let events = scan(node);
                for st in &mut states {
                    apply_events(st, &events);
                }
            }
            Node::If {
                cond: _, then, els, ..
            } => {
                // The scanner also sees the condition via the whole node.
                let cond_events = scan(node);
                for st in &mut states {
                    apply_events(st, &cond_events);
                }
                let then_states = walk(then, states.clone(), scan, leaks);
                let else_states = match els {
                    Some(e) => walk(e, states.clone(), scan, leaks),
                    None => states.clone(),
                };
                states = dedup(then_states.into_iter().chain(else_states).collect());
            }
            Node::Match { arms, .. } => {
                let scrut_events = scan(node);
                for st in &mut states {
                    apply_events(st, &scrut_events);
                }
                let mut merged = Vec::new();
                for arm in arms {
                    merged.extend(walk(&arm.body, states.clone(), scan, leaks));
                }
                if arms.is_empty() {
                    merged = states;
                }
                states = dedup(merged);
            }
            Node::Loop { body, .. } => {
                let head_events = scan(node);
                for st in &mut states {
                    apply_events(st, &head_events);
                }
                // Zero or more iterations: two passes reach every balance
                // this lattice distinguishes.
                let one = walk(body, states.clone(), scan, leaks);
                let two = walk(body, one.clone(), scan, leaks);
                states = dedup(states.into_iter().chain(one).chain(two).collect());
            }
            Node::Block(inner) => {
                states = walk(inner, states, scan, leaks);
            }
            Node::Return { line, .. } => {
                let events = scan(node);
                for st in &mut states {
                    apply_events(st, &events);
                    if st.dead {
                        continue;
                    }
                    for (key, (l, note)) in &st.open {
                        leaks.insert(Leak {
                            key: key.clone(),
                            line: *l,
                            note: note.clone(),
                            exit_line: *line,
                        });
                    }
                    st.dead = true;
                }
            }
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind};
    use crate::parse::parse_block;

    /// Toy scanner: `acq(name)` opens, `rel(name)` closes, `esc(name)`
    /// escapes, `boom` diverges.
    fn scan(node: &Node) -> Vec<Event> {
        let toks = match node {
            Node::Leaf(t) => t.clone(),
            Node::Return { toks, .. } => toks.clone(),
            _ => return Vec::new(),
        };
        let mut evs = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "acq" | "rel" | "esc" => {
                        if let Some(arg) = toks.get(i + 2) {
                            let key = arg.text.clone();
                            match t.text.as_str() {
                                "acq" => evs.push(Event::Open {
                                    key,
                                    line: t.line,
                                    note: "r".into(),
                                }),
                                "rel" => evs.push(Event::Close { key }),
                                _ => evs.push(Event::Escape { key }),
                            }
                            i += 3;
                            continue;
                        }
                    }
                    "boom" => evs.push(Event::Diverge),
                    _ => {}
                }
            }
            i += 1;
        }
        evs
    }

    fn leaks_of(src: &str) -> Vec<Leak> {
        let body = parse_block(&lex(src).0);
        analyze(&body, 99, &mut scan)
    }

    #[test]
    fn balanced_is_clean() {
        assert!(leaks_of("acq(a); work(); rel(a);").is_empty());
    }

    #[test]
    fn missing_release_leaks() {
        let l = leaks_of("acq(a); work();");
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].key, "a");
    }

    #[test]
    fn one_branch_missing_release_leaks() {
        let l = leaks_of("acq(a); if c { rel(a); } else { other(); }");
        assert_eq!(l.len(), 1, "{l:?}");
        // And releasing on both branches is clean.
        assert!(leaks_of("acq(a); if c { rel(a); } else { rel(a); }").is_empty());
    }

    #[test]
    fn early_return_before_release_leaks_at_return() {
        let l = leaks_of("acq(a); if c { return; } rel(a);");
        assert_eq!(l.len(), 1);
        assert!(l[0].exit_line > 0);
    }

    #[test]
    fn escape_discharges() {
        assert!(leaks_of("acq(a); esc(a);").is_empty());
    }

    #[test]
    fn diverging_path_is_exempt() {
        assert!(leaks_of("acq(a); if c { boom; } else { rel(a); }").is_empty());
    }

    #[test]
    fn match_arm_missing_release_leaks() {
        let l = leaks_of("acq(a); match x { 0 => rel(a), _ => other(), }");
        assert_eq!(l.len(), 1);
        assert!(leaks_of("acq(a); match x { 0 => rel(a), _ => rel(a), }").is_empty());
    }

    #[test]
    fn loop_balanced_is_clean_and_net_acquire_leaks() {
        assert!(leaks_of("while c { acq(a); rel(a); }").is_empty());
        assert_eq!(leaks_of("while c { acq(a); }").len(), 1);
    }

    #[test]
    fn seeded_obligation_must_be_discharged() {
        let body = parse_block(&lex("if c { rel(k); }").0);
        let l = analyze_with_seed(&body, 9, "k", 1, "credit", &mut scan);
        assert_eq!(l.len(), 1, "else-path never releases: {l:?}");
        let body = parse_block(&lex("rel(k);").0);
        assert!(analyze_with_seed(&body, 9, "k", 1, "credit", &mut scan).is_empty());
    }
}
