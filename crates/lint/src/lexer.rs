//! A minimal Rust lexer: just enough fidelity to walk source token-by-token
//! without being fooled by strings, comments, char literals or raw strings.
//!
//! The build environment is offline (no `syn`), so the determinism pass
//! works on this hand-rolled token stream instead of a full AST. The lexer
//! preserves line numbers for diagnostics and returns line comments
//! separately so allow-annotations can be matched to findings.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation (single char, except `::` which is one token).
    Punct,
    /// Integer literal.
    Int,
    /// Float literal (has a decimal point, exponent, or f32/f64 suffix).
    Float,
    /// String, char, or byte literal (content not inspected).
    Str,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A comment with its source line (1-based). Block comments are attributed
/// to their starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lexes `src` into tokens and comments. Unrecognised bytes are skipped.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut toks = Vec::new();
    let mut comments = Vec::new();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            comments.push(Comment {
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 0i32;
            while i < b.len() {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            comments.push(Comment {
                text: b[start..i.min(b.len())].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings: r"..", r#".."#, br#".."# etc.
        if (c == 'r' || c == 'b') && {
            let mut j = i;
            if b[j] == 'b' && j + 1 < b.len() && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                while k < b.len() && b[k] == '#' {
                    k += 1;
                }
                k < b.len() && b[k] == '"'
            } else {
                false
            }
        } {
            let tline = line;
            if b[i] == 'b' {
                i += 1;
            }
            i += 1; // past 'r'
            let mut hashes = 0usize;
            while i < b.len() && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // past opening quote
            loop {
                if i >= b.len() {
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                    continue;
                }
                if b[i] == '"' {
                    let mut k = i + 1;
                    let mut h = 0usize;
                    while k < b.len() && b[k] == '#' && h < hashes {
                        h += 1;
                        k += 1;
                    }
                    if h == hashes {
                        i = k;
                        break;
                    }
                }
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line: tline,
            });
            continue;
        }
        // String / byte-string literal.
        if c == '"' || (c == 'b' && i + 1 < b.len() && b[i + 1] == '"') {
            let tline = line;
            if c == 'b' {
                i += 1;
            }
            i += 1;
            while i < b.len() {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line: tline,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote.
            let next = b.get(i + 1).copied().unwrap_or(' ');
            let after = b.get(i + 2).copied().unwrap_or(' ');
            if is_ident_start(next) && after != '\'' {
                let start = i;
                i += 1;
                while i < b.len() && is_ident(b[i]) {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                // Char literal: skip to the closing quote.
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident(b[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number. A '.' only joins the literal when it begins a fractional
        // part AND the number is not itself a tuple-field index (`pair.0`),
        // i.e. the previous token was not `.`.
        if c.is_ascii_digit() {
            let start = i;
            let after_dot =
                matches!(toks.last(), Some(t) if t.kind == TokKind::Punct && t.text == ".");
            let mut is_float = false;
            let hex = c == '0' && matches!(b.get(i + 1), Some('x') | Some('X'));
            i += 1;
            if hex {
                i += 1;
            }
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                if !hex && (b[i] == 'e' || b[i] == 'E') {
                    // Exponent only if followed by digit or sign+digit.
                    let sign = matches!(b.get(i + 1), Some('+') | Some('-'));
                    let d = b.get(i + 1 + usize::from(sign));
                    if d.is_some_and(|d| d.is_ascii_digit()) {
                        is_float = true;
                        i += 1 + usize::from(sign);
                        continue;
                    }
                }
                i += 1;
            }
            if !hex && !after_dot && i < b.len() && b[i] == '.' {
                if b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    is_float = true;
                    i += 1;
                    // Fractional digits, then any type suffix (`0.5f32`).
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                } else if !b.get(i + 1).is_some_and(|&d| is_ident_start(d) || d == '.') {
                    // `1.` (trailing-dot float), but not `1..2` or `1.min(..)`.
                    is_float = true;
                    i += 1;
                }
            }
            let text: String = b[start..i].iter().collect();
            if text.ends_with("f32") || text.ends_with("f64") {
                is_float = true;
            }
            toks.push(Token {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text,
                line,
            });
            continue;
        }
        // `::` as one token; everything else single-char punctuation.
        if c == ':' && b.get(i + 1) == Some(&':') {
            toks.push(Token {
                kind: TokKind::Punct,
                text: "::".into(),
                line,
            });
            i += 2;
            continue;
        }
        toks.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    (toks, comments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap";
            let r = r#"HashMap"#;
            let c = 'H';
            real_ident
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn float_vs_int_vs_tuple_index() {
        let (toks, _) = lex("a.0.1 + 1.5 + 2 + 3e4 + 1u64 + 0.5f32");
        let floats: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "3e4", "0.5f32"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let (toks, comments) = lex("a\nb // c\nd");
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("d"), 3);
        assert_eq!(comments[0].line, 2);
    }
}
