//! The parser-backed rule families: resource-pairing, digest-coverage,
//! exhaustive-handling, layering, and time-safety.
//!
//! These complement the token-stream determinism rules in [`crate`]: they
//! need the item/function/flow structure that [`crate::parse`] recovers and
//! (for resource-pairing) the path-sensitive engine in [`crate::cfg`].
//!
//! | rule | invariant |
//! |------|-----------|
//! | `resource-pairing` | acquire sites (trace spans, tx-credit gates, RBM buffers) release on every exit path |
//! | `digest-coverage` | every `impl Component` provides a non-default `state_digest` |
//! | `exhaustive-handling` | no `_` wildcard over sim-visible protocol enums |
//! | `layering` | crates respect the mlwip module seams (net ⊄ poe, cclo ⊄ net internals) |
//! | `time-safety` | no unchecked `+`/`-`/`*` on raw picosecond values outside the checked ctors |

use crate::cfg::{self, Event};
use crate::lexer::{TokKind, Token};
use crate::parse::{FnDef, Node, ParsedFile};
use crate::{Finding, Severity};

/// Protocol enums whose `match`es must stay exhaustive: adding a variant
/// (a new fault kind, a new completion status) must force every handler to
/// take a position, not fall into a stale `_` arm.
pub const PROTOCOL_ENUMS: &[&str] = &[
    "FaultAction",
    "CmdStatus",
    "CclError",
    "OverloadPolicy",
    "MembershipEvent",
];

/// Runs every parser-backed rule over one file.
pub fn run(file: &str, krate: Option<&str>, toks: &[Token], parsed: &ParsedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    resource_pairing(file, parsed, &mut findings);
    digest_coverage(file, parsed, &mut findings);
    exhaustive_handling(file, parsed, &mut findings);
    if let Some(krate) = krate {
        layering(file, krate, toks, &mut findings);
    }
    time_safety(file, toks, &mut findings);
    findings
}

// ---------------------------------------------------------------------------
// resource-pairing
// ---------------------------------------------------------------------------

/// Methods that begin a trace span and return its handle.
const SPAN_ACQUIRE: &[&str] = &["span_begin", "span_begin_attrs"];
/// Methods that end a span (first argument is the handle).
const SPAN_RELEASE: &[&str] = &["span_end", "span_end_at", "span_end_attrs"];
/// Methods that emit a causal flow edge and return its handle.
const FLOW_ACQUIRE: &[&str] = &["flow_begin"];
/// Methods that join a flow edge (the *second* argument is the handle —
/// the first is the static edge name).
const FLOW_RELEASE: &[&str] = &["flow_end"];

/// Per-file custody table: a counter that models a bounded resource may
/// only be mutated by its designated acquire/release functions, so the
/// pairing (and side accounting like RBM shrink debt) cannot be bypassed.
struct Custody {
    file_suffix: &'static str,
    counter: &'static str,
    allowed_fns: &'static [&'static str],
    why: &'static str,
}

const CUSTODY: &[Custody] = &[
    Custody {
        file_suffix: "cclo/src/rbm.rs",
        counter: "free_bufs",
        allowed_fns: &["new", "release_buf", "resync"],
        why: "buffer releases must flow through `release_buf` (shrink debt is paid down first) \
              or the restart-time `resync` wipe",
    },
    Custody {
        file_suffix: "poe/src/iface.rs",
        counter: "in_flight",
        allowed_fns: &["admit", "credit", "leak"],
        why: "tx-window credits may only move in `admit`/`credit`/`leak`, keeping the \
              in-flight count in lock-step with stamped frames",
    },
];

fn resource_pairing(file: &str, parsed: &ParsedFile, findings: &mut Vec<Finding>) {
    for (_, f) in parsed.all_fns() {
        span_pairing(file, f, findings);
        flow_pairing(file, f, findings);
        credit_consume(file, f, findings);
        must_use_gate_results(file, f, findings);
    }
    counter_custody(file, parsed, findings);
}

/// Tokens of a node the leaf scanners look at (headers of control nodes,
/// full contents of leaves/returns).
fn node_tokens(node: &Node) -> &[Token] {
    match node {
        Node::Leaf(t) => t,
        Node::Return { toks, .. } => toks,
        Node::If { cond, .. } => cond,
        Node::Match { scrutinee, .. } => scrutinee,
        Node::Loop { head, .. } => head,
        Node::Block(_) => &[],
    }
}

/// Splits a token run into statements at depth-0 `;`.
fn statements(toks: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => {
                out.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

/// Whether a statement diverges unconditionally (`panic!`/`unreachable!`/
/// `todo!` at depth 0 — a closure's `|| panic!(..)` sits inside parens and
/// does not count).
fn stmt_diverges(stmt: &[Token]) -> bool {
    let mut depth = 0i32;
    for (i, t) in stmt.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "panic" | "unreachable" | "todo"
                if depth == 0 && stmt.get(i + 1).is_some_and(|n| n.text == "!") =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Flow-sensitive span pairing: a span begun into a `let`-bound local must
/// be ended (or escape into a struct/field/call, transferring ownership)
/// on every path out of the function.
fn span_pairing(file: &str, f: &FnDef, findings: &mut Vec<Finding>) {
    let mut scan = |node: &Node| -> Vec<Event> {
        let toks = node_tokens(node);
        let mut events = Vec::new();
        for stmt in statements(toks) {
            if stmt_diverges(stmt) {
                events.push(Event::Diverge);
                continue;
            }
            // `let [mut] name = … .span_begin*( … )` opens an obligation on
            // `name`; any *other* mention of an open name either ends the
            // span (release) or moves the handle (escape).
            let binding = span_let_binding(stmt);
            if let Some((name, line)) = &binding {
                events.push(Event::Open {
                    key: name.clone(),
                    line: *line,
                    note: "span begun here".into(),
                });
                continue;
            }
            let mut i = 0usize;
            while i < stmt.len() {
                let t = &stmt[i];
                if t.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                if SPAN_RELEASE.contains(&t.text.as_str())
                    && stmt.get(i + 1).is_some_and(|n| n.text == "(")
                {
                    // First argument, when it is a bare local, releases it.
                    if let Some(arg) = stmt.get(i + 2) {
                        let lone = arg.kind == TokKind::Ident
                            && stmt
                                .get(i + 3)
                                .is_some_and(|n| n.text == "," || n.text == ")");
                        if lone {
                            events.push(Event::Close {
                                key: arg.text.clone(),
                            });
                            i += 3;
                            continue;
                        }
                    }
                } else {
                    // A mention outside a release escapes the handle: it
                    // was stored, sent, or compared — ownership moved.
                    events.push(Event::Escape {
                        key: t.text.clone(),
                    });
                }
                i += 1;
            }
        }
        events
    };
    let end_line = last_line(&f.body).unwrap_or(f.line);
    for leak in cfg::analyze(&f.body, end_line, &mut scan) {
        findings.push(Finding {
            file: file.into(),
            line: leak.line,
            rule: "resource-pairing",
            severity: Severity::Deny,
            message: format!(
                "span `{}` begun in `{}` is not ended on the exit path at line {}: every \
                 `span_begin` needs a `span_end` (or the handle must escape to its next owner) \
                 on all paths, or the trace ring holds the span open forever",
                leak.key, f.name, leak.exit_line
            ),
            allowed: None,
        });
    }
}

/// Detects `let [mut] name = … span_begin*( … )` and returns the binding.
fn span_let_binding(stmt: &[Token]) -> Option<(String, u32)> {
    acquire_let_binding(stmt, SPAN_ACQUIRE)
}

/// Flow-sensitive flow-edge pairing: a `FlowId` handle returned by
/// `flow_begin` must reach a `flow_end` (as its second argument) or escape
/// into its carrier (a frame field, an in-flight table) on every path out
/// of the function. A handle dropped on the floor is an emitted edge the
/// receive side can never join — the Tx→Rx causality the critical-path
/// walk depends on silently goes missing.
fn flow_pairing(file: &str, f: &FnDef, findings: &mut Vec<Finding>) {
    let mut scan = |node: &Node| -> Vec<Event> {
        let toks = node_tokens(node);
        let mut events = Vec::new();
        for stmt in statements(toks) {
            if stmt_diverges(stmt) {
                events.push(Event::Diverge);
                continue;
            }
            if let Some((name, line)) = acquire_let_binding(stmt, FLOW_ACQUIRE) {
                events.push(Event::Open {
                    key: name,
                    line,
                    note: "flow edge emitted here".into(),
                });
                continue;
            }
            let mut i = 0usize;
            while i < stmt.len() {
                let t = &stmt[i];
                if t.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                if FLOW_RELEASE.contains(&t.text.as_str())
                    && stmt.get(i + 1).is_some_and(|n| n.text == "(")
                {
                    // `flow_end(name, handle, to)` — a bare-local second
                    // argument joins (releases) the handle.
                    if let Some((handle, after)) = lone_call_arg(stmt, i + 1, 1) {
                        events.push(Event::Close { key: handle });
                        i = after;
                        continue;
                    }
                } else {
                    // Any other mention moves the handle to its next
                    // owner (stamped into a frame, stashed in a table).
                    events.push(Event::Escape {
                        key: t.text.clone(),
                    });
                }
                i += 1;
            }
        }
        events
    };
    let end_line = last_line(&f.body).unwrap_or(f.line);
    for leak in cfg::analyze(&f.body, end_line, &mut scan) {
        findings.push(Finding {
            file: file.into(),
            line: leak.line,
            rule: "resource-pairing",
            severity: Severity::Deny,
            message: format!(
                "flow handle `{}` emitted in `{}` is dropped on the exit path at line {}: \
                 every `flow_begin` must reach a `flow_end` (or the handle must escape into \
                 its carrier frame/table), or the Tx→Rx causal edge is never joined and the \
                 critical-path walk loses the handoff",
                leak.key, f.name, leak.exit_line
            ),
            allowed: None,
        });
    }
}

/// Detects `let [mut] name = … <acquire>( … )` and returns the binding.
fn acquire_let_binding(stmt: &[Token], acquire: &[&str]) -> Option<(String, u32)> {
    if stmt.first().map(|t| t.text.as_str()) != Some("let") {
        return None;
    }
    let mut i = 1;
    if stmt.get(i).is_some_and(|t| t.text == "mut") {
        i += 1;
    }
    let name = stmt.get(i)?;
    if name.kind != TokKind::Ident || name.text == "_" {
        return None;
    }
    if stmt.get(i + 1).map(|t| t.text.as_str()) != Some("=") {
        return None;
    }
    let has_acquire = stmt[i + 2..]
        .iter()
        .any(|t| t.kind == TokKind::Ident && acquire.contains(&t.text.as_str()));
    has_acquire.then(|| (name.text.clone(), name.line))
}

/// If argument `arg_idx` (0-based) of the call whose `(` sits at
/// `open_idx` is a single bare identifier, returns it plus the index one
/// past the call's closing `)`.
fn lone_call_arg(stmt: &[Token], open_idx: usize, arg_idx: usize) -> Option<(String, usize)> {
    debug_assert_eq!(stmt.get(open_idx).map(|t| t.text.as_str()), Some("("));
    let mut depth = 0i32;
    let mut arg = 0usize;
    let mut start = open_idx + 1;
    let mut found: Option<String> = None;
    for (i, t) in stmt.iter().enumerate().skip(open_idx) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if arg == arg_idx {
                        found = lone_ident(&stmt[start..i]);
                    }
                    return found.map(|name| (name, i + 1));
                }
            }
            "," if depth == 1 => {
                if arg == arg_idx {
                    found = Some(lone_ident(&stmt[start..i])?);
                }
                arg += 1;
                start = i + 1;
            }
            _ => {}
        }
    }
    None // unbalanced call — statement splitter artifacts; be conservative
}

fn lone_ident(toks: &[Token]) -> Option<String> {
    match toks {
        [t] if t.kind == TokKind::Ident => Some(t.text.clone()),
        _ => None,
    }
}

/// One side of a named flow edge: an emit (`flow_begin("name", …)`) or a
/// join (`flow_end("name", …)`) site.
#[derive(Debug, Clone)]
pub struct FlowEdgeUse {
    /// File label the site was found in.
    pub file: String,
    /// 1-based source line of the call.
    pub line: u32,
    /// The static edge name (the string-literal first argument).
    pub name: String,
    /// `true` for `flow_begin`, `false` for `flow_end`.
    pub emitted: bool,
}

/// Collects every named flow emit/join site in one file's token stream.
/// Calls whose first argument is not a string literal (the `Ctx` wrappers
/// forwarding `name` through) are not sites and are skipped. The lexer
/// blanks string contents (so literal text cannot confuse depth scans), so
/// the edge name is recovered from the source line of the call.
pub fn flow_edge_uses(file: &str, src: &str, toks: &[Token]) -> Vec<FlowEdgeUse> {
    let lines: Vec<&str> = src.lines().collect();
    let mut uses = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let emitted = FLOW_ACQUIRE.contains(&t.text.as_str());
        if !emitted && !FLOW_RELEASE.contains(&t.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
            continue;
        }
        if toks.get(i + 2).is_none_or(|arg| arg.kind != TokKind::Str) {
            continue;
        }
        let Some(name) = lines
            .get(t.line as usize - 1)
            .and_then(|l| quoted_after(l, &t.text))
        else {
            continue; // name split across lines — out of scope for this scan
        };
        uses.push(FlowEdgeUse {
            file: file.into(),
            line: t.line,
            name,
            emitted,
        });
    }
    uses
}

/// The first `"…"` literal following `call(` on a source line.
fn quoted_after(line: &str, call: &str) -> Option<String> {
    let at = line.find(&format!("{call}("))?;
    let rest = &line[at..];
    let open = rest.find('"')?;
    let body = &rest[open + 1..];
    let close = body.find('"')?;
    Some(body[..close].to_string())
}

/// The workspace-level half of flow pairing: every emitted edge name must
/// have at least one receive-side join somewhere in the linted crates, and
/// vice versa. A begin/join pair lives on opposite ends of a handoff
/// (often opposite ends of a wire), so this check only makes sense over
/// the whole corpus — per-file analysis cannot see the other side.
pub fn flow_join_findings(uses: &[FlowEdgeUse]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for u in uses {
        let other_side = uses
            .iter()
            .any(|v| v.name == u.name && v.emitted != u.emitted);
        if other_side {
            continue;
        }
        let (this, missing) = if u.emitted {
            ("emitted", "`flow_end` join")
        } else {
            ("joined", "`flow_begin` emit")
        };
        findings.push(Finding {
            file: u.file.clone(),
            line: u.line,
            rule: "resource-pairing",
            severity: Severity::Deny,
            message: format!(
                "flow edge \"{}\" is {} here but has no matching {} anywhere in the linted \
                 crates: both sides of a Tx→Rx handoff must exist or the causal graph \
                 dangles at every crossing",
                u.name, this, missing
            ),
            allowed: None,
        });
    }
    findings
}

fn last_line(body: &[Node]) -> Option<u32> {
    body.iter().rev().find_map(|n| match n {
        Node::Leaf(t) => t.last().map(|t| t.line),
        Node::Return { line, .. } => Some(*line),
        Node::If { line, .. } | Node::Match { line, .. } | Node::Loop { line, .. } => Some(*line),
        Node::Block(inner) => last_line(inner),
    })
}

/// A handler that consumes a `CreditReturn` must put the credits back into
/// a gate (`….gate.credit(…)`) on every path: swallowing the return leaks
/// the sender's tx window for good — the exact bug of the checked-in
/// chaos credit-leak repro, caught here at lint time.
fn credit_consume(file: &str, f: &FnDef, findings: &mut Vec<Finding>) {
    walk_credit(file, f, &f.body, findings);
}

fn walk_credit(file: &str, f: &FnDef, nodes: &[Node], findings: &mut Vec<Finding>) {
    for node in nodes {
        match node {
            Node::Match {
                line,
                scrutinee,
                arms,
            } => {
                let consumes = scrutinee.iter().any(|t| t.text == "CreditReturn")
                    && scrutinee.iter().any(|t| t.text.contains("downcast"));
                for arm in arms {
                    let ok_arm = arm
                        .pat
                        .first()
                        .is_some_and(|t| t.text == "Ok" || t.text == "Some");
                    if consumes && ok_arm {
                        check_credit_released(file, f, *line, &arm.body, findings);
                    }
                    walk_credit(file, f, &arm.body, findings);
                }
            }
            Node::If {
                line,
                cond,
                then,
                els,
            } => {
                let consumes = cond.iter().any(|t| t.text == "CreditReturn")
                    && cond.iter().any(|t| t.text.contains("downcast"))
                    && cond.first().is_some_and(|t| t.text == "let");
                if consumes {
                    check_credit_released(file, f, *line, then, findings);
                }
                walk_credit(file, f, then, findings);
                if let Some(e) = els {
                    walk_credit(file, f, e, findings);
                }
            }
            Node::Loop { body, .. } | Node::Block(body) => walk_credit(file, f, body, findings),
            _ => {}
        }
    }
}

fn check_credit_released(
    file: &str,
    f: &FnDef,
    line: u32,
    body: &[Node],
    findings: &mut Vec<Finding>,
) {
    let mut scan = |node: &Node| -> Vec<Event> {
        let toks = node_tokens(node);
        let mut events = Vec::new();
        for stmt in statements(toks) {
            if stmt_diverges(stmt) {
                events.push(Event::Diverge);
            }
        }
        if has_gate_credit(toks) {
            events.push(Event::Close {
                key: "creditreturn".into(),
            });
        }
        events
    };
    // The loop *head* `for frame in self.gate.credit(…)` is where the real
    // handlers release — node_tokens exposes it to the scanner above.
    let end = last_line(body).unwrap_or(line);
    if !cfg::analyze_with_seed(
        body,
        end,
        "creditreturn",
        line,
        "credits consumed",
        &mut scan,
    )
    .is_empty()
    {
        findings.push(Finding {
            file: file.into(),
            line,
            rule: "resource-pairing",
            severity: Severity::Deny,
            message: format!(
                "`{}` consumes a CreditReturn without crediting its gate on every path: \
                 call `gate.credit(…)` (and transmit the frames it releases) or the \
                 sender's tx window shrinks forever — the deadlock the runtime detector \
                 names `net.txcredit(…)` orphaned wait",
                f.name
            ),
            allowed: None,
        });
    }
}

/// `… gate . credit ( …` — the receiver must be a credit gate.
fn has_gate_credit(toks: &[Token]) -> bool {
    toks.windows(4).any(|w| {
        w[0].text.ends_with("gate") && w[1].text == "." && w[2].text == "credit" && w[3].text == "("
    })
}

/// The frames returned by `gate.admit(…)` / `gate.credit(…)` carry data
/// (and, once stamped, a credit): discarding the result loses both.
fn must_use_gate_results(file: &str, f: &FnDef, findings: &mut Vec<Finding>) {
    visit_leaves(&f.body, &mut |toks| {
        for stmt in statements(toks) {
            let call_at = stmt.windows(4).position(|w| {
                w[0].text.ends_with("gate")
                    && w[1].text == "."
                    && (w[2].text == "credit" || w[2].text == "admit")
                    && w[3].text == "("
            });
            let Some(at) = call_at else { continue };
            let method = stmt[at + 2].text.clone();
            let line = stmt[at + 2].line;
            let discarded = stmt.first().is_some_and(|t| t.text == "let")
                && stmt.get(1).is_some_and(|t| t.text == "_")
                && stmt.get(2).is_some_and(|t| t.text == "=");
            // A bare expression statement (no binding, no use of the
            // result) also drops the returned frames on the floor.
            let bare = !discarded
                && !stmt.iter().take(at).any(|t| {
                    matches!(
                        t.text.as_str(),
                        "let"
                            | "="
                            | "return"
                            | "in"
                            | "if"
                            | "while"
                            | "match"
                            | "push"
                            | "extend"
                            | "send"
                    )
                })
                && stmt.first().is_some_and(|t| t.kind == TokKind::Ident);
            if discarded || bare {
                findings.push(Finding {
                    file: file.into(),
                    line,
                    rule: "resource-pairing",
                    severity: Severity::Deny,
                    message: format!(
                        "result of `gate.{method}(…)` in `{}` is discarded: the returned \
                         frames must be transmitted (they hold data and stamped credits)",
                        f.name
                    ),
                    allowed: None,
                });
            }
        }
    });
}

fn visit_leaves(nodes: &[Node], f: &mut dyn FnMut(&[Token])) {
    for node in nodes {
        match node {
            Node::Leaf(t) => f(t),
            Node::Return { toks, .. } => f(toks),
            Node::If {
                cond, then, els, ..
            } => {
                f(cond);
                visit_leaves(then, f);
                if let Some(e) = els {
                    visit_leaves(e, f);
                }
            }
            Node::Match {
                scrutinee, arms, ..
            } => {
                f(scrutinee);
                for arm in arms {
                    visit_leaves(&arm.body, f);
                }
            }
            Node::Loop { head, body, .. } => {
                f(head);
                visit_leaves(body, f);
            }
            Node::Block(inner) => visit_leaves(inner, f),
        }
    }
}

/// Resource counters may only be mutated inside their designated
/// acquire/release functions.
fn counter_custody(file: &str, parsed: &ParsedFile, findings: &mut Vec<Finding>) {
    for c in CUSTODY {
        if !file.ends_with(c.file_suffix) {
            continue;
        }
        for (_, f) in parsed.all_fns() {
            if c.allowed_fns.contains(&f.name.as_str()) {
                continue;
            }
            visit_leaves(&f.body, &mut |toks| {
                for (i, t) in toks.iter().enumerate() {
                    if t.text != c.counter {
                        continue;
                    }
                    // Only release-side mutations are custodial: `+=` and
                    // plain assignment. Acquire-side `-=` happens wherever
                    // admission/matching decides to spend a buffer/credit.
                    let mutated = match toks.get(i + 1).map(|n| n.text.as_str()) {
                        Some("+") => toks.get(i + 2).is_some_and(|n| n.text == "="),
                        Some("=") => toks.get(i + 2).is_none_or(|n| n.text != "="),
                        _ => false,
                    };
                    if mutated {
                        findings.push(Finding {
                            file: file.into(),
                            line: t.line,
                            rule: "resource-pairing",
                            severity: Severity::Deny,
                            message: format!(
                                "`{}` mutated in `{}`, outside its custodian{} {}: {}",
                                c.counter,
                                f.name,
                                if c.allowed_fns.len() == 1 { "" } else { "s" },
                                c.allowed_fns.join("/"),
                                c.why
                            ),
                            allowed: None,
                        });
                    }
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// digest-coverage
// ---------------------------------------------------------------------------

/// Every `impl Component` must carry a non-default `state_digest`: the
/// race detector's shadow runs and the parallel engine's cross-mode gates
/// compare digests — a defaulted (`None`) digest makes those comparisons
/// vacuously pass for the component, which is exactly how coverage rots.
fn digest_coverage(file: &str, parsed: &ParsedFile, findings: &mut Vec<Finding>) {
    for im in &parsed.impls {
        if im.trait_name.as_deref() != Some("Component") {
            continue;
        }
        if im.fns.iter().any(|f| f.name == "state_digest") {
            continue;
        }
        findings.push(Finding {
            file: file.into(),
            line: im.line,
            rule: "digest-coverage",
            severity: Severity::Deny,
            message: format!(
                "`impl Component for {}` does not implement `state_digest`: race-detect \
                 shadow runs and parallel A/B gates silently compare nothing for this \
                 component — digest its externally-meaningful state (counters, totals, \
                 data checksums) with `accl_sim::digest::fnv_fold`",
                im.type_name
            ),
            allowed: None,
        });
    }
}

// ---------------------------------------------------------------------------
// exhaustive-handling
// ---------------------------------------------------------------------------

/// `match`es over sim-visible protocol enums may not hide variants behind
/// `_`: a new `FaultAction` or `CmdStatus` must fail to compile until every
/// handler takes a position. Diverging catch-alls (`other => panic!(…)`)
/// are fine — they fail loudly.
fn exhaustive_handling(file: &str, parsed: &ParsedFile, findings: &mut Vec<Finding>) {
    for (_, f) in parsed.all_fns() {
        walk_matches(&f.body, &mut |line, _scrutinee, arms| {
            let on_protocol = arms.iter().any(|arm| {
                arm.pat
                    .windows(2)
                    .any(|w| PROTOCOL_ENUMS.contains(&w[0].text.as_str()) && w[1].text == "::")
            });
            if !on_protocol {
                return None;
            }
            for arm in arms {
                // Guarded arms don't silence exhaustiveness; skip them.
                let guard_at = arm
                    .pat
                    .iter()
                    .position(|t| t.text == "if")
                    .unwrap_or(arm.pat.len());
                let pat = &arm.pat[..guard_at];
                if guard_at < arm.pat.len() {
                    continue;
                }
                let wild = wildcard_in(pat);
                let Some(wild_line) = wild else { continue };
                let diverges = arm_diverges(&arm.body);
                if !diverges {
                    return Some((line, wild_line));
                }
            }
            None
        })
        .into_iter()
        .for_each(|(_, wild_line)| {
            findings.push(Finding {
                file: file.into(),
                line: wild_line,
                rule: "exhaustive-handling",
                severity: Severity::Deny,
                message: "`_` wildcard over a protocol enum (FaultAction/CmdStatus/CclError/\
                          OverloadPolicy/MembershipEvent): spell the variants out (or diverge \
                          loudly) so new variants cannot be silently mishandled"
                    .into(),
                allowed: None,
            });
        });
    }
}

/// A `_` that elides enum variants: top-level, or the sole payload of a
/// top-level `Ok(_)`/`Err(_)`/`Some(_)` wrapper. `Variant(_)` payload
/// elision (ignoring a field of a *named* variant) is fine.
fn wildcard_in(pat: &[Token]) -> Option<u32> {
    let mut depth = 0i32;
    for (i, t) in pat.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            s if s == "_" || (s.starts_with('_') && t.kind == TokKind::Ident) => {
                if depth == 0 {
                    return Some(t.line);
                }
                if depth == 1 && i >= 2 {
                    let wrapper = &pat[i - 2];
                    let opens = pat[i - 1].text == "(";
                    let closes = pat.get(i + 1).is_some_and(|n| n.text == ")");
                    if opens && closes && matches!(wrapper.text.as_str(), "Ok" | "Err" | "Some") {
                        return Some(t.line);
                    }
                }
            }
            _ => {}
        }
    }
    // A bare lowercase binding (`other => …`) is the same catch-all.
    if pat.len() == 1
        && pat[0].kind == TokKind::Ident
        && pat[0].text.chars().next().is_some_and(|c| c.is_lowercase())
    {
        return Some(pat[0].line);
    }
    None
}

fn arm_diverges(body: &[Node]) -> bool {
    let mut diverges = false;
    visit_leaves(body, &mut |toks| {
        if statements(toks).iter().any(|s| stmt_diverges(s)) {
            diverges = true;
        }
    });
    diverges
}

/// `(match line, wildcard arms, arm patterns) -> hit` visitor over the
/// `match` nodes of a body; a hit is `(match line, wildcard line)`.
type MatchVisitor<'a> = dyn FnMut(u32, &[Token], &[crate::parse::Arm]) -> Option<(u32, u32)> + 'a;

fn walk_matches(nodes: &[Node], f: &mut MatchVisitor<'_>) -> Vec<(u32, u32)> {
    let mut hits = Vec::new();
    walk_matches_inner(nodes, f, &mut hits);
    hits
}

fn walk_matches_inner(nodes: &[Node], f: &mut MatchVisitor<'_>, hits: &mut Vec<(u32, u32)>) {
    for node in nodes {
        match node {
            Node::Match {
                line,
                scrutinee,
                arms,
            } => {
                if let Some(hit) = f(*line, scrutinee, arms) {
                    hits.push(hit);
                }
                for arm in arms {
                    walk_matches_inner(&arm.body, f, hits);
                }
            }
            Node::If { then, els, .. } => {
                walk_matches_inner(then, f, hits);
                if let Some(e) = els {
                    walk_matches_inner(e, f, hits);
                }
            }
            Node::Loop { body, .. } | Node::Block(body) => walk_matches_inner(body, f, hits),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

/// The mlwip seams ("Modularizing TCP Implementations"): each layer may
/// only see the layer interfaces below it. `restricted` deps are usable
/// through an item allowlist (the frame-layer surface of `accl_net`);
/// everything else from that dep is a seam violation.
struct Layer {
    krate: &'static str,
    allowed: &'static [&'static str],
    restricted: &'static [(&'static str, &'static [&'static str])],
}

/// The frame-layer surface of `accl_net`: addresses and frames, not the
/// switch/queue machinery (egress queues, pause state, overload policy),
/// which only the cluster-wiring layer (`accl-core`) may touch.
const NET_FRAME_SURFACE: &[&str] = &[
    "frame",
    "Frame",
    "CreditReturn",
    "NodeAddr",
    "DEFAULT_MTU",
    "WIRE_OVERHEAD_BYTES",
];

const LAYERS: &[Layer] = &[
    Layer {
        krate: "sim",
        allowed: &[],
        restricted: &[],
    },
    Layer {
        krate: "net",
        allowed: &["accl_sim"],
        restricted: &[],
    },
    Layer {
        krate: "mem",
        allowed: &["accl_sim"],
        restricted: &[],
    },
    Layer {
        krate: "poe",
        allowed: &["accl_sim", "accl_mem"],
        restricted: &[("accl_net", NET_FRAME_SURFACE)],
    },
    Layer {
        krate: "cclo",
        allowed: &["accl_sim", "accl_mem", "accl_poe"],
        restricted: &[("accl_net", NET_FRAME_SURFACE)],
    },
    Layer {
        krate: "swmpi",
        // The software-MPI baseline wires its own cluster, so it owns the
        // net construction surface too — but not the switch internals.
        // From cclo it may share the implementation-neutral schedule IR
        // (command set, firmware table, message/dtype model, plugin costs,
        // algorithm config) but not the engine modules (rbm/dmp/tx/rx/uc).
        allowed: &["accl_sim", "accl_mem"],
        restricted: &[
            (
                "accl_net",
                &[
                    "frame",
                    "Frame",
                    "CreditReturn",
                    "NodeAddr",
                    "DEFAULT_MTU",
                    "WIRE_OVERHEAD_BYTES",
                    "NetConfig",
                    "Network",
                    "FaultPlan",
                ],
            ),
            (
                "accl_cclo",
                &["command", "firmware", "msg", "plugins", "config"],
            ),
        ],
    },
    Layer {
        krate: "obs",
        // The trace-analytics engine observes through public surfaces
        // only: the span stream and stats (sim), the assembled cluster
        // and workload drivers (core, dlrm), and the fault-plan config
        // it needs to stage degraded captures. It may never reach the
        // engine or switch internals — an analyzer that depends on
        // private structure stops being evidence about the system.
        allowed: &["accl_sim", "accl_core", "accl_dlrm"],
        restricted: &[("accl_net", &["NodeAddr", "Degradation", "FaultPlan"])],
    },
];

fn layering(file: &str, krate: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let Some(layer) = LAYERS.iter().find(|l| l.krate == krate) else {
        return; // core (and unlisted crates) may see everything below
    };
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !t.text.starts_with("accl_") {
            i += 1;
            continue;
        }
        let dep = t.text.as_str();
        if dep == format!("accl_{krate}") {
            i += 1;
            continue; // own-crate path (`accl_net::…` inside net doc tests)
        }
        if layer.allowed.contains(&dep) {
            i += 1;
            continue;
        }
        if let Some((_, surface)) = layer.restricted.iter().find(|(d, _)| *d == dep) {
            // Check the referenced item(s): `accl_net::Item` or a use
            // group `accl_net::{A, B}`.
            let mut bad: Option<&Token> = None;
            if toks.get(i + 1).is_some_and(|n| n.text == "::") {
                match toks.get(i + 2).map(|n| n.text.as_str()) {
                    Some("{") => {
                        let mut j = i + 3;
                        while j < toks.len() && toks[j].text != "}" {
                            if toks[j].kind == TokKind::Ident
                                && !surface.contains(&toks[j].text.as_str())
                            {
                                bad = Some(&toks[j]);
                                break;
                            }
                            j += 1;
                        }
                    }
                    Some(_) => {
                        let item = &toks[i + 2];
                        if item.kind == TokKind::Ident && !surface.contains(&item.text.as_str()) {
                            bad = Some(item);
                        }
                    }
                    None => {}
                }
            }
            if let Some(b) = bad {
                findings.push(Finding {
                    file: file.into(),
                    line: b.line,
                    rule: "layering",
                    severity: Severity::Deny,
                    message: format!(
                        "crate `{krate}` reaches past the `{dep}` frame surface to `{}`: the \
                         switch/queue internals belong to the cluster-wiring layer (accl-core); \
                         depend on the frame-level items ({}) or route through core",
                        b.text,
                        surface.join(", ")
                    ),
                    allowed: None,
                });
            }
            i += 1;
            continue;
        }
        findings.push(Finding {
            file: file.into(),
            line: t.line,
            rule: "layering",
            severity: Severity::Deny,
            message: format!(
                "crate `{krate}` must not depend on `{dep}`: the layering contract is \
                 sim < net/mem < poe < cclo < core (swmpi beside poe) — an upward or \
                 cross reference here makes the coming transport modularization impossible"
            ),
            allowed: None,
        });
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// time-safety
// ---------------------------------------------------------------------------

/// Raw-picosecond arithmetic wraps silently in release builds; `Time`/`Dur`
/// operators are overflow-checked. Flag `x.as_ps() + …`, `… * x.as_ps()`,
/// and arithmetic inside `Time::from_ps(…)`/`Dur::from_ps(…)` arguments.
/// Division stays legal (it cannot overflow), as does widening through
/// `u128::from(x.as_ps())` before multiplying.
fn time_safety(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let arith = |s: &str| matches!(s, "+" | "-" | "*" | "%");
    let mut report = |line: u32, what: String| {
        findings.push(Finding {
            file: file.into(),
            line,
            rule: "time-safety",
            severity: Severity::Deny,
            message: format!(
                "{what}: raw picosecond arithmetic wraps silently in release builds — use the \
                 checked `Time`/`Dur` operators, `saturating_*`, or widen to `u128` first"
            ),
            allowed: None,
        });
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "as_ps"
            && i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && toks.get(i + 2).is_some_and(|n| n.text == ")")
        {
            // `<recv>.as_ps() <op>` — operator right after the call.
            if toks.get(i + 3).is_some_and(|n| arith(&n.text)) {
                report(t.line, "`as_ps()` feeding an unchecked operator".into());
                continue;
            }
            // `<op> <recv>.as_ps()` — walk back over the receiver chain.
            let mut j = i - 1; // at `.`
            loop {
                if j == 0 {
                    break;
                }
                j -= 1;
                let p = &toks[j];
                if p.text == ")" || p.text == "]" {
                    // Skip the balanced group.
                    let close = p.text.clone();
                    let open = if close == ")" { "(" } else { "[" };
                    let mut depth = 1i32;
                    while j > 0 && depth > 0 {
                        j -= 1;
                        if toks[j].text == close {
                            depth += 1;
                        } else if toks[j].text == open {
                            depth -= 1;
                        }
                    }
                    continue;
                }
                if p.kind == TokKind::Ident || p.text == "." || p.text == "::" {
                    continue;
                }
                if arith(&p.text) {
                    report(t.line, "unchecked operator feeding `.as_ps()`".into());
                }
                break;
            }
        } else if t.text == "from_ps"
            && i >= 2
            && toks[i - 1].text == "::"
            && (toks[i - 2].text == "Time" || toks[i - 2].text == "Dur")
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            // Arithmetic at depth 1 of the argument list reconstructs a
            // timestamp from unchecked math.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    s if depth == 1 && arith(s) => {
                        report(
                            toks[j].line,
                            format!(
                                "unchecked arithmetic inside `{}::from_ps(…)`",
                                toks[i - 2].text
                            ),
                        );
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}
