//! accl-lint: the determinism linter for the ACCL+ simulation workspace.
//!
//! Every experiment in this repository rests on the simulator's bit-replay
//! contract: a seeded run replays bit-identically, across queue kinds and
//! across machines. That contract is trivially broken by ambient
//! nondeterminism — one `HashMap` iteration in an event handler, one wall
//! clock read, one float accumulating into a timestamp — and nothing about
//! `cargo test` catches the breakage until a golden digest diverges weeks
//! later. This crate is the static half of the enforcement (the dynamic
//! half is `accl-sim`'s `race-detect` feature): a lexer-based pass over the
//! sim-visible crates that reports determinism hazards with `file:line`
//! diagnostics and fails CI on any unannotated finding.
//!
//! The pass is token-based, not AST-based (the build environment is
//! offline, so `syn` is unavailable); precision comes from small amounts of
//! context tracking — variable/field names declared with unordered types,
//! balanced-paren argument scans for time constructors — rather than full
//! type resolution. `#[cfg(test)]` items are skipped: test-only code may
//! observe nondeterminism without perturbing the simulated timeline.
//!
//! # Rules
//!
//! | rule | severity | bans |
//! |------|----------|------|
//! | `unordered-collection` | deny | `HashMap`/`HashSet` (and IndexMap) in sim-visible code |
//! | `unordered-iteration`  | deny | `.iter()`/`.keys()`/`.values()`/`.drain()`/`.retain()`/`for … in` over a tracked unordered map |
//! | `wall-clock`           | deny | `Instant`, `SystemTime` (simulated time only) |
//! | `ambient-entropy`      | deny | `thread_rng`, `from_entropy`, `OsRng`, `RandomState`, `DefaultHasher`, `getrandom` |
//! | `float-timing`         | deny | float literals / `f32`/`f64` casts / float math inside `Time::from_*` / `Dur::from_*` arguments |
//! | `unstable-tie-sort`    | warn | `sort_unstable_by` / `sort_unstable_by_key` (projection may tie; `sort_unstable` by full value is fine) |
//!
//! # Audited exceptions
//!
//! A finding is suppressed by an `allow_nondeterminism` annotation in a
//! comment on the same line or the line directly above, naming the rule and
//! a reason:
//!
//! ```text
//! // allow_nondeterminism(unstable-tie-sort): keys are (time, seq), unique by construction
//! bucket.sort_unstable_by_key(|e| Reverse(e.key()));
//! ```
//!
//! An annotation with the wrong rule name or an empty reason does not
//! suppress anything (and is itself reported), so exceptions stay audited.

pub mod cfg;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Comment, TokKind, Token};

/// Crates whose `src/` trees are sim-visible and therefore linted.
pub const LINTED_CRATES: &[&str] = &["sim", "net", "poe", "mem", "cclo", "core", "swmpi", "obs"];

/// How severe a finding is. `Deny` findings break the bit-replay contract
/// outright; `Warn` findings are hazards that need an audit (and an
/// annotation) to stay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks determinism; must be fixed or explicitly annotated.
    Deny,
    /// Potential hazard; must be audited and annotated.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// One determinism hazard at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as given to the linter (workspace-relative in CI output).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id, e.g. `unordered-collection`.
    pub rule: &'static str,
    pub severity: Severity,
    /// Human-readable diagnostic.
    pub message: String,
    /// Audited-exception reason, when an `allow_nondeterminism` annotation
    /// covers the finding. `None` means the finding gates.
    pub allowed: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}] {}",
            self.file, self.line, self.severity, self.rule, self.message
        )?;
        if let Some(reason) = &self.allowed {
            write!(f, " (allowed: {reason})")?;
        }
        Ok(())
    }
}

const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet", "IndexMap", "IndexSet"];
const WALL_CLOCK: &[&str] = &["Instant", "SystemTime"];
const ENTROPY: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "RandomState",
    "DefaultHasher",
    "getrandom",
];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];
const TIME_CTORS: &[&str] = &[
    "from_ps",
    "from_ns",
    "from_us",
    "from_ms",
    "from_s",
    "from_cycles",
];
const FLOAT_HINTS: &[&str] = &[
    "f32", "f64", "powf", "powi", "sqrt", "round", "ceil", "floor", "exp", "ln", "log2", "log10",
];

/// An `allow_nondeterminism` annotation that no longer suppresses any
/// finding — dead weight that hides real audit state (reported by the
/// CLI's `--audit-allows` mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleAllow {
    /// Path as given to the linter.
    pub file: String,
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// Rule name the annotation claims to allow.
    pub rule: String,
}

impl fmt::Display for StaleAllow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: stale allow_nondeterminism({}) — suppresses no finding; remove it",
            self.file, self.line, self.rule
        )
    }
}

/// Infers the crate name from a workspace-relative label such as
/// `crates/net/src/switch.rs` (used by the layering rule).
fn crate_of_label(file: &str) -> Option<&str> {
    let norm = file.strip_prefix("./").unwrap_or(file);
    let at = norm.find("crates/")?;
    let rest = &norm[at + "crates/".len()..];
    let end = rest.find('/')?;
    Some(&rest[..end])
}

/// Lints one source file given as a string. `file` is only used to label
/// diagnostics (and to infer the crate for the layering rule).
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    lint_source_full(file, src).0
}

/// Like [`lint_source`] but also returns the stale `allow_nondeterminism`
/// annotations found in the file.
pub fn lint_source_full(file: &str, src: &str) -> (Vec<Finding>, Vec<StaleAllow>) {
    let (toks, comments) = lex(src);
    let (toks, skipped) = strip_cfg_test_with_spans(&toks);
    // Comments inside `#[cfg(test)]` items never match a finding (the
    // tokens are stripped), so their allows must not be audited as stale.
    let comments: Vec<Comment> = comments
        .into_iter()
        .filter(|c| {
            !skipped
                .iter()
                .any(|(lo, hi)| c.line >= *lo && c.line <= *hi)
        })
        .collect();
    let mut findings = Vec::new();

    let tracked = collect_unordered_names(&toks);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();

        if UNORDERED_TYPES.contains(&name) {
            findings.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "unordered-collection",
                severity: Severity::Deny,
                message: format!(
                    "`{name}` in sim-visible code: iteration order depends on the hasher; \
                     use `BTreeMap`/`BTreeSet` or another deterministic-order structure"
                ),
                allowed: None,
            });
        } else if WALL_CLOCK.contains(&name) {
            // Only two spellings can reach the host clock: a path use
            // (`Instant::now`, `SystemTime::now`) or an import through the
            // `time` module (`use std::time::Instant`). An identifier that
            // merely *spells* a clock name — the trace module's
            // `SpanEventKind::Instant` variant, its declaration, a match
            // arm — is not a clock read, and bare type positions are
            // unreachable without a flagged import.
            let path_use = toks.get(i + 1).is_some_and(|n| n.text == "::");
            // `time::Instant` directly, or inside a brace group:
            // `use std::time::{Duration, Instant}`.
            let time_import = {
                let mut j = i;
                while j >= 1 && (toks[j - 1].text == "," || toks[j - 1].kind == TokKind::Ident) {
                    j -= 1;
                }
                if j >= 1 && toks[j - 1].text == "{" {
                    j -= 1;
                }
                j >= 2 && toks[j - 1].text == "::" && toks[j - 2].text == "time"
            };
            if path_use || time_import {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "wall-clock",
                    severity: Severity::Deny,
                    message: format!(
                        "`{name}` reads the host clock: simulation logic must use simulated \
                         time (`Ctx::now`) only"
                    ),
                    allowed: None,
                });
            }
        } else if ENTROPY.contains(&name) {
            findings.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "ambient-entropy",
                severity: Severity::Deny,
                message: format!(
                    "`{name}` draws ambient entropy: all randomness must come from the \
                     seeded simulation RNG (`Ctx::rng`)"
                ),
                allowed: None,
            });
        } else if (name == "sort_unstable_by" || name == "sort_unstable_by_key")
            && prev_is_dot(&toks, i)
        {
            findings.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "unstable-tie-sort",
                severity: Severity::Warn,
                message: format!(
                    "`{name}` with a key projection: elements comparing equal keep an \
                     unspecified relative order; sort by a total key, use a stable sort, \
                     or annotate why ties are impossible"
                ),
                allowed: None,
            });
        } else if ITER_METHODS.contains(&name)
            && prev_is_dot(&toks, i)
            && i >= 2
            && toks[i - 2].kind == TokKind::Ident
            && tracked.contains(&toks[i - 2].text)
        {
            findings.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "unordered-iteration",
                severity: Severity::Deny,
                message: format!(
                    "`.{name}()` over `{}`, which is declared as an unordered map/set: \
                     visit order is hasher-dependent",
                    toks[i - 2].text
                ),
                allowed: None,
            });
        } else if name == "in" {
            // `for x in [&[mut]] tracked { ... }`
            let mut j = i + 1;
            while j < toks.len()
                && matches!(toks[j].text.as_str(), "&" | "mut" | "(" | "self" | ".")
            {
                j += 1;
            }
            if j < toks.len()
                && toks[j].kind == TokKind::Ident
                && tracked.contains(&toks[j].text)
                && toks
                    .get(j + 1)
                    .is_some_and(|n| n.text == "{" || n.text == ")")
            {
                findings.push(Finding {
                    file: file.into(),
                    line: toks[j].line,
                    rule: "unordered-iteration",
                    severity: Severity::Deny,
                    message: format!(
                        "`for … in {}` iterates an unordered map/set: visit order is \
                         hasher-dependent",
                        toks[j].text
                    ),
                    allowed: None,
                });
            }
        } else if TIME_CTORS.contains(&name)
            && i >= 2
            && toks[i - 1].text == "::"
            && (toks[i - 2].text == "Time" || toks[i - 2].text == "Dur")
        {
            if let Some(hint) = float_in_args(&toks, i + 1) {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "float-timing",
                    severity: Severity::Deny,
                    message: format!(
                        "float arithmetic ({hint}) feeding `{}::{}`: timestamps must be \
                         computed in fixed point (the Pipe 32.32-ps contract) — float \
                         rounding is platform- and optimization-dependent",
                        toks[i - 2].text,
                        name
                    ),
                    allowed: None,
                });
            }
        } else if (name == "Time" || name == "Dur")
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && !prev_is_dot(&toks, i)
        {
            // Tuple construction `Dur(…)` / `Time(…)` (only possible inside
            // `accl-sim::time` itself, where the field is visible): float
            // math inside the argument is the same hazard as at `from_*`
            // call sites.
            if let Some(hint) = float_in_args(&toks, i + 1) {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "float-timing",
                    severity: Severity::Deny,
                    message: format!(
                        "float arithmetic ({hint}) constructing `{name}`: a float-to-time \
                         conversion must be an audited single-rounding unit boundary, \
                         never accumulation (the Pipe 32.32-ps contract)"
                    ),
                    allowed: None,
                });
            }
        }
        i += 1;
    }

    // Parser-backed rule families (resource-pairing, digest-coverage,
    // exhaustive-handling, layering, time-safety) run over the structural
    // view of the same stripped token stream.
    let parsed = parse::parse_file(&toks);
    findings.extend(rules::run(file, crate_of_label(file), &toks, &parsed));

    let stale = apply_allows(file, &mut findings, &comments);
    (findings, stale)
}

/// Returns true when `toks[i]` is directly preceded by a `.`.
fn prev_is_dot(toks: &[Token], i: usize) -> bool {
    i >= 1 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "."
}

/// Names of fields and locals declared with an unordered map/set type in
/// this file: `name: HashMap<…>`, `let [mut] name = HashMap::new()`, and
/// `name = HashSet::with_capacity(…)` forms.
fn collect_unordered_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !UNORDERED_TYPES.contains(&toks[i].text.as_str()) {
            continue;
        }
        // Walk backwards over the type/initializer expression to the
        // introducing `name :` or `name =`, stopping at statement or item
        // boundaries.
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &toks[j];
            if t.kind == TokKind::Punct
                && matches!(t.text.as_str(), ";" | "{" | "}" | "(" | "," | ")")
            {
                break;
            }
            if t.kind == TokKind::Punct && (t.text == ":" || t.text == "=") && j >= 1 {
                let cand = &toks[j - 1];
                if cand.kind == TokKind::Ident
                    && !matches!(cand.text.as_str(), "let" | "mut" | "pub")
                {
                    names.push(cand.text.clone());
                }
                break;
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Scans a balanced-paren argument list starting at the `(` at/after
/// `start`; returns the first float hint found inside, if any.
fn float_in_args(toks: &[Token], start: usize) -> Option<String> {
    let mut i = start;
    if toks.get(i).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return None;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Float {
            return Some(format!("float literal `{}`", t.text));
        } else if t.kind == TokKind::Ident && FLOAT_HINTS.contains(&t.text.as_str()) {
            return Some(format!("`{}`", t.text));
        }
        i += 1;
    }
    None
}

/// Removes token ranges covered by `#[cfg(test)]`: the attribute plus the
/// following item (up to the matching `}` of its first brace block, or the
/// next `;` for brace-less items).
#[allow(dead_code)]
fn strip_cfg_test(toks: &[Token]) -> Vec<Token> {
    strip_cfg_test_with_spans(toks).0
}

/// Like [`strip_cfg_test`], also returning the inclusive line spans of the
/// stripped regions (so comment-based allow auditing can skip them).
fn strip_cfg_test_with_spans(toks: &[Token]) -> (Vec<Token>, Vec<(u32, u32)>) {
    let mut out = Vec::with_capacity(toks.len());
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_at(toks, i) {
            let span_lo = toks[i].line;
            // Skip the attribute itself: `# [ cfg ( test ) ]` = 7 tokens
            // (with `(test)` possibly longer, e.g. `cfg(all(test, ...))`);
            // find the closing `]`.
            let mut j = i + 1; // at `[`
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Skip any further attributes between cfg(test) and the item.
            while j < toks.len() && toks[j].text == "#" {
                let mut depth = 0i32;
                j += 1;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Skip the item: to the matching `}` of the first `{`, unless a
            // `;` ends it first (e.g. `#[cfg(test)] use …;`).
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let span_hi = toks
                .get(j.saturating_sub(1))
                .map(|t| t.line)
                .unwrap_or(span_lo);
            spans.push((span_lo, span_hi));
            i = j;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    (out, spans)
}

/// Matches `# [ cfg ( test ) ]` or `# [ cfg ( all|any ( … test … ) ) ]`
/// starting at token `i`.
fn is_cfg_test_at(toks: &[Token], i: usize) -> bool {
    if toks.get(i).map(|t| t.text.as_str()) != Some("#")
        || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[")
        || toks.get(i + 2).map(|t| t.text.as_str()) != Some("cfg")
    {
        return false;
    }
    // Scan to the closing `]`, looking for a bare `test` ident.
    let mut j = i + 3;
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" | "(" => depth += 1,
            ")" => depth -= 1,
            "]" if depth == 0 => return false,
            "test" if toks[j].kind == TokKind::Ident => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Suppresses findings covered by a valid `allow_nondeterminism` comment on
/// the same line or the line directly above. Invalid annotations (missing
/// rule or reason) are surfaced as findings themselves. Returns the allows
/// that matched no finding — stale audits.
fn apply_allows(file: &str, findings: &mut Vec<Finding>, comments: &[Comment]) -> Vec<StaleAllow> {
    let mut allows: Vec<(u32, String, String)> = Vec::new(); // (line, rule, reason)
    let mut bad: Vec<Finding> = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("allow_nondeterminism") else {
            continue;
        };
        let rest = &c.text[pos + "allow_nondeterminism".len()..];
        let parsed = (|| {
            let rest = rest.trim_start();
            let inner = rest.strip_prefix('(')?;
            let close = inner.find(')')?;
            let rule = inner[..close].trim().to_string();
            let after = inner[close + 1..]
                .trim_start()
                .trim_start_matches(':')
                .trim();
            if rule.is_empty() || after.is_empty() {
                return None;
            }
            Some((rule, after.to_string()))
        })();
        match parsed {
            Some((rule, reason)) => allows.push((c.line, rule, reason)),
            None => bad.push(Finding {
                file: file.into(),
                line: c.line,
                rule: "bad-allow-annotation",
                severity: Severity::Deny,
                message: "malformed `allow_nondeterminism` annotation: expected \
                          `allow_nondeterminism(rule-name): reason`"
                    .into(),
                allowed: None,
            }),
        }
    }
    let mut used = vec![false; allows.len()];
    for f in findings.iter_mut() {
        if let Some((idx, (_, _, reason))) =
            allows.iter().enumerate().find(|(_, (line, rule, _))| {
                (*line == f.line || *line + 1 == f.line) && (rule == f.rule || rule == "*")
            })
        {
            f.allowed = Some(reason.clone());
            used[idx] = true;
        }
    }
    findings.extend(bad);
    allows
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|((line, rule, _), _)| StaleAllow {
            file: file.into(),
            line,
            rule,
        })
        .collect()
}

/// Recursively collects `.rs` files under `dir`, in sorted path order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the `src/` trees of every crate in [`LINTED_CRATES`] under
/// `workspace_root`. Returns all findings (allowed and not) in path order.
pub fn lint_workspace(workspace_root: &Path) -> std::io::Result<Vec<Finding>> {
    lint_workspace_full(workspace_root).map(|(f, _)| f)
}

/// Like [`lint_workspace`] but also returns every stale
/// `allow_nondeterminism` annotation across the linted crates.
pub fn lint_workspace_full(
    workspace_root: &Path,
) -> std::io::Result<(Vec<Finding>, Vec<StaleAllow>)> {
    let mut findings = Vec::new();
    let mut stale = Vec::new();
    let mut flow_uses = Vec::new();
    for krate in LINTED_CRATES {
        let src_dir = workspace_root.join("crates").join(krate).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src_dir, &mut files)?;
        for path in files {
            let src = std::fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(workspace_root)
                .unwrap_or(&path)
                .display()
                .to_string();
            let (f, s) = lint_source_full(&label, &src);
            findings.extend(f);
            stale.extend(s);
            flow_uses.extend(flow_edge_uses_in(&label, &src));
        }
    }
    // Both sides of a flow edge live on opposite ends of a handoff, so
    // the emit/join match is checked across the whole corpus, not per
    // file — an emitted edge name nothing ever joins dangles in every
    // trace that crosses it.
    findings.extend(rules::flow_join_findings(&flow_uses));
    Ok((findings, stale))
}

/// Collects the named flow emit/join sites of one file (test items
/// stripped), for the workspace-level flow-pairing check.
pub fn flow_edge_uses_in(file: &str, src: &str) -> Vec<rules::FlowEdgeUse> {
    let (toks, _) = lex(src);
    let (toks, _) = strip_cfg_test_with_spans(&toks);
    rules::flow_edge_uses(file, src, &toks)
}
