//! A lightweight structural parser over the lexer's token stream.
//!
//! The flow-sensitive rules need more shape than a flat token scan gives:
//! which function a token belongs to, which `impl` block a function lives
//! in, and where control flow branches and rejoins. This module recovers
//! exactly that — items, `impl` blocks, functions, and a statement tree
//! with explicit `if`/`match`/loop/`return` nodes — without attempting a
//! full Rust grammar (the environment is offline, so `syn` is not an
//! option). Expressions stay as raw token runs; the tree only materializes
//! the constructs the analyses in [`crate::cfg`] and [`crate::rules`]
//! branch on.
//!
//! Precision notes (deliberate approximations):
//!
//! - Struct literals and closure bodies at statement level parse as
//!   anonymous [`Node::Block`]s; inside argument lists they stay in their
//!   statement's leaf. Both are analyzed as straight-line code, which is
//!   sound for the pairing rules (a release inside either still counts).
//! - `else if` chains parse as an `else` branch containing a nested `If`.
//! - Nested `fn` items inside function bodies are not split out.

use crate::lexer::{TokKind, Token};

/// One parsed source file: its items, flattened through inline modules.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Free functions (including those inside inline `mod`s).
    pub fns: Vec<FnDef>,
    /// `impl` blocks with their methods.
    pub impls: Vec<ImplDef>,
}

impl ParsedFile {
    /// All functions in the file: free functions and methods, with the
    /// surrounding impl context (trait, type) when there is one.
    pub fn all_fns(&self) -> impl Iterator<Item = (Option<&ImplDef>, &FnDef)> {
        self.fns.iter().map(|f| (None, f)).chain(
            self.impls
                .iter()
                .flat_map(|i| i.fns.iter().map(move |f| (Some(i), f))),
        )
    }
}

/// An `impl` block: `impl Trait for Type { .. }` or `impl Type { .. }`.
#[derive(Debug)]
pub struct ImplDef {
    /// The trait being implemented (last path segment), if any.
    pub trait_name: Option<String>,
    /// The implementing type (last path segment before generics).
    pub type_name: String,
    /// Line of the `impl` keyword.
    pub line: u32,
    /// Methods defined in the block.
    pub fns: Vec<FnDef>,
}

/// A function definition with its parsed body.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Signature tokens between `fn` and the body `{` (args + return type).
    pub sig: Vec<Token>,
    /// The body as a statement tree.
    pub body: Vec<Node>,
}

/// One node of the statement tree.
#[derive(Debug)]
pub enum Node {
    /// A run of straight-line tokens (no control flow at this level).
    Leaf(Vec<Token>),
    /// `if cond { then } [else { els }]` (includes `if let`).
    If {
        line: u32,
        cond: Vec<Token>,
        then: Vec<Node>,
        els: Option<Vec<Node>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        line: u32,
        scrutinee: Vec<Token>,
        arms: Vec<Arm>,
    },
    /// `loop`/`while`/`for` body (the header tokens are in `head`).
    Loop {
        line: u32,
        head: Vec<Token>,
        body: Vec<Node>,
    },
    /// A bare/anonymous block: `unsafe { .. }`, struct-literal braces,
    /// closure bodies.
    Block(Vec<Node>),
    /// `return expr;` (expr tokens, possibly empty).
    Return { line: u32, toks: Vec<Token> },
}

/// One `match` arm: `pat [if guard] => body`.
#[derive(Debug)]
pub struct Arm {
    pub line: u32,
    /// Pattern tokens, including any `if` guard.
    pub pat: Vec<Token>,
    pub body: Vec<Node>,
}

/// Parses a token stream (already stripped of `#[cfg(test)]` items) into
/// items. Unrecognized constructs are skipped, never fatal: the linter
/// must degrade to fewer findings, not crash, on exotic syntax.
pub fn parse_file(toks: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    parse_items(toks, &mut out);
    out
}

fn parse_items(toks: &[Token], out: &mut ParsedFile) {
    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "fn" => {
                if let Some((f, next)) = parse_fn(toks, i) {
                    out.fns.push(f);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "impl" => {
                if let Some((im, next)) = parse_impl(toks, i) {
                    out.impls.push(im);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "mod" => {
                // Inline module: recurse into its braces so nested items
                // are collected too. `mod name;` has no body.
                let mut j = i + 1;
                while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                    j += 1;
                }
                if j < toks.len() && toks[j].text == "{" {
                    let end = match_brace(toks, j);
                    parse_items(&toks[j + 1..end], out);
                    i = end + 1;
                } else {
                    i = j + 1;
                }
            }
            _ => i += 1,
        }
    }
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Parses `fn name … { body }` starting at the `fn` keyword. Returns the
/// definition and the index one past the closing brace. Trait-method
/// declarations without bodies (`fn f();`) return a body-less def.
fn parse_fn(toks: &[Token], at: usize) -> Option<(FnDef, usize)> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = at + 2;
    // Scan to the body `{` or a terminating `;`, tracking () and <> depth
    // so `where` clauses and generic bounds don't confuse us. A `{` at
    // paren depth 0 begins the body.
    let mut paren = 0i32;
    let sig_start = j;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" if paren == 0 => {
                return Some((
                    FnDef {
                        name: name_tok.text.clone(),
                        line: toks[at].line,
                        sig: toks[sig_start..j].to_vec(),
                        body: Vec::new(),
                    },
                    j + 1,
                ));
            }
            "{" if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let end = match_brace(toks, j);
    let body = parse_block(&toks[j + 1..end]);
    Some((
        FnDef {
            name: name_tok.text.clone(),
            line: toks[at].line,
            sig: toks[sig_start..j].to_vec(),
            body,
        },
        end + 1,
    ))
}

/// Parses `impl …* { items }` starting at the `impl` keyword.
fn parse_impl(toks: &[Token], at: usize) -> Option<(ImplDef, usize)> {
    // Header: tokens between `impl` and the block `{`, at angle/paren
    // depth 0. `for` at depth 0 splits trait from type.
    let mut j = at + 1;
    let mut angle = 0i32;
    let header_start = j;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle <= 0 => break,
            ";" => return None, // `impl Trait for Type;` — not expected
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let header = &toks[header_start..j];
    let (trait_name, type_name) = split_impl_header(header);
    let end = match_brace(toks, j);
    // Collect methods inside the block.
    let mut fns = Vec::new();
    let mut k = j + 1;
    while k < end {
        if toks[k].text == "fn" {
            if let Some((f, next)) = parse_fn(toks, k) {
                fns.push(f);
                k = next;
                continue;
            }
        }
        k += 1;
    }
    Some((
        ImplDef {
            trait_name,
            type_name: type_name.unwrap_or_default(),
            line: toks[at].line,
            fns,
        },
        end + 1,
    ))
}

/// Splits an impl header into (trait, type) names: the last plain path
/// segment on each side of a depth-0 `for`, ignoring generics.
fn split_impl_header(header: &[Token]) -> (Option<String>, Option<String>) {
    let mut angle = 0i32;
    let mut for_at = None;
    for (i, t) in header.iter().enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => {
                for_at = Some(i);
                break;
            }
            _ => {}
        }
    }
    let last_segment = |toks: &[Token]| -> Option<String> {
        let mut angle = 0i32;
        let mut last = None;
        for t in toks {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ if angle == 0 && t.kind == TokKind::Ident && t.text != "dyn" => {
                    last = Some(t.text.clone());
                }
                _ => {}
            }
        }
        last
    };
    match for_at {
        Some(i) => (last_segment(&header[..i]), last_segment(&header[i + 1..])),
        None => (None, last_segment(header)),
    }
}

/// Parses a brace-less token run into a statement tree.
///
/// Control keywords and `{` only open tree nodes at paren/bracket depth 0:
/// a closure body or struct literal inside an argument list stays inside
/// its statement's leaf (the token-level scans still see it; the flow
/// engine correctly treats it as part of the straight-line run — and a
/// `return` inside such a closure is *not* an exit of the enclosing fn).
pub fn parse_block(toks: &[Token]) -> Vec<Node> {
    let mut nodes = Vec::new();
    let mut leaf: Vec<Token> = Vec::new();
    let mut i = 0usize;
    let mut depth = 0i32;
    let flush = |leaf: &mut Vec<Token>, nodes: &mut Vec<Node>| {
        if !leaf.is_empty() {
            nodes.push(Node::Leaf(std::mem::take(leaf)));
        }
    };
    while i < toks.len() {
        if depth > 0 {
            match toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            leaf.push(toks[i].clone());
            i += 1;
            continue;
        }
        match toks[i].text.as_str() {
            "(" | "[" => {
                depth += 1;
                leaf.push(toks[i].clone());
                i += 1;
            }
            "if" => {
                flush(&mut leaf, &mut nodes);
                let line = toks[i].line;
                let (cond, body_open) = scan_to_block(toks, i + 1);
                if body_open >= toks.len() {
                    break;
                }
                let then_end = match_brace(toks, body_open);
                let then = parse_block(&toks[body_open + 1..then_end]);
                let mut els = None;
                let mut next = then_end + 1;
                if toks.get(next).is_some_and(|t| t.text == "else") {
                    if toks.get(next + 1).is_some_and(|t| t.text == "if") {
                        // else-if chain: parse the rest as a nested block
                        // beginning at the inner `if`; it consumes the
                        // whole chain.
                        let (chain, consumed) = parse_prefix(&toks[next + 1..]);
                        els = Some(chain);
                        next = next + 1 + consumed;
                    } else if toks.get(next + 1).is_some_and(|t| t.text == "{") {
                        let e_end = match_brace(toks, next + 1);
                        els = Some(parse_block(&toks[next + 2..e_end]));
                        next = e_end + 1;
                    }
                }
                nodes.push(Node::If {
                    line,
                    cond,
                    then,
                    els,
                });
                i = next;
            }
            "match" => {
                flush(&mut leaf, &mut nodes);
                let line = toks[i].line;
                let (scrutinee, body_open) = scan_to_block(toks, i + 1);
                if body_open >= toks.len() {
                    break;
                }
                let end = match_brace(toks, body_open);
                let arms = parse_arms(&toks[body_open + 1..end]);
                nodes.push(Node::Match {
                    line,
                    scrutinee,
                    arms,
                });
                i = end + 1;
            }
            "while" | "for" | "loop" => {
                flush(&mut leaf, &mut nodes);
                let line = toks[i].line;
                let (head, body_open) = scan_to_block(toks, i + 1);
                if body_open >= toks.len() {
                    break;
                }
                let end = match_brace(toks, body_open);
                let body = parse_block(&toks[body_open + 1..end]);
                nodes.push(Node::Loop { line, head, body });
                i = end + 1;
            }
            "return" => {
                flush(&mut leaf, &mut nodes);
                let line = toks[i].line;
                let mut j = i + 1;
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                nodes.push(Node::Return {
                    line,
                    toks: toks[i + 1..j.min(toks.len())].to_vec(),
                });
                i = (j + 1).min(toks.len());
            }
            "{" => {
                flush(&mut leaf, &mut nodes);
                let end = match_brace(toks, i);
                nodes.push(Node::Block(parse_block(&toks[i + 1..end])));
                i = end + 1;
            }
            _ => {
                leaf.push(toks[i].clone());
                i += 1;
            }
        }
    }
    if !leaf.is_empty() {
        nodes.push(Node::Leaf(leaf));
    }
    nodes
}

/// Parses a prefix of `toks` that forms one `if …` chain (used for
/// `else if`); returns the nodes and the number of tokens consumed.
fn parse_prefix(toks: &[Token]) -> (Vec<Node>, usize) {
    // The chain is: if <cond> { .. } [else if <cond> { .. }]* [else { .. }]
    let mut i = 0usize;
    loop {
        if toks.get(i).map(|t| t.text.as_str()) != Some("if") {
            break;
        }
        let (_, body_open) = scan_to_block(toks, i + 1);
        if body_open >= toks.len() {
            i = toks.len();
            break;
        }
        let end = match_brace(toks, body_open);
        i = end + 1;
        if toks.get(i).is_some_and(|t| t.text == "else") {
            if toks.get(i + 1).is_some_and(|t| t.text == "if") {
                i += 1; // continue the chain at the next `if`
                continue;
            }
            if toks.get(i + 1).is_some_and(|t| t.text == "{") {
                let e = match_brace(toks, i + 1);
                i = e + 1;
            }
        }
        break;
    }
    (parse_block(&toks[..i.min(toks.len())]), i.min(toks.len()))
}

/// Scans from `start` to the `{` that opens the following block, skipping
/// over parenthesized/bracketed groups (and closure pipes is out of scope:
/// a `{` inside `(` depth belongs to the group). Returns the header tokens
/// and the index of the `{`.
fn scan_to_block(toks: &[Token], start: usize) -> (Vec<Token>, usize) {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    (toks[start..j.min(toks.len())].to_vec(), j)
}

/// Parses the interior of a `match` block into arms.
fn parse_arms(toks: &[Token]) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Pattern: tokens until `=>` at depth 0 (the lexer emits `=` `>`
        // as two tokens; struct patterns may contain `{ }`).
        let pat_start = i;
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0
                    && toks.get(j + 1).is_some_and(|t| t.text == ">")
                    // Not `>=`/`<=`/`==`/`!=` from a guard expression:
                    // those lex as op then `=`, so a bare `=` followed by
                    // `>` is always the arrow.
                    && toks
                        .get(j.wrapping_sub(1))
                        .is_none_or(|t| !matches!(t.text.as_str(), "<" | ">" | "=" | "!")) =>
                {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let line = toks[pat_start].line;
        let pat = toks[pat_start..arrow].to_vec();
        let mut k = arrow + 2; // past `=` `>`
        let body;
        if toks.get(k).is_some_and(|t| t.text == "{") {
            let end = match_brace(toks, k);
            body = parse_block(&toks[k + 1..end]);
            k = end + 1;
            if toks.get(k).is_some_and(|t| t.text == ",") {
                k += 1;
            }
        } else {
            // Expression arm: tokens until `,` at depth 0 (or end).
            let expr_start = k;
            let mut depth = 0i32;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            body = parse_block(&toks[expr_start..k.min(toks.len())]);
            k = (k + 1).min(toks.len());
        }
        arms.push(Arm { line, pat, body });
        i = k;
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src).0)
    }

    #[test]
    fn finds_fns_and_impls() {
        let p = parse(
            "fn free() {}
             impl Component for Switch { fn on_event(&mut self) { x(); } fn digest(&self) {} }
             impl Plain { fn helper() {} }",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.impls.len(), 2);
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("Component"));
        assert_eq!(p.impls[0].type_name, "Switch");
        assert_eq!(p.impls[0].fns.len(), 2);
        assert_eq!(p.impls[1].trait_name, None);
        assert_eq!(p.impls[1].type_name, "Plain");
    }

    #[test]
    fn generic_impl_header() {
        let p = parse("impl<T: Send> Component for Mailbox<T> { fn f(&self) {} }");
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("Component"));
        assert_eq!(p.impls[0].type_name, "Mailbox");
    }

    #[test]
    fn if_else_and_match_shape() {
        let p = parse(
            "fn f(x: u32) -> u32 {
                 if x > 1 { a(); } else if x > 0 { b(); } else { c(); }
                 match x { 0 => zero(), 1 | 2 => { low(); } _ => high(), }
                 for i in 0..x { body(i); }
                 return x;
             }",
        );
        let body = &p.fns[0].body;
        assert!(matches!(body[0], Node::If { els: Some(_), .. }));
        let Node::Match { arms, .. } = &body[1] else {
            panic!("expected match, got {:?}", body[1]);
        };
        assert_eq!(arms.len(), 3);
        assert!(matches!(body[2], Node::Loop { .. }));
        assert!(matches!(body[3], Node::Return { .. }));
    }

    #[test]
    fn struct_patterns_in_arms() {
        let p = parse(
            "fn f(fr: Frame) {
                 match fr { Frame { src, .. } => use_it(src), }
             }",
        );
        let Node::Match { arms, .. } = &p.fns[0].body[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 1);
    }

    #[test]
    fn guards_do_not_break_arm_split() {
        let p = parse("fn f(x: u32) { match x { n if n >= 2 => big(), _ => small(), } }");
        let Node::Match { arms, .. } = &p.fns[0].body[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
    }

    #[test]
    fn bodyless_trait_fn() {
        let p = parse("trait T { fn sig_only(&self); fn with_default(&self) { x(); } }");
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_empty());
        assert_eq!(p.fns[1].body.len(), 1);
    }
}
