//! CPU cost model for dense kernels: cache tiers and pollution.
//!
//! GEMV is memory-bandwidth-bound; its runtime is set by where the weight
//! matrix streams from. The evaluation CPU (AMD EPYC) has 8 MB of L2 and
//! 128 MB of L3 per the paper's Fig. 16 discussion — partitions that drop
//! under a cache boundary run super-linearly faster, which is exactly the
//! effect the figure shows. Cache *pollution* models the MPI baseline's
//! CPU-side reduction buffers evicting matrix lines between iterations,
//! versus ACCL+ keeping "all intermediate reduction data structures" in
//! FPGA memory.

use serde::{Deserialize, Serialize};

/// CPU memory-hierarchy parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuModel {
    /// L2 capacity, bytes (8 MB on the evaluation CPU).
    pub l2_bytes: u64,
    /// L3 capacity, bytes (128 MB).
    pub l3_bytes: u64,
    /// Streaming bandwidth from L2, GB/s.
    pub l2_gbps: f64,
    /// Streaming bandwidth from L3, GB/s.
    pub l3_gbps: f64,
    /// Streaming bandwidth from DRAM, GB/s.
    pub dram_gbps: f64,
    /// Peak FLOP rate of the cores driving the kernel, GFLOP/s (compute
    /// bound only for tiny matrices — GEMV is otherwise streaming-bound).
    pub gflops: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            l2_bytes: 8 << 20,
            l3_bytes: 128 << 20,
            l2_gbps: 180.0,
            l3_gbps: 90.0,
            dram_gbps: 22.0,
            gflops: 120.0,
        }
    }
}

impl CpuModel {
    /// Effective streaming bandwidth for a working set of `bytes`.
    pub fn bandwidth_gbps(&self, working_set: u64) -> f64 {
        if working_set <= self.l2_bytes {
            self.l2_gbps
        } else if working_set <= self.l3_bytes {
            self.l3_gbps
        } else {
            self.dram_gbps
        }
    }

    /// Seconds to compute `y = A x` for an `rows × cols` f32 matrix whose
    /// steady-state working set is `matrix_bytes + pollution_bytes`.
    ///
    /// `pollution_bytes` models other hot data competing for the caches
    /// (e.g. MPI's CPU-side reduction buffers); it inflates the working set
    /// used for tier selection but not the bytes streamed.
    pub fn gemv_seconds(&self, rows: usize, cols: usize, pollution_bytes: u64) -> f64 {
        let matrix_bytes = (rows * cols * 4) as u64;
        let ws = matrix_bytes + pollution_bytes;
        let bw = self.bandwidth_gbps(ws) * 1e9;
        let mem_time = matrix_bytes as f64 / bw;
        let flops = 2.0 * rows as f64 * cols as f64;
        let cpu_time = flops / (self.gflops * 1e9);
        mem_time.max(cpu_time)
    }

    /// Seconds for an elementwise vector op of `bytes` (e.g. the extra
    /// Eigen-buffer → ACCL+-buffer copy the paper mentions in §6.2).
    pub fn memcpy_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gbps(bytes) * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_select_by_working_set() {
        let m = CpuModel::default();
        assert_eq!(m.bandwidth_gbps(1 << 20), m.l2_gbps);
        assert_eq!(m.bandwidth_gbps(64 << 20), m.l3_gbps);
        assert_eq!(m.bandwidth_gbps(1 << 30), m.dram_gbps);
    }

    #[test]
    fn partitioning_across_a_boundary_is_superlinear() {
        // A 16k × 4k f32 matrix is 256 MB (DRAM); split 4 ways it is 64 MB
        // (L3): more than 4× faster.
        let m = CpuModel::default();
        let full = m.gemv_seconds(16_384, 4_096, 0);
        let quarter = m.gemv_seconds(16_384, 1_024, 0);
        assert!(full / quarter > 4.0 * 1.5, "speedup {}", full / quarter);
    }

    #[test]
    fn pollution_can_push_over_a_boundary() {
        let m = CpuModel::default();
        // 6 MB matrix fits L2 alone…
        let clean = m.gemv_seconds(1_536, 1_024, 0);
        // …but not with 4 MB of reduction buffers churning.
        let polluted = m.gemv_seconds(1_536, 1_024, 4 << 20);
        assert!(polluted > clean * 1.5, "clean={clean} polluted={polluted}");
    }

    #[test]
    fn compute_bound_regime_engages_on_slow_cores() {
        // With few FLOPs available, the FLOP term dominates the L2 term.
        let m = CpuModel {
            gflops: 5.0,
            ..CpuModel::default()
        };
        let t = m.gemv_seconds(64, 64, 0);
        let flops_time = 2.0 * 64.0 * 64.0 / (m.gflops * 1e9);
        assert!((t - flops_time).abs() / flops_time < 1e-9);
        // Default model: large matrices are DRAM-bandwidth-bound.
        let m = CpuModel::default();
        let big = m.gemv_seconds(16_384, 16_384, 0);
        let mem_time = (16_384u64 * 16_384 * 4) as f64 / (m.dram_gbps * 1e9);
        assert!((big - mem_time).abs() / mem_time < 1e-9);
    }

    #[test]
    fn gemv_time_is_monotone_in_size() {
        let m = CpuModel::default();
        let mut last = 0.0;
        for cols in [256, 1024, 4096, 16384] {
            let t = m.gemv_seconds(4096, cols, 0);
            assert!(t > last);
            last = t;
        }
    }
}
