//! # accl-linalg — dense kernels and CPU cost models
//!
//! The numeric substrate of both use cases in §6: f32 GEMV with
//! column/row/checkerboard partitioning (the distributed FC layer on CPUs)
//! and Q16.16 fixed-point kernels (the DLRM datapath on FPGAs), plus the
//! cache-tier CPU cost model that produces Fig. 16's super-linear scaling.

#![warn(missing_docs)]

pub mod cost;
pub mod dense;

pub use cost::CpuModel;
pub use dense::{block_ranges, fx, vec_add, MatF32};
