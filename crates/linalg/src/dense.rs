//! Dense matrix/vector kernels in f32 and Q16.16 fixed point.
//!
//! These are the *numeric* kernels behind both use cases: the distributed
//! CPU GEMV of §6.2 (Eigen in the paper) and the DLRM FC layers computed in
//! 32-bit fixed point on the FPGAs (§6.2, "32-bit fixed-point precision").

/// A row-major f32 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatF32 {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f32>,
}

impl MatF32 {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatF32 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generator function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        MatF32 { rows, cols, data }
    }

    /// Element access.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * 4) as u64
    }

    /// `y = A x` (matrix-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn gemv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "gemv dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        #[allow(clippy::needless_range_loop)] // r indexes both y and rows
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[r] = acc;
        }
        y
    }

    /// The column block `[c0, c1)` as a new matrix (column-partitioned
    /// distribution of §6.2: each rank owns a subset of columns).
    pub fn col_block(&self, c0: usize, c1: usize) -> MatF32 {
        assert!(c0 < c1 && c1 <= self.cols, "bad column range");
        let mut data = Vec::with_capacity(self.rows * (c1 - c0));
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
        }
        MatF32 {
            rows: self.rows,
            cols: c1 - c0,
            data,
        }
    }

    /// The row block `[r0, r1)` as a new matrix.
    pub fn row_block(&self, r0: usize, r1: usize) -> MatF32 {
        assert!(r0 < r1 && r1 <= self.rows, "bad row range");
        MatF32 {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }
}

/// Splits `n` items into `parts` contiguous ranges, remainder spread over
/// the leading parts (the standard block distribution).
pub fn block_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Elementwise vector sum, in place: `acc += v`.
pub fn vec_add(acc: &mut [f32], v: &[f32]) {
    assert_eq!(acc.len(), v.len());
    for (a, b) in acc.iter_mut().zip(v) {
        *a += b;
    }
}

/// Fixed-point (Q16.16) kernels for the DLRM datapath.
pub mod fx {
    /// A row-major Q16.16 matrix.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct MatFx {
        /// Rows.
        pub rows: usize,
        /// Columns.
        pub cols: usize,
        /// Row-major Q16.16 data.
        pub data: Vec<i32>,
    }

    /// Converts f64 to Q16.16 (saturating).
    pub fn q(v: f64) -> i32 {
        (v * 65_536.0)
            .round()
            .clamp(i32::MIN as f64, i32::MAX as f64) as i32
    }

    /// Converts Q16.16 to f64.
    pub fn fq(v: i32) -> f64 {
        v as f64 / 65_536.0
    }

    impl MatFx {
        /// Creates a matrix from a generator of `(row, col)` → f64.
        pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
            let mut data = Vec::with_capacity(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    data.push(q(f(r, c)));
                }
            }
            MatFx { rows, cols, data }
        }

        /// `y = A x` in Q16.16 with 64-bit accumulation (the hardware's
        /// DSP-cascade accumulator), saturating on output.
        ///
        /// # Panics
        ///
        /// Panics if `x.len() != cols`.
        pub fn gemv(&self, x: &[i32]) -> Vec<i32> {
            assert_eq!(x.len(), self.cols, "gemv dimension mismatch");
            let mut y = vec![0i32; self.rows];
            #[allow(clippy::needless_range_loop)] // r indexes both y and rows
            for r in 0..self.rows {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                let mut acc = 0i64;
                for (a, b) in row.iter().zip(x) {
                    acc += (i64::from(*a) * i64::from(*b)) >> 16;
                }
                y[r] = acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
            }
            y
        }

        /// The column block `[c0, c1)`.
        pub fn col_block(&self, c0: usize, c1: usize) -> MatFx {
            assert!(c0 < c1 && c1 <= self.cols);
            let mut data = Vec::with_capacity(self.rows * (c1 - c0));
            for r in 0..self.rows {
                data.extend_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
            }
            MatFx {
                rows: self.rows,
                cols: c1 - c0,
                data,
            }
        }

        /// The row block `[r0, r1)`.
        pub fn row_block(&self, r0: usize, r1: usize) -> MatFx {
            assert!(r0 < r1 && r1 <= self.rows);
            MatFx {
                rows: r1 - r0,
                cols: self.cols,
                data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
            }
        }
    }

    /// ReLU in Q16.16.
    pub fn relu(v: &mut [i32]) {
        for x in v {
            if *x < 0 {
                *x = 0;
            }
        }
    }

    /// Serializes Q16.16 values to little-endian bytes.
    pub fn to_bytes(v: &[i32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    /// Deserializes little-endian bytes to Q16.16 values.
    pub fn from_bytes(b: &[u8]) -> Vec<i32> {
        assert_eq!(b.len() % 4, 0, "misaligned fixed-point buffer");
        b.chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_matches_hand_computation() {
        let a = MatF32::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        // [0 1 2; 3 4 5] * [1 1 1] = [3, 12]
        assert_eq!(a.gemv(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!(a.gemv(&[1.0, 0.0, 0.0]), vec![0.0, 3.0]);
    }

    #[test]
    fn column_partition_sums_to_full_gemv() {
        let a = MatF32::from_fn(16, 24, |r, c| ((r * 7 + c * 3) % 13) as f32 - 6.0);
        let x: Vec<f32> = (0..24).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let full = a.gemv(&x);
        let mut acc = vec![0.0f32; 16];
        for (c0, c1) in block_ranges(24, 5) {
            let part = a.col_block(c0, c1).gemv(&x[c0..c1]);
            vec_add(&mut acc, &part);
        }
        for (f, g) in full.iter().zip(&acc) {
            assert!((f - g).abs() < 1e-4, "{f} vs {g}");
        }
    }

    #[test]
    fn row_blocks_concatenate_to_full_gemv() {
        let a = MatF32::from_fn(10, 8, |r, c| (r + c) as f32);
        let x: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let full = a.gemv(&x);
        let mut cat = Vec::new();
        for (r0, r1) in block_ranges(10, 3) {
            cat.extend(a.row_block(r0, r1).gemv(&x));
        }
        assert_eq!(full, cat);
    }

    #[test]
    fn block_ranges_cover_exactly() {
        for (n, p) in [(10, 3), (7, 7), (5, 2), (100, 8)] {
            let ranges = block_ranges(n, p);
            assert_eq!(ranges.len(), p);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[p - 1].1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn fixed_point_gemv_tracks_float() {
        let af = MatF32::from_fn(8, 16, |r, c| ((r * 5 + c) % 9) as f32 * 0.125 - 0.5);
        let ax = fx::MatFx::from_fn(8, 16, |r, c| f64::from(af.at(r, c)));
        let xf: Vec<f32> = (0..16).map(|i| (i as f32) * 0.1 - 0.8).collect();
        let xq: Vec<i32> = xf.iter().map(|&v| fx::q(f64::from(v))).collect();
        let yf = af.gemv(&xf);
        let yq = ax.gemv(&xq);
        for (f, q) in yf.iter().zip(&yq) {
            assert!(
                (f64::from(*f) - fx::fq(*q)).abs() < 1e-2,
                "float {f} vs fixed {}",
                fx::fq(*q)
            );
        }
    }

    #[test]
    fn fx_checkerboard_decomposition_is_exact() {
        // Checkerboard: row × column blocks; partials concat over rows and
        // sum over columns — the Fig. 14 structure, in fixed point.
        let a = fx::MatFx::from_fn(12, 20, |r, c| ((r * 3 + c) % 7) as f64 * 0.25 - 0.75);
        let x: Vec<i32> = (0..20).map(|i| fx::q(i as f64 * 0.05)).collect();
        let full = a.gemv(&x);
        let mut result = Vec::new();
        for (r0, r1) in block_ranges(12, 2) {
            let row_blk = a.row_block(r0, r1);
            let mut acc = vec![0i32; r1 - r0];
            for (c0, c1) in block_ranges(20, 4) {
                let part = row_blk.col_block(c0, c1).gemv(&x[c0..c1]);
                for (a, b) in acc.iter_mut().zip(&part) {
                    *a = a.saturating_add(*b);
                }
            }
            result.extend(acc);
        }
        for (f, g) in full.iter().zip(&result) {
            assert!((fx::fq(*f) - fx::fq(*g)).abs() < 1e-2);
        }
    }

    #[test]
    fn fx_bytes_roundtrip() {
        let v: Vec<i32> = (-5..5).map(|i| fx::q(f64::from(i) * 1.5)).collect();
        assert_eq!(fx::from_bytes(&fx::to_bytes(&v)), v);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut v = vec![fx::q(-1.0), fx::q(0.5), fx::q(-0.1), 0];
        fx::relu(&mut v);
        assert_eq!(v[0], 0);
        assert_eq!(v[1], fx::q(0.5));
        assert_eq!(v[2], 0);
    }
}
