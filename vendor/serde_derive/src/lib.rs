//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//! The blanket impls live in the `serde` stub, so the derives emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
