//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset of [`Bytes`] the workspace uses: cheap clones via
//! `Arc`, zero-copy `slice`/`split_to`, and `Deref<Target = [u8]>`, plus a
//! small [`BytesMut`] builder with zero-copy [`BytesMut::freeze`]. The
//! semantics match upstream for this subset; only the implementation (a
//! shared `Arc<Vec<u8>>` window) is simplified.
//!
//! `From<Vec<u8>>` is zero-copy: the vector's buffer is moved into the
//! shared allocation rather than copied, which keeps `MemStore::read` →
//! frame body → retransmit queue a single-allocation path.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice without copying.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `self` over `range` (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`]
/// without copying.
///
/// This is the gather-side counterpart of `Bytes`: assemble a message
/// from scattered pieces, then `freeze()` hands the accumulated buffer
/// to the shared allocation.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends `s` to the buffer.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts the accumulated bytes into an immutable `Bytes` (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn equality_ignores_window_offsets() {
        let a = Bytes::from(vec![9u8, 1, 2, 9]).slice(1..3);
        let b = Bytes::from(vec![1u8, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_reuses_the_allocation() {
        let v = vec![7u8; 4096];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), ptr, "From<Vec<u8>> must be zero-copy");
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(&[1, 2]);
        m.extend_from_slice(&[3]);
        assert_eq!(m.len(), 3);
        let ptr = m.as_ptr();
        let b = m.freeze();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.as_ptr(), ptr, "freeze must be zero-copy");
    }
}
