//! Minimal offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata —
//! nothing in the tree actually serializes — so the traits are markers and
//! the derives expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
