//! Minimal offline stand-in for `criterion`.
//!
//! Implements the harness surface the bench targets use — groups,
//! throughput annotations, `bench_function`/`iter` — with a simple
//! median-of-samples wall-clock measurement and plain-text reporting.
//! No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let median = run_samples(self.sample_size, self.measurement_time, f);
        report(name, median, None);
        self
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for this group.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let median = run_samples(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        report(&format!("{}/{}", self.name, id), median, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_samples(samples: usize, budget: Duration, mut f: impl FnMut(&mut Bencher)) -> Duration {
    // One calibration pass to size the hot loop against the time budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = budget.as_nanos() / samples.max(1) as u128;
    let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters as u32
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
        ),
    });
    println!(
        "bench {name:<48} {:>12.3} us{}",
        median.as_secs_f64() * 1e6,
        rate.unwrap_or_default()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(100));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
