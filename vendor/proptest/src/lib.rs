//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset the workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, integer-range / `any::<T>()` /
//! tuple / `collection::vec` strategies, `prop_assert*` macros, and an
//! explicit [`test_runner::TestRunner`]. Cases are sampled from a fixed
//! seed, so failures reproduce exactly; there is no shrinking — a failing
//! case panics with the generated inputs visible in the assert message.

use rand::rngs::StdRng;

/// A source of generated values; the stand-in for proptest's `Strategy`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;
    /// Generates one value from the given RNG.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::RngExt;
        rng.random_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A length specification: an exact length or a half-open range.
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::RngExt;
            let len = if self.size.min + 1 >= self.size.max_excl {
                self.size.min
            } else {
                rng.random_range(self.size.min..self.size.max_excl)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration and driver (`proptest::test_runner`).
pub mod test_runner {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration for a property run.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to sample.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` sampled cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Error a single test case may return to fail the property.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// Error returned by [`TestRunner::run`] when a case fails.
    #[derive(Debug)]
    pub struct TestError(pub String);

    /// Drives a strategy through `cases` samples against a property.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed seed, so runs are reproducible.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(0x5EED_CA5E),
            }
        }

        /// Samples `cases` values and applies the property to each.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                test(value).map_err(|e| TestError(format!("case {case}: {}", e.0)))?;
            }
            Ok(())
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares `#[test]` functions over sampled inputs.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])+ fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner
                    .run(&( $($strat,)+ ), |( $($arg,)+ )| {
                        $body
                        Ok(())
                    })
                    .unwrap();
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }
    }

    #[test]
    fn explicit_runner_is_deterministic() {
        let sample = || {
            let mut out = Vec::new();
            let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5));
            runner
                .run(&(0u64..1000, any::<bool>()), |(n, b)| {
                    out.push((n, b));
                    Ok(())
                })
                .unwrap();
            out
        };
        assert_eq!(sample(), sample());
    }
}
