//! Minimal offline stand-in for `rand`.
//!
//! Provides the subset the workspace uses: a seedable deterministic
//! [`rngs::StdRng`] plus the [`RngExt`] extension trait with
//! `random_bool` / `random_range`. The generator is xoshiro256** seeded
//! via SplitMix64 — statistically solid and, critically for the DES,
//! bit-for-bit reproducible for a given seed on every platform.

/// Core trait for random number sources.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Trait for RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Constructs the RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` using `bits` as entropy source.
    fn sample_range(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as u128) - (lo as u128);
                // Rejection sampling over a 64-bit draw keeps the
                // distribution exactly uniform.
                let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
                loop {
                    let v = u128::from(rng());
                    if v < zone {
                        return lo + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
                loop {
                    let v = u128::from(rng());
                    if v < zone {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Extension methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Returns `true` with probability `p` (`0.0 ..= 1.0`).
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 bits of entropy → uniform in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample_range(range.start, range.end, &mut draw)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per the
            // xoshiro reference implementation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-50..50i32);
            assert!((-50..50).contains(&v));
            let u = rng.random_range(3..17usize);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
