//! Fail-stop fault tolerance end to end: crash a rank mid-allreduce,
//! observe the typed `PeerFailed` error on the survivors, shrink the
//! communicator past the dead node (ULFM-style) and re-run the collective
//! on the survivor group.
//!
//! Run with: `cargo run --example fault_recovery [--threads N]`
//!
//! `--threads N` runs the simulator on N worker threads; the failure
//! diagnosis, the shrink and the recovered results are identical at any
//! thread count.

use acclplus::sim::prelude::Time;
use acclplus::{
    AcclCluster, AlgoConfig, BufLoc, CclError, ClusterConfig, CollOp, CollSpec, DType, HostOp,
    Transport,
};

fn main() {
    let mut threads = 1usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--threads" {
            i += 1;
            threads = argv
                .get(i)
                .and_then(|v| v.parse().ok())
                .expect("--threads needs a number");
        }
        i += 1;
    }
    let nodes = 3;
    let count = 2048u64;

    // Coyote shell + TCP offload: the connection-oriented transport is the
    // failure detector — a session whose retransmission ladder runs dry
    // marks its peer dead. Arm the engine watchdog so a stalled collective
    // aborts instead of hanging.
    let mut cfg = ClusterConfig::coyote_rdma(nodes).with_workers(threads);
    cfg.transport = Transport::Tcp;
    cfg.cclo.collective_timeout_us = Some(30_000);
    let mut cluster = AcclCluster::build(cfg);
    // Ring allreduce, so every rank exchanges data with its neighbours.
    cluster.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });

    // Rank 2 dies 1 µs in — mid-invocation, before the first data frame.
    let dead = 2usize;
    cluster.crash_node(dead, Time::from_us(1));
    println!("== node {dead} will crash at t=1µs ==");

    let per_rank = |cluster: &mut AcclCluster, node: usize, comm: u32| {
        let src = cluster.alloc(node, BufLoc::Device, count * 4);
        let dst = cluster.alloc(node, BufLoc::Device, count * 4);
        let data: Vec<u8> = (0..count as i32)
            .flat_map(|i| (i + node as i32).to_le_bytes())
            .collect();
        cluster.write(&src, &data);
        (
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst)
                .comm(comm),
            dst,
        )
    };

    // --- Attempt 1: the world allreduce hits the crash. -----------------
    let mut specs = Vec::new();
    for node in 0..nodes {
        specs.push(per_rank(&mut cluster, node, 0).0);
    }
    let records = cluster.host_collective(specs);
    let mut failed: Vec<usize> = Vec::new();
    for (rank, rec) in records.iter().enumerate() {
        match rec.result() {
            Ok(()) => println!("rank {rank}: completed (unexpected!)"),
            Err(CclError::PeerFailed(p)) => {
                println!(
                    "rank {rank}: PeerFailed({p}) at t={:?} (watchdog abort + POE diagnosis)",
                    rec.finished
                );
                failed.push(p as usize);
            }
            Err(e) => println!("rank {rank}: {e}"),
        }
    }
    failed.sort_unstable();
    failed.dedup();
    // Trust the survivors' verdicts: the dead node's own session table
    // accuses everyone it could not reach.
    assert!(failed.contains(&dead), "survivors must name the dead rank");

    // --- Recovery: shrink the world, reissue on the survivor group. -----
    let world = cluster.communicator(0).unwrap().clone();
    let survivors = world.shrink(1, &[dead]).expect("survivors remain");
    println!(
        "== shrink: communicator 1 over nodes {:?} ==",
        survivors.members()
    );
    cluster.install_communicator(&survivors);

    let mut programs: Vec<Vec<HostOp>> = vec![Vec::new(); nodes];
    let mut dsts = Vec::new();
    for &node in survivors.members() {
        let (spec, dst) = per_rank(&mut cluster, node, 1);
        programs[node] = vec![HostOp::Coll(spec)];
        dsts.push((node, dst));
    }
    let results = cluster.run_host_programs(programs);
    for &(node, dst) in &dsts {
        let rec = &results[node][0];
        rec.result().expect("reissued collective must succeed");
        let expect: Vec<u8> = (0..count as i32)
            .flat_map(|i| {
                survivors
                    .members()
                    .iter()
                    .map(|&m| i + m as i32)
                    .sum::<i32>()
                    .to_le_bytes()
            })
            .collect();
        assert_eq!(cluster.read(&dst), expect, "node {node} result");
        println!(
            "node {node}: reissued allreduce OK at t={:?}, result verified",
            rec.finished
        );
    }
    println!("== recovered: the application survived a fail-stop crash ==");
}
