//! Distributed vector-matrix multiplication (paper §6.2, Fig. 16).
//!
//! An FC layer's weight matrix is partitioned column-wise across CPU ranks;
//! each rank computes its partial product (modelled with the cache-tier CPU
//! cost model) and the partials are summed with an ACCL+ H2H reduce. The
//! run reports the compute/reduction breakdown and speedup over single-node
//! execution — including the super-linear regime when partitions drop into
//! cache.
//!
//! Run with: `cargo run --release --example distributed_gemv`

use acclplus::linalg::{block_ranges, vec_add, CpuModel, MatF32};
use acclplus::sim::time::Dur;
use acclplus::{AcclCluster, BufLoc, ClusterConfig, CollOp, CollSpec, DType, Program, ReduceFn};

fn main() {
    let cpu = CpuModel::default();
    let (m, n) = (4096usize, 4096usize); // 64 MB of f32 weights
    println!(
        "FC layer {m}x{n} ({} MB); L2 = {} MB, L3 = {} MB",
        (m * n * 4) >> 20,
        cpu.l2_bytes >> 20,
        cpu.l3_bytes >> 20
    );

    // Numeric ground truth on a small slice (the full matrix's timing is
    // modelled; the mathematics is exercised for real on a sample).
    let sample = MatF32::from_fn(64, 128, |r, c| ((r * 31 + c * 7) % 17) as f32 - 8.0);
    let x: Vec<f32> = (0..128).map(|i| (i as f32) * 0.01).collect();
    let full = sample.gemv(&x);
    let mut acc = vec![0.0f32; 64];
    for (c0, c1) in block_ranges(128, 4) {
        vec_add(&mut acc, &sample.col_block(c0, c1).gemv(&x[c0..c1]));
    }
    assert!(full.iter().zip(&acc).all(|(a, b)| (a - b).abs() < 1e-3));
    println!("column-partitioned GEMV verified against the monolithic kernel\n");

    let single_us = cpu.gemv_seconds(m, n, 0) * 1e6;
    println!("single-node GEMV: {single_us:.0} us");
    println!(
        "{:>5}  {:>12} {:>12} {:>9}",
        "ranks", "compute(us)", "reduce(us)", "speedup"
    );
    for ranks in [2usize, 4, 8] {
        let mut cluster = AcclCluster::build(ClusterConfig::coyote_rdma(ranks));
        let result_bytes = (m * 4) as u64;
        let gemv = Dur::from_us_f64(cpu.gemv_seconds(m, n / ranks, 0) * 1e6);
        let copy = Dur::from_us_f64(cpu.memcpy_seconds(result_bytes) * 1e6);
        let mut programs = Vec::new();
        for node in 0..ranks {
            let src = cluster.alloc(node, BufLoc::Host, result_bytes);
            let dst = cluster.alloc(node, BufLoc::Host, result_bytes);
            cluster.write(&src, &vec![1u8; result_bytes as usize]);
            programs.push(
                Program::new()
                    .compute(gemv)
                    .compute(copy) // Eigen buffer -> ACCL+ buffer
                    .coll(
                        CollSpec::new(CollOp::Reduce, result_bytes / 4, DType::I32)
                            .src(src)
                            .dst(dst)
                            .func(ReduceFn::Sum),
                    )
                    .build(),
            );
        }
        let records = cluster.run_host_programs(programs);
        let compute = records
            .iter()
            .map(|r| r[0].finished.since(r[0].started).as_us_f64())
            .fold(0.0, f64::max);
        let end = records.iter().map(|r| r[2].finished).max().unwrap();
        let after = records.iter().map(|r| r[0].finished).max().unwrap();
        let reduce = end.since(after).as_us_f64();
        let speedup = single_us / (compute + reduce);
        let note = if speedup > ranks as f64 {
            "  <- super-linear"
        } else {
            ""
        };
        println!("{ranks:>5}  {compute:>12.0} {reduce:>12.0} {speedup:>8.2}x{note}");
    }
}
