//! Dump a Perfetto-loadable causal trace of an 8-rank allreduce.
//!
//! Builds the Coyote+RDMA cluster with span tracing enabled, runs one
//! device-data allreduce through the host drivers, and writes:
//!
//!  - `<outdir>/allreduce.trace.json` — Chrome/Perfetto `trace_event`
//!    JSON; load it at `ui.perfetto.dev` (or `chrome://tracing`) to see
//!    every rank's driver, uC, datapath, POE and fabric activity on one
//!    causally linked timeline, and
//!  - `<outdir>/allreduce.breakdown.txt` — per-rank latency attribution
//!    (wire / switch-queue / pcie / uc / datapath / other) whose shares
//!    partition each call's end-to-end time exactly.
//!
//! Run with: `cargo run --release --features trace --example trace_dump
//! [outdir] [--threads N]`
//!
//! `--threads N` runs the simulator on N worker threads; the trace, the
//! breakdown tables and every assertion below are identical at any
//! thread count.

use acclplus::sim::trace::max_span_depth;
use acclplus::{AcclCluster, BufLoc, ClusterConfig, CollOp, CollSpec, DType, ReduceFn};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn from_i32s(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn main() {
    let mut outdir = "trace_dump_out".to_string();
    let mut threads = 1usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--threads" {
            i += 1;
            threads = argv
                .get(i)
                .and_then(|v| v.parse().ok())
                .expect("--threads needs a number");
        } else {
            outdir = argv[i].clone();
        }
        i += 1;
    }
    let n = 8;
    let count = 4096u64;
    let mut cluster = AcclCluster::build(ClusterConfig::coyote_rdma(n).with_workers(threads));
    cluster.enable_tracing(1 << 20);

    // Device-resident buffers: the FPGA-native data path (no staging).
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for rank in 0..n {
        let src = cluster.alloc(rank, BufLoc::Device, count * 4);
        let dst = cluster.alloc(rank, BufLoc::Device, count * 4);
        let data: Vec<i32> = (0..count as i32).map(|i| i + rank as i32 * 1000).collect();
        cluster.write(&src, &i32s(&data));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst)
                .func(ReduceFn::Sum),
        );
        dsts.push(dst);
    }
    let records = cluster.host_collective(specs);

    // The trace must describe a *correct* run.
    let expect: Vec<i32> = (0..count as i32)
        .map(|i| (0..n as i32).map(|r| i + r * 1000).sum())
        .collect();
    for (rank, dst) in dsts.iter().enumerate() {
        assert_eq!(from_i32s(&cluster.read(dst)), expect, "rank {rank}");
    }

    let events = cluster.trace_events();
    assert_eq!(cluster.sim.spans_dropped(), 0, "span ring too small");
    let depth = max_span_depth(&events);
    assert!(
        depth >= 5,
        "expected >= 5 causal span depths (driver -> uC -> stage -> POE -> link), got {depth}"
    );

    std::fs::create_dir_all(&outdir).expect("create output dir");
    let json_path = format!("{outdir}/allreduce.trace.json");
    std::fs::write(&json_path, cluster.chrome_trace()).expect("write trace JSON");

    let breakdowns = cluster.latency_breakdowns();
    assert_eq!(breakdowns.len(), n, "one breakdown per rank");
    let mut table = String::new();
    for (rank, b) in breakdowns.iter().enumerate() {
        // The attribution is an exact partition of the call's wall time.
        assert_eq!(b.attributed(), b.total(), "rank {rank} shares must sum");
        table.push_str(&b.table(&format!(
            "rank {rank}: allreduce {count} x i32, total {}",
            b.total()
        )));
        table.push('\n');
    }
    let table_path = format!("{outdir}/allreduce.breakdown.txt");
    std::fs::write(&table_path, &table).expect("write breakdown table");

    println!(
        "traced {} span events across {n} ranks (max depth {depth})",
        events.len()
    );
    for (rank, r) in records.iter().enumerate() {
        let b = r.breakdown.unwrap();
        println!(
            "  rank {rank}: invoke {:>6.2} us | collective {:>7.2} us | total {:>7.2} us",
            b.invoke.as_us_f64(),
            b.collective.as_us_f64(),
            b.total.as_us_f64()
        );
    }
    print!("{table}");
    println!("wrote {json_path} and {table_path}");
}
