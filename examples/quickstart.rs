//! Quickstart: build a simulated FPGA cluster and run collectives.
//!
//! Mirrors the paper's H2H usage: CPU applications call the MPI-like API
//! through the host CCL driver, and the CCLO engines on the FPGAs execute
//! the collectives over 100 Gb/s RDMA with Coyote's unified memory.
//!
//! Run with: `cargo run --release --example quickstart`

use acclplus::{AcclCluster, BufLoc, ClusterConfig, CollOp, CollSpec, DType, ReduceFn};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn from_i32s(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn main() {
    // A 4-node cluster: each node is a CPU + FPGA pair on a switched
    // 100 Gb/s fabric, running the Coyote platform with the RDMA POE.
    let n = 4;
    let count = 1024u64;
    let mut cluster = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    println!("built a {n}-node Coyote+RDMA cluster");

    // Each rank contributes a vector; all-reduce sums them everywhere.
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for rank in 0..n {
        let src = cluster.alloc(rank, BufLoc::Host, count * 4);
        let dst = cluster.alloc(rank, BufLoc::Host, count * 4);
        let data: Vec<i32> = (0..count as i32).map(|i| i + rank as i32 * 1000).collect();
        cluster.write(&src, &i32s(&data));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst)
                .func(ReduceFn::Sum),
        );
        dsts.push(dst);
    }
    let records = cluster.host_collective(specs);

    // Verify against the obvious reference.
    let expect: Vec<i32> = (0..count as i32)
        .map(|i| (0..n as i32).map(|r| i + r * 1000).sum())
        .collect();
    for (rank, dst) in dsts.iter().enumerate() {
        assert_eq!(from_i32s(&cluster.read(dst)), expect, "rank {rank}");
    }
    println!("allreduce of {count} i32 across {n} ranks: verified");
    for (rank, r) in records.iter().enumerate() {
        let b = r.breakdown.unwrap();
        println!(
            "  rank {rank}: invoke {:>6.2} us | collective {:>7.2} us | total {:>7.2} us",
            b.invoke.as_us_f64(),
            b.collective.as_us_f64(),
            b.total.as_us_f64()
        );
    }

    // The same API runs any collective; a barrier for good measure.
    let specs = (0..n)
        .map(|_| CollSpec::new(CollOp::Barrier, 0, DType::U8))
        .collect();
    cluster.host_collective(specs);
    println!(
        "barrier: all ranks synchronized at t = {}",
        cluster.sim.now()
    );
}
