//! Distributed DLRM inference on 10 simulated FPGAs (paper §6, Fig. 15/17).
//!
//! The Table 2 model — 100 embedding tables, a 3200-long concatenated
//! feature vector, FC layers (2048, 512, 256) in Q16.16 fixed point — is
//! decomposed per Fig. 15: embeddings + FC1 checkerboard across 8 FPGAs, a
//! chain reduction of the 8 KB partials, FC2 and FC3 on dedicated nodes.
//! All inter-node traffic flows through ACCL+ streaming collectives and is
//! verified against the reference model at every hop.
//!
//! Run with: `cargo run --release --example dlrm_inference`

use acclplus::dlrm::{run_pipeline, CpuDlrmModel, DlrmConfig, DlrmModel, DlrmTiming};

fn main() {
    let cfg = DlrmConfig {
        rows_per_table: 64, // scaled table contents; dimensions per Table 2
        ..DlrmConfig::default()
    };
    println!(
        "model: {} tables x {}-dim, concat {}, FC ({},{},{}), fixed point Q16.16",
        cfg.tables,
        cfg.embed_dim,
        cfg.concat_len(),
        cfg.fc_dims[0],
        cfg.fc_dims[1],
        cfg.fc_dims[2]
    );
    println!(
        "full-scale embeddings would be ~{:.0} GB — 4x a U55C's HBM, hence the distribution",
        DlrmConfig::full_scale_embed_bytes(3_900_000) as f64 / 1e9
    );

    let model = DlrmModel::generate(cfg, 42);

    // Single-inference check: the decomposed pipeline computes exactly the
    // monolithic reference.
    let trace = model.pipeline_trace(0);
    assert_eq!(trace.fc3_out, model.infer(0));
    println!(
        "decomposed == monolithic inference verified ({} outputs)\n",
        trace.fc3_out.len()
    );

    // Run 30 pipelined inferences across the 10 simulated FPGAs.
    let result = run_pipeline(&model, DlrmTiming::default(), 30);
    println!(
        "10-FPGA pipeline: latency {:.1} us, steady-state throughput {:.0} inf/s",
        result.latency_us(),
        result.throughput()
    );
    println!(
        "({} inter-node messages carried real fixed-point data, all verified)",
        result.verified_messages
    );

    // The CPU baseline (TF-Serving class) for contrast.
    let cpu = CpuDlrmModel::default();
    println!("\nCPU baseline (32-vCPU Xeon model):");
    for batch in [1u64, 16, 256] {
        println!(
            "  batch {batch:>3}: latency {:>6.2} ms, throughput {:>5.0} inf/s",
            cpu.batch_latency_s(&cfg, batch) * 1e3,
            cpu.throughput(&cfg, batch)
        );
    }
    let best_cpu = cpu.throughput(&cfg, 256);
    println!(
        "\nhardware advantage: {:.0}x lower latency (vs batch=1), {:.1}x higher throughput",
        cpu.batch_latency_s(&cfg, 1) * 1e6 / result.latency_us(),
        result.throughput() / best_cpu
    );
}
