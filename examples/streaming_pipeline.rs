//! Streaming collectives between FPGA kernels (paper Listing 2, F2F mode).
//!
//! Three FPGA kernels form a processing pipeline with *no memory buffers*:
//! a producer streams data straight into its CCLO with a streaming send,
//! a middle kernel receives a stream, transforms it, and forwards it, and a
//! sink consumes the result — the communication pattern the paper's
//! streaming API exists for.
//!
//! Run with: `cargo run --release --example streaming_pipeline`

use bytes::Bytes;

use acclplus::{AcclCluster, ClusterConfig, CollOp, CollSpec, DType, KernelOp};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn from_i32s(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn main() {
    let count = 4096u64;
    let bytes = count * 4;
    let mut cluster = AcclCluster::build(ClusterConfig::coyote_rdma(3));

    // The producer kernel "computes" a vector and streams it out
    // (cclo.send + data.push + finalize, per Listing 2).
    let produced: Vec<i32> = (0..count as i32).map(|i| i * 3 - 1000).collect();
    let producer = vec![
        KernelOp::Issue(
            CollSpec::new(CollOp::Send, count, DType::I32)
                .root(1)
                .tag(1),
        ),
        KernelOp::Push(Bytes::from(i32s(&produced))),
        KernelOp::Finalize,
    ];

    // The middle kernel receives the stream, squares each element
    // (pre-computed here — kernels are dataflow graphs, the wire carries
    // the real values), and forwards.
    let transformed: Vec<i32> = produced.iter().map(|v| v.wrapping_mul(*v)).collect();
    let middle = vec![
        KernelOp::Issue(
            CollSpec::new(CollOp::Recv, count, DType::I32)
                .root(0)
                .tag(1),
        ),
        KernelOp::Expect(bytes),
        KernelOp::Finalize,
        KernelOp::Compute(acclplus::sim::time::Dur::from_us(10)), // transform stage
        KernelOp::Issue(
            CollSpec::new(CollOp::Send, count, DType::I32)
                .root(2)
                .tag(2),
        ),
        KernelOp::Push(Bytes::from(i32s(&transformed))),
        KernelOp::Finalize,
    ];

    // The sink receives the final stream.
    let sink = vec![
        KernelOp::Issue(
            CollSpec::new(CollOp::Recv, count, DType::I32)
                .root(1)
                .tag(2),
        ),
        KernelOp::Expect(bytes),
        KernelOp::Finalize,
    ];

    let kernels = cluster.run_kernel_programs(vec![producer, middle, sink]);

    // Verify the middle saw the producer's stream and the sink saw the
    // transformed stream — all moved as real bytes, never through memory.
    assert_eq!(from_i32s(&cluster.kernel(kernels[1]).received()), produced);
    assert_eq!(
        from_i32s(&cluster.kernel(kernels[2]).received()),
        transformed
    );
    let done = cluster.kernel(kernels[2]).finished_at().unwrap();
    println!(
        "3-stage streaming pipeline moved {bytes} B/stage end-to-end in {:.1} us",
        done.as_us_f64()
    );
    println!("no staging buffers, no host involvement after kernel start");
}
