//! User-defined collectives without re-synthesis (paper §4.4.4).
//!
//! The CCLO's collectives are firmware: this example implements a
//! **reduce-broadcast-max** ("all-max-to-all") collective from scratch,
//! validates it with the abstract schedule interpreter — the workflow the
//! paper's simulation platform enables — and then hot-loads it into every
//! engine of a live cluster and runs it, no "re-synthesis" (recompilation
//! of the engine) involved.
//!
//! Run with: `cargo run --release --example custom_collective`

use std::sync::Arc;

use acclplus::cclo::command::DataLoc;
use acclplus::cclo::firmware::interp::{Interp, RankState};
use acclplus::cclo::firmware::{CollectiveProgram, FirmwareTable, FwEnv, Place, Sched};
use acclplus::{AcclCluster, BufLoc, ClusterConfig, CollOp, CollSpec, DType, ReduceFn};

/// A star-shaped allreduce: everyone sends to rank 0, which folds with the
/// configured function and broadcasts the result back. Not bandwidth
/// optimal — the point is that it is *user firmware*, not engine code.
struct StarAllReduce;

impl CollectiveProgram for StarAllReduce {
    fn name(&self) -> &str {
        "star_allreduce"
    }

    fn build(&self, env: &FwEnv, s: &mut Sched) {
        let len = env.bytes;
        if len == 0 || env.size == 1 {
            s.copy(Place::src(0), Place::dst(0), len);
            return;
        }
        if env.rank == 0 {
            // Fold every contribution, then fan the result back out.
            let mut acc = Place::src(0);
            for peer in 1..env.size {
                s.recv_combine(peer, acc, Place::dst(0), len, u64::from(peer));
                s.wait_all();
                acc = Place::dst(0);
            }
            for peer in 1..env.size {
                s.send(peer, Place::dst(0), len, 1000 + u64::from(peer));
            }
        } else {
            s.send(0, Place::src(0), len, u64::from(env.rank));
            s.recv(0, Place::dst(0), len, 1000 + u64::from(env.rank));
        }
    }
}

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn main() {
    let n = 5u32;
    let count = 256u64;

    // Step 1: validate the schedule functionally with the interpreter
    // (no hardware, no timing — the development loop of §4.2).
    let mut table = FirmwareTable::empty();
    table.load(CollOp::Custom(0), Arc::new(StarAllReduce));
    let mk_env = |rank: u32| FwEnv {
        rank,
        size: n,
        count,
        dtype: DType::I32,
        func: ReduceFn::Max,
        root: 0,
        bytes: count * 4,
        eager: true,
        algorithm: acclplus::Algorithm::Linear,
        src: DataLoc::Mem(acclplus::mem::MemAddr::Virt(0)),
        dst: DataLoc::Mem(acclplus::mem::MemAddr::Virt(0)),
    };
    let schedules: Vec<_> = (0..n)
        .map(|r| table.schedule(CollOp::Custom(0), &mk_env(r)))
        .collect();
    let states: Vec<RankState> = (0..n)
        .map(|r| {
            let vals: Vec<i32> = (0..count as i32).map(|i| i * (r as i32 + 1) % 97).collect();
            RankState::with_src(i32s(&vals), (count * 4) as usize)
        })
        .collect();
    let out = Interp::new(&mk_env(0), schedules, states)
        .run()
        .expect("schedule must be deadlock-free");
    let expect: Vec<i32> = (0..count as i32)
        .map(|i| (0..n as i32).map(|r| i * (r + 1) % 97).max().unwrap())
        .collect();
    for (r, st) in out.iter().enumerate() {
        assert_eq!(st.dst, i32s(&expect), "interpreter rank {r}");
    }
    println!("interpreter: star_allreduce(MAX) verified on {n} ranks");

    // Step 2: hot-load the firmware into a live cluster and run it for
    // real — commands, engines, network, memory, the lot.
    let mut cluster = AcclCluster::build(ClusterConfig::coyote_rdma(n as usize));
    cluster.load_firmware(CollOp::Custom(0), Arc::new(StarAllReduce));
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for rank in 0..n as usize {
        let src = cluster.alloc(rank, BufLoc::Device, count * 4);
        let dst = cluster.alloc(rank, BufLoc::Device, count * 4);
        let vals: Vec<i32> = (0..count as i32)
            .map(|i| i * (rank as i32 + 1) % 97)
            .collect();
        cluster.write(&src, &i32s(&vals));
        specs.push(
            CollSpec::new(CollOp::Custom(0), count, DType::I32)
                .src(src)
                .dst(dst)
                .func(ReduceFn::Max),
        );
        dsts.push(dst);
    }
    let records = cluster.host_collective(specs);
    for (rank, dst) in dsts.iter().enumerate() {
        assert_eq!(cluster.read(dst), i32s(&expect), "engine rank {rank}");
    }
    let slowest = records
        .iter()
        .map(|r| r.breakdown.unwrap().collective.as_us_f64())
        .fold(0.0, f64::max);
    println!("engines: custom collective executed in {slowest:.1} us — no re-synthesis required");
}
