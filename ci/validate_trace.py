#!/usr/bin/env python3
"""Structural validation of a Chrome/Perfetto trace_event JSON file.

Offline check (stdlib only, no network): verifies the shape that
ui.perfetto.dev / chrome://tracing require of the JSON Object Format —
a `traceEvents` array whose entries carry the mandatory fields with the
right types, plus the repo-specific expectations for a multi-rank
allreduce trace (several processes, both complete and instant events,
driver-root span names present).

Usage: validate_trace.py <trace.json> [--min-events N]
"""

import json
import sys

ALLOWED_PHASES = {"B", "E", "X", "i", "I", "M"}
REQUIRED_NAMES = {"driver.coll", "uc.call", "net.wire"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    args = sys.argv[1:]
    min_events = 100
    if "--min-events" in args:
        at = args.index("--min-events")
        min_events = int(args[at + 1])
        del args[at : at + 2]
    if len(args) != 1:
        fail("usage: validate_trace.py <trace.json> [--min-events N]")

    with open(args[0]) as f:
        doc = json.load(f)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents must be an array")

    names, pids, phases = set(), set(), set()
    span_events = 0
    for i, e in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in e:
                fail(f"event {i} missing required field {field!r}: {e}")
        ph = e["ph"]
        if ph not in ALLOWED_PHASES:
            fail(f"event {i} has unknown phase {ph!r}")
        phases.add(ph)
        if not isinstance(e["pid"], int) or not isinstance(e["tid"], int):
            fail(f"event {i}: pid/tid must be integers: {e}")
        if ph == "M":
            continue  # metadata events carry no timestamp
        span_events += 1
        names.add(e["name"])
        pids.add(e["pid"])
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: ts must be a non-negative number, got {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i}: X event needs non-negative dur, got {dur!r}")

    if span_events < min_events:
        fail(f"only {span_events} span events (expected >= {min_events})")
    if "X" not in phases:
        fail("no complete ('X') events — begin/end pairing broke")
    if len(pids) < 2:
        fail(f"expected a multi-rank trace, saw pids {sorted(pids)}")
    missing = REQUIRED_NAMES - names
    if missing:
        fail(f"required span names absent: {sorted(missing)}")

    print(
        f"validate_trace: OK: {span_events} events, {len(pids)} processes, "
        f"{len(names)} span names, phases {sorted(phases)}"
    )


if __name__ == "__main__":
    main()
