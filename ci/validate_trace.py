#!/usr/bin/env python3
"""Structural validation of a Chrome/Perfetto trace_event JSON file.

Offline check (stdlib only, no network): verifies the shape that
ui.perfetto.dev / chrome://tracing require of the JSON Object Format —
a `traceEvents` array whose entries carry the mandatory fields with the
right types, plus the repo-specific expectations for a multi-rank
allreduce trace (several processes, both complete and instant events,
driver-root span names present).

Usage: validate_trace.py <trace.json> [--min-events N]
"""

import json
import sys

ALLOWED_PHASES = {"B", "E", "X", "i", "I", "M", "s", "f"}
REQUIRED_NAMES = {"driver.coll", "uc.call", "net.wire"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    args = sys.argv[1:]
    min_events = 100
    if "--min-events" in args:
        at = args.index("--min-events")
        min_events = int(args[at + 1])
        del args[at : at + 2]
    if len(args) != 1:
        fail("usage: validate_trace.py <trace.json> [--min-events N]")

    with open(args[0]) as f:
        doc = json.load(f)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents must be an array")

    names, pids, phases = set(), set(), set()
    flow_starts, flow_finishes = {}, {}
    span_events = 0
    for i, e in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in e:
                fail(f"event {i} missing required field {field!r}: {e}")
        ph = e["ph"]
        if ph not in ALLOWED_PHASES:
            fail(f"event {i} has unknown phase {ph!r}")
        phases.add(ph)
        if not isinstance(e["pid"], int) or not isinstance(e["tid"], int):
            fail(f"event {i}: pid/tid must be integers: {e}")
        if ph == "M":
            continue  # metadata events carry no timestamp
        span_events += 1
        names.add(e["name"])
        pids.add(e["pid"])
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: ts must be a non-negative number, got {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i}: X event needs non-negative dur, got {dur!r}")
        if ph in ("s", "f"):
            flow_id = e.get("id")
            if not isinstance(flow_id, str) or not flow_id:
                fail(f"event {i}: flow event needs a string id, got {flow_id!r}")
            if ph == "f" and e.get("bp") != "e":
                fail(f"event {i}: flow finish must bind to enclosing slice (bp='e')")
            side = flow_starts if ph == "s" else flow_finishes
            if flow_id in side:
                fail(f"event {i}: duplicate flow {ph!r} for id {flow_id}")
            side[flow_id] = (e["name"], ts)

    if span_events < min_events:
        fail(f"only {span_events} span events (expected >= {min_events})")
    if "X" not in phases:
        fail("no complete ('X') events — begin/end pairing broke")
    if len(pids) < 2:
        fail(f"expected a multi-rank trace, saw pids {sorted(pids)}")
    missing = REQUIRED_NAMES - names
    if missing:
        fail(f"required span names absent: {sorted(missing)}")

    # Flow arrows must pair: every start ('s') has exactly one finish
    # ('f') with the same id and name, and no finish floats free. An
    # unpaired start means a Tx-side handoff whose Rx side never joined.
    unpaired = sorted(set(flow_starts) - set(flow_finishes))
    if unpaired:
        fail(f"{len(unpaired)} flow starts without a finish: {unpaired[:5]}")
    orphaned = sorted(set(flow_finishes) - set(flow_starts))
    if orphaned:
        fail(f"{len(orphaned)} flow finishes without a start: {orphaned[:5]}")
    for flow_id, (name, start_ts) in flow_starts.items():
        fin_name, fin_ts = flow_finishes[flow_id]
        if fin_name != name:
            fail(f"flow {flow_id}: start name {name!r} != finish name {fin_name!r}")
        if fin_ts < start_ts:
            fail(f"flow {flow_id}: finish ts {fin_ts} precedes start ts {start_ts}")

    print(
        f"validate_trace: OK: {span_events} events, {len(pids)} processes, "
        f"{len(names)} span names, {len(flow_starts)} flows, "
        f"phases {sorted(phases)}"
    )


if __name__ == "__main__":
    main()
