#!/usr/bin/env python3
"""Gate the simulator kernel's sustained dispatch rate against a reference.

Compares two sets of `BENCH_simcore.json` files — reference runs vs.
candidate runs — taking the best events/sec per workload on each side
(best-of-N masks scheduler noise; the tracked quantity is the machine's
capability, not its worst moment). Fails if the candidate's sustained
dispatch workload regresses by more than the tolerance.

Only `chain_1m_events` (sustained dispatch) gates: it is the longest,
steadiest workload and the one the observability PR's zero-overhead
contract is written against. The other workloads are reported for
context — short runs swing tens of percent with CPU frequency state, so
gating on them would be flaky, not strict.

Usage:
  check_simcore_regression.py --ref ref1.json [ref2.json ...] \
      --cur cur1.json [cur2.json ...] [--tolerance 0.02]
"""

import json
import sys

GATED = "chain_1m_events"


def best(files):
    rates = {}
    for path in files:
        with open(path) as f:
            cur = json.load(f)["current"]
        for name, row in cur.items():
            rate = float(row["events_per_sec"])
            if rate > rates.get(name, 0.0):
                rates[name] = rate
    return rates


def main():
    argv = sys.argv[1:]
    tol = 0.02
    refs, curs, bucket = [], [], None
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--ref":
            bucket = refs
        elif a == "--cur":
            bucket = curs
        elif a == "--tolerance":
            i += 1
            tol = float(argv[i])
        elif bucket is not None:
            bucket.append(a)
        else:
            sys.exit(f"unexpected argument {a!r} (see --help in the docstring)")
        i += 1
    if not refs or not curs:
        sys.exit("need at least one --ref file and one --cur file")

    ref, cur = best(refs), best(curs)
    failed = False
    for name in sorted(ref):
        if name not in cur:
            sys.exit(f"candidate runs are missing workload {name!r}")
        ratio = cur[name] / ref[name]
        gate = name == GATED
        verdict = ""
        if gate:
            if ratio < 1.0 - tol:
                verdict = f"  << FAIL (allowed regression {tol:.0%})"
                failed = True
            else:
                verdict = "  (gated: OK)"
        print(
            f"{name:26s} ref {ref[name]:>12,.0f}  cur {cur[name]:>12,.0f}  "
            f"ratio {ratio:5.3f}{verdict}"
        )
    if failed:
        sys.exit(1)
    print(f"check_simcore_regression: OK ({GATED} within {tol:.0%} of reference)")


if __name__ == "__main__":
    main()
