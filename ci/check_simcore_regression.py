#!/usr/bin/env python3
"""Gate the simulator kernel's sustained dispatch rate against a reference.

Compares two sets of `BENCH_simcore.json` files — reference runs vs.
candidate runs — taking the best events/sec per workload on each side
(best-of-N masks scheduler noise; the tracked quantity is the machine's
capability, not its worst moment). Fails if the candidate's sustained
dispatch workload regresses by more than the tolerance.

Only `chain_1m_events` (sustained dispatch) gates: it is the longest,
steadiest workload and the one the observability PR's zero-overhead
contract is written against. The other workloads are reported for
context — short runs swing tens of percent with CPU frequency state, so
gating on them would be flaky, not strict.

Two refinements over raw wall-clock comparison:

 - `parallel_scaling` rows are reported only when the run's recorded
   `host_cpus` exceeds 1 on both sides. On a single-core host the >1
   worker rows measure engine overhead, not scaling, and comparing them
   is noise dressed up as signal.
 - When both sides carry a `critical_path` section (sim-time
   critical-path digests per workload, produced by `accl-obs`), the
   gated workload is compared by digest equality instead of wall-clock
   ratio: equal digests mean the simulated timeline is bit-identical, so
   the run cannot have regressed in sim time no matter what the host
   clock says; unequal digests fail loudly because the timeline itself
   changed. Wall-clock gating remains the fallback when digests are
   absent.

Usage:
  check_simcore_regression.py --ref ref1.json [ref2.json ...] \
      --cur cur1.json [cur2.json ...] [--tolerance 0.02]
"""

import json
import sys

GATED = "chain_1m_events"


def collect(files):
    """Best events/sec per workload, parallel rows, and digests."""
    rates, parallel, digests = {}, {}, {}
    for path in files:
        with open(path) as f:
            doc = json.load(f)
        for name, row in doc["current"].items():
            rate = float(row["events_per_sec"])
            if rate > rates.get(name, 0.0):
                rates[name] = rate
        scaling = doc.get("parallel_scaling", {})
        host_cpus = int(scaling.get("host_cpus", 0) or 0)
        if host_cpus > 1:
            for key, row in scaling.items():
                if not key.startswith("workers_"):
                    continue
                rate = float(row["events_per_sec"])
                if rate > parallel.get(key, 0.0):
                    parallel[key] = rate
        for name, digest in doc.get("critical_path", {}).items():
            prior = digests.setdefault(name, digest)
            if prior != digest:
                sys.exit(
                    f"{path}: critical-path digest for {name!r} disagrees "
                    f"across same-side runs ({prior} vs {digest}) — the "
                    f"workload is nondeterministic, fix that first"
                )
    return rates, parallel, digests


def main():
    argv = sys.argv[1:]
    tol = 0.02
    refs, curs, bucket = [], [], None
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--ref":
            bucket = refs
        elif a == "--cur":
            bucket = curs
        elif a == "--tolerance":
            i += 1
            tol = float(argv[i])
        elif bucket is not None:
            bucket.append(a)
        else:
            sys.exit(f"unexpected argument {a!r} (see --help in the docstring)")
        i += 1
    if not refs or not curs:
        sys.exit("need at least one --ref file and one --cur file")

    (ref, ref_par, ref_dig) = collect(refs)
    (cur, cur_par, cur_dig) = collect(curs)
    failed = False
    digest_gated = GATED in ref_dig and GATED in cur_dig
    for name in sorted(ref):
        if name not in cur:
            sys.exit(f"candidate runs are missing workload {name!r}")
        ratio = cur[name] / ref[name]
        gate = name == GATED
        verdict = ""
        if gate and digest_gated:
            if ref_dig[GATED] == cur_dig[GATED]:
                verdict = "  (gated by digest: identical timeline, OK)"
            else:
                verdict = (
                    f"  << FAIL (critical-path digest changed: "
                    f"{ref_dig[GATED]} -> {cur_dig[GATED]})"
                )
                failed = True
        elif gate:
            if ratio < 1.0 - tol:
                verdict = f"  << FAIL (allowed regression {tol:.0%})"
                failed = True
            else:
                verdict = "  (gated: OK)"
        print(
            f"{name:26s} ref {ref[name]:>12,.0f}  cur {cur[name]:>12,.0f}  "
            f"ratio {ratio:5.3f}{verdict}"
        )
    # Ungated digests still report drift: a changed timeline on an
    # ungated workload is worth a loud line even when it doesn't fail.
    for name in sorted(set(ref_dig) & set(cur_dig)):
        if name == GATED and digest_gated:
            continue
        same = ref_dig[name] == cur_dig[name]
        state = "identical" if same else f"CHANGED {ref_dig[name]} -> {cur_dig[name]}"
        print(f"{name:26s} critical-path digest: {state}")
    if ref_par and cur_par:
        for key in sorted(ref_par):
            if key not in cur_par:
                continue
            ratio = cur_par[key] / ref_par[key]
            print(
                f"parallel {key:17s} ref {ref_par[key]:>12,.0f}  "
                f"cur {cur_par[key]:>12,.0f}  ratio {ratio:5.3f}"
            )
    else:
        print(
            "parallel_scaling: skipped (host_cpus <= 1 on at least one side; "
            "multi-worker rows measure overhead, not scaling, on one core)"
        )
    if failed:
        sys.exit(1)
    how = "digest-identical" if digest_gated else f"within {tol:.0%} of reference"
    print(f"check_simcore_regression: OK ({GATED} {how})")


if __name__ == "__main__":
    main()
