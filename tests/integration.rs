//! Cross-crate integration tests: the full stack (driver → CCLO → POE →
//! fabric → memory) exercised across platforms, transports, protocols and
//! failure conditions.

#![allow(clippy::needless_range_loop)] // rank loops index parallel spec/buffer arrays

use acclplus::net::FaultPlan;
use acclplus::{
    AcclCluster, AlgoConfig, BufLoc, ClusterConfig, CollOp, CollSpec, DType, ReduceFn, SyncProto,
};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(rank: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count as i32)
            .map(|i| i * 7 + rank as i32 * 131)
            .collect::<Vec<_>>(),
    )
}

fn summed(n: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count as i32)
            .map(|i| (0..n as i32).map(|r| i * 7 + r * 131).sum())
            .collect::<Vec<_>>(),
    )
}

/// Every evaluated platform/transport combination runs the same allreduce
/// and produces identical (correct) results.
#[test]
fn allreduce_across_all_configurations() {
    let n = 4;
    let count = 2048u64;
    let expect = summed(n, count);
    for (name, cfg, loc) in [
        (
            "coyote+rdma/device",
            ClusterConfig::coyote_rdma(n),
            BufLoc::Device,
        ),
        (
            "coyote+rdma/host",
            ClusterConfig::coyote_rdma(n),
            BufLoc::Host,
        ),
        ("xrt+tcp/device", ClusterConfig::xrt_tcp(n), BufLoc::Device),
        (
            "xrt+tcp/host(staged)",
            ClusterConfig::xrt_tcp(n),
            BufLoc::Host,
        ),
        ("xrt+udp/device", ClusterConfig::xrt_udp(n), BufLoc::Device),
        (
            "legacy-accl+tcp/device",
            ClusterConfig::legacy_accl_tcp(n),
            BufLoc::Device,
        ),
    ] {
        let mut c = AcclCluster::build(cfg);
        let mut specs = Vec::new();
        let mut dsts = Vec::new();
        for rank in 0..n {
            let src = c.alloc(rank, loc, count * 4);
            let dst = c.alloc(rank, loc, count * 4);
            c.write(&src, &pattern(rank, count));
            specs.push(
                CollSpec::new(CollOp::AllReduce, count, DType::I32)
                    .src(src)
                    .dst(dst),
            );
            dsts.push(dst);
        }
        c.host_collective(specs);
        for (rank, dst) in dsts.iter().enumerate() {
            assert_eq!(c.read(dst), expect, "{name} rank {rank}");
        }
    }
}

/// TCP collectives survive random frame loss on the fabric — the
/// retransmission machinery under a full collective workload.
#[test]
fn tcp_collectives_survive_packet_loss() {
    let n = 4;
    let count = 8192u64;
    let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n));
    // 2% random loss, deterministic per the cluster seed.
    let plan = FaultPlan::random_loss(0.02);
    let net = c.network();
    let switch = net.switch_id();
    c.sim
        .component_mut::<acclplus::net::Switch>(switch)
        .set_fault_plan(plan);
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for rank in 0..n {
        let src = c.alloc(rank, BufLoc::Device, count * 4);
        let dst = c.alloc(rank, BufLoc::Device, count * 4);
        c.write(&src, &pattern(rank, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    c.host_collective(specs);
    let expect = summed(n, count);
    for (rank, dst) in dsts.iter().enumerate() {
        assert_eq!(c.read(dst), expect, "rank {rank} after loss");
    }
    assert!(
        c.network().frames_dropped(&c.sim) > 0,
        "the fault plan must actually have dropped frames"
    );
}

/// Identical seeds produce identical timelines; different seeds (with
/// randomized faults) diverge.
#[test]
fn simulation_is_deterministic() {
    let run = |seed: u64| -> (u64, f64) {
        let mut c = AcclCluster::build(ClusterConfig {
            seed,
            ..ClusterConfig::coyote_rdma(3)
        });
        let count = 1024;
        let mut specs = Vec::new();
        for rank in 0..3 {
            let src = c.alloc(rank, BufLoc::Device, count * 4);
            let dst = c.alloc(rank, BufLoc::Device, count * 4);
            c.write(&src, &pattern(rank, count));
            specs.push(
                CollSpec::new(CollOp::AllReduce, count, DType::I32)
                    .src(src)
                    .dst(dst),
            );
        }
        let records = c.host_collective(specs);
        (
            c.sim.events_executed(),
            records
                .iter()
                .map(|r| r.finished.as_us_f64())
                .fold(0.0, f64::max),
        )
    };
    let (e1, t1) = run(77);
    let (e2, t2) = run(77);
    assert_eq!(e1, e2);
    assert_eq!(t1, t2);
}

/// Runtime algorithm tuning (paper §4.4.4) changes measured behaviour:
/// forcing the tree threshold low makes small reduces use the tree.
#[test]
fn runtime_algorithm_tuning_changes_latency() {
    let n = 8;
    let count = 32 * 1024u64; // 128 KB
    let run = |tree_min: u64| -> f64 {
        let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
        c.set_algo_config(AlgoConfig {
            tree_min_bytes: tree_min,
            ..AlgoConfig::default()
        });
        let mut specs = Vec::new();
        for rank in 0..n {
            let src = c.alloc(rank, BufLoc::Device, count * 4);
            let dst = c.alloc(rank, BufLoc::Device, count * 4);
            c.write(&src, &pattern(rank, count));
            specs.push(
                CollSpec::new(CollOp::Reduce, count, DType::I32)
                    .src(src)
                    .dst(dst)
                    .sync(SyncProto::Rendezvous),
            );
        }
        let records = c.host_collective(specs);
        records
            .iter()
            .map(|r| r.breakdown.unwrap().collective.as_us_f64())
            .fold(0.0, f64::max)
    };
    let all_to_one = run(1 << 20); // threshold high → all-to-one
    let tree = run(1); // threshold tiny → binary tree
    assert!(
        (all_to_one - tree).abs() / all_to_one > 0.05,
        "algorithm switch must be measurable: {all_to_one} vs {tree}"
    );
}

/// Mixed datatype/function coverage through the full engine path.
#[test]
fn reduce_functions_and_dtypes() {
    let n = 3;
    let count = 512u64;
    for (dtype, func) in [
        (DType::I32, ReduceFn::Max),
        (DType::I32, ReduceFn::Min),
        (DType::F32, ReduceFn::Sum),
        (DType::I64, ReduceFn::Sum),
    ] {
        let esize = dtype.size() as u64;
        let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
        let mut specs = Vec::new();
        let mut srcs_data = Vec::new();
        let mut dst0 = None;
        for rank in 0..n {
            let src = c.alloc(rank, BufLoc::Device, count * esize);
            let dst = c.alloc(rank, BufLoc::Device, count * esize);
            let data: Vec<u8> = match dtype {
                DType::F32 => (0..count)
                    .flat_map(|i| ((i as f32) * 0.5 + rank as f32).to_le_bytes())
                    .collect(),
                DType::I64 => (0..count)
                    .flat_map(|i| ((i as i64) - 100 * rank as i64).to_le_bytes())
                    .collect(),
                _ => (0..count)
                    .flat_map(|i| ((i as i32) * (rank as i32 + 1) % 89).to_le_bytes())
                    .collect(),
            };
            c.write(&src, &data);
            srcs_data.push(data);
            specs.push(
                CollSpec::new(CollOp::Reduce, count, dtype)
                    .src(src)
                    .dst(dst)
                    .func(func),
            );
            if rank == 0 {
                dst0 = Some(dst);
            }
        }
        c.host_collective(specs);
        let expect = acclplus::cclo::plugins::combine_all(
            dtype,
            func,
            srcs_data.iter().map(|v| v.as_slice()),
        );
        assert_eq!(
            c.read(&dst0.unwrap()),
            expect.to_vec(),
            "{dtype:?} {func:?}"
        );
    }
}

/// The whole collective surface on one cluster build, back to back —
/// exercises FIFO command queues, tag namespaces and scratch reuse.
#[test]
fn collective_suite_back_to_back() {
    let n = 4;
    let count = 256u64;
    let b = (count * 4) as usize;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    // allgather
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    let mut srcs = Vec::new();
    for rank in 0..n {
        let src = c.alloc(rank, BufLoc::Device, count * 4);
        let dst = c.alloc(rank, BufLoc::Device, count * 4 * n as u64);
        c.write(&src, &pattern(rank, count));
        specs.push(
            CollSpec::new(CollOp::AllGather, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        srcs.push(src);
        dsts.push(dst);
    }
    c.host_collective(specs);
    let expect: Vec<u8> = (0..n).flat_map(|r| pattern(r, count)).collect();
    for (rank, dst) in dsts.iter().enumerate() {
        assert_eq!(c.read(dst), expect, "allgather rank {rank}");
    }
    // reduce_scatter over fresh buffers on the same cluster
    let mut specs = Vec::new();
    let mut rs_dsts = Vec::new();
    for rank in 0..n {
        let src = c.alloc(rank, BufLoc::Device, count * 4 * n as u64);
        let dst = c.alloc(rank, BufLoc::Device, count * 4);
        c.write(&src, &pattern(rank, count * n as u64));
        specs.push(
            CollSpec::new(CollOp::ReduceScatter, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        rs_dsts.push(dst);
    }
    c.host_collective(specs);
    let full = summed(n, count * n as u64);
    for (rank, dst) in rs_dsts.iter().enumerate() {
        assert_eq!(
            c.read(dst),
            full[rank * b..(rank + 1) * b].to_vec(),
            "rs rank {rank}"
        );
    }
}

/// Eager pool exhaustion is survivable: a fan-in of many eager messages to
/// one rank completes even with a tiny Rx pool (admission queueing).
#[test]
fn eager_pool_exhaustion_recovers() {
    let n = 6;
    let count = 1024u64;
    let mut cfg = ClusterConfig::coyote_rdma(n);
    cfg.cclo.rx_buf_count = 2;
    let mut c = AcclCluster::build(cfg);
    let mut specs = Vec::new();
    let mut dst0 = None;
    for rank in 0..n {
        let src = c.alloc(rank, BufLoc::Device, count * 4);
        let dst = c.alloc(rank, BufLoc::Device, count * 4 * n as u64);
        c.write(&src, &pattern(rank, count));
        specs.push(
            CollSpec::new(CollOp::Gather, count, DType::I32)
                .src(src)
                .dst(dst)
                .sync(SyncProto::Eager),
        );
        if rank == 0 {
            dst0 = Some(dst);
        }
    }
    c.host_collective(specs);
    let expect: Vec<u8> = (0..n).flat_map(|r| pattern(r, count)).collect();
    assert_eq!(c.read(&dst0.unwrap()), expect);
}

/// Ten nodes — the paper's cluster scale — running a full mix.
#[test]
fn ten_node_mixed_workload() {
    let n = 10;
    let count = 512u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    for op in [CollOp::Bcast, CollOp::AllReduce, CollOp::AllToAll] {
        let mut specs = Vec::new();
        let mut handles = Vec::new();
        for rank in 0..n {
            let (src_len, dst_len) = match op {
                CollOp::AllToAll => (count * 4 * n as u64, count * 4 * n as u64),
                _ => (count * 4, count * 4),
            };
            let src = c.alloc(rank, BufLoc::Device, src_len);
            let dst = c.alloc(rank, BufLoc::Device, dst_len);
            c.write(&src, &pattern(rank, src_len / 4));
            if op == CollOp::Bcast && rank == 0 {
                c.write(&dst, &pattern(99, count));
            }
            let mut s = CollSpec::new(op, count, DType::I32).src(src).dst(dst);
            if op == CollOp::Bcast {
                s.src = None;
            }
            specs.push(s);
            handles.push(dst);
        }
        c.host_collective(specs);
        match op {
            CollOp::Bcast => {
                for (rank, dst) in handles.iter().enumerate() {
                    assert_eq!(c.read(dst), pattern(99, count), "bcast rank {rank}");
                }
            }
            CollOp::AllReduce => {
                let expect = summed(n, count);
                for dst in &handles {
                    assert_eq!(c.read(dst), expect);
                }
            }
            _ => {
                let b = (count * 4) as usize;
                for (rank, dst) in handles.iter().enumerate() {
                    let got = c.read(dst);
                    for from in 0..n {
                        assert_eq!(
                            &got[from * b..(from + 1) * b],
                            &pattern(from, count * n as u64)[rank * b..(rank + 1) * b],
                            "alltoall rank {rank} from {from}"
                        );
                    }
                }
            }
        }
    }
}

/// Sub-communicators: two disjoint groups run independent allreduces on
/// the same cluster, each over its own rank space (MPI communicator
/// semantics on the engine's configuration memory).
#[test]
fn sub_communicators_run_independently() {
    let n = 6;
    let count = 512u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    let evens: Vec<usize> = (0..n).filter(|x| x % 2 == 0).collect();
    let odds: Vec<usize> = (0..n).filter(|x| x % 2 == 1).collect();
    c.add_communicator(1, &evens);
    c.add_communicator(2, &odds);
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Device, count * 4);
        let dst = c.alloc(node, BufLoc::Device, count * 4);
        // Group-specific payloads: evens contribute +1000s, odds -1000s.
        let bias = if node % 2 == 0 { 1000 } else { -1000 };
        c.write(
            &src,
            &i32s(
                &(0..count as i32)
                    .map(|i| i + bias * (node as i32 / 2 + 1))
                    .collect::<Vec<_>>(),
            ),
        );
        let comm = if node % 2 == 0 { 1 } else { 2 };
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst)
                .comm(comm),
        );
        dsts.push(dst);
    }
    c.host_collective(specs);
    let expect = |bias: i32| -> Vec<u8> {
        i32s(
            &(0..count as i32)
                .map(|i| (0..3).map(|g| i + bias * (g + 1)).sum())
                .collect::<Vec<_>>(),
        )
    };
    for node in 0..n {
        let want = if node % 2 == 0 {
            expect(1000)
        } else {
            expect(-1000)
        };
        assert_eq!(c.read(&dsts[node]), want, "node {node}");
    }
}
