//! Property-based tests (proptest) over the core invariants:
//! collective algorithms, reliable transport, reassembly, plugins,
//! allocators and framing.

use proptest::prelude::*;

use acclplus::cclo::command::{CollOp, DataLoc};
use acclplus::cclo::firmware::interp::{Interp, RankState};
use acclplus::cclo::firmware::{FirmwareTable, FwEnv};
use acclplus::cclo::msg::{MsgSignature, MsgType, SIGNATURE_BYTES};
use acclplus::cclo::plugins;
use acclplus::{Algorithm, DType, ReduceFn};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Any reduce configuration — size, root, count, protocol, algorithm —
/// produces the exact elementwise sum.
fn reduce_property(
    size: u32,
    root: u32,
    count: u64,
    eager: bool,
    algorithm: Algorithm,
    seeds: Vec<i32>,
) {
    let table = FirmwareTable::stock();
    let srcs: Vec<Vec<u8>> = (0..size)
        .map(|r| {
            i32s(
                &(0..count)
                    .map(|i| seeds[r as usize].wrapping_mul(i as i32 + 1))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let mk_env = |rank: u32| FwEnv {
        rank,
        size,
        count,
        dtype: DType::I32,
        func: ReduceFn::Sum,
        root,
        bytes: count * 4,
        eager,
        algorithm,
        src: DataLoc::Mem(acclplus::mem::MemAddr::Virt(0)),
        dst: DataLoc::Mem(acclplus::mem::MemAddr::Virt(0)),
    };
    let schedules: Vec<_> = (0..size)
        .map(|r| table.schedule(CollOp::Reduce, &mk_env(r)))
        .collect();
    let states: Vec<RankState> = srcs
        .iter()
        .map(|s| RankState::with_src(s.clone(), (count * 4) as usize))
        .collect();
    let out = Interp::new(&mk_env(0), schedules, states)
        .run()
        .expect("no deadlock");
    let expect = plugins::combine_all(DType::I32, ReduceFn::Sum, srcs.iter().map(|v| v.as_slice()));
    assert_eq!(out[root as usize].dst, expect.to_vec());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_reduce_always_sums(
        size in 2u32..10,
        root_raw in 0u32..10,
        count in 1u64..64,
        eager in any::<bool>(),
        algo_idx in 0usize..3,
        seeds in proptest::collection::vec(-1000i32..1000, 10),
    ) {
        let root = root_raw % size;
        let algorithm = [Algorithm::Ring, Algorithm::OneToAll, Algorithm::BinaryTree][algo_idx];
        reduce_property(size, root, count, eager, algorithm, seeds);
    }

    #[test]
    fn prop_allgather_concatenates(
        size in 2u32..9,
        count in 1u64..48,
        eager in any::<bool>(),
        seed in any::<i32>(),
    ) {
        let table = FirmwareTable::stock();
        let srcs: Vec<Vec<u8>> = (0..size)
            .map(|r| i32s(&(0..count).map(|i| seed ^ (r as i32 * 7919 + i as i32)).collect::<Vec<_>>()))
            .collect();
        let mk_env = |rank: u32| FwEnv {
            rank, size, count,
            dtype: DType::I32, func: ReduceFn::Sum, root: 0,
            bytes: count * 4, eager, algorithm: Algorithm::Ring,
            src: DataLoc::Mem(acclplus::mem::MemAddr::Virt(0)),
            dst: DataLoc::Mem(acclplus::mem::MemAddr::Virt(0)),
        };
        let schedules: Vec<_> = (0..size).map(|r| table.schedule(CollOp::AllGather, &mk_env(r))).collect();
        let states: Vec<RankState> = srcs.iter()
            .map(|s| RankState::with_src(s.clone(), (count * 4 * u64::from(size)) as usize))
            .collect();
        let out = Interp::new(&mk_env(0), schedules, states).run().expect("no deadlock");
        let expect: Vec<u8> = srcs.concat();
        for st in &out {
            prop_assert_eq!(&st.dst, &expect);
        }
    }

    #[test]
    fn prop_signature_roundtrips(
        src_rank in any::<u32>(),
        dst_rank in any::<u32>(),
        mtype_idx in 0u8..3,
        payload_len in any::<u64>(),
        tag in any::<u64>(),
        seq in any::<u64>(),
        addr in any::<u64>(),
        comm in any::<u32>(),
    ) {
        let mtype = [MsgType::Eager, MsgType::RndzvInit, MsgType::RndzvDone][mtype_idx as usize];
        let sig = MsgSignature { src_rank, dst_rank, mtype, payload_len, tag, seq, addr, comm };
        let wire = sig.encode();
        prop_assert_eq!(wire.len(), SIGNATURE_BYTES);
        prop_assert_eq!(MsgSignature::decode(&wire), sig);
    }

    #[test]
    fn prop_combine_sum_is_commutative_and_linear(
        a in proptest::collection::vec(any::<i32>(), 1..64),
        b_seed in any::<i32>(),
    ) {
        let b: Vec<i32> = a.iter().map(|v| v.wrapping_add(b_seed)).collect();
        let ab = plugins::combine(DType::I32, ReduceFn::Sum, &i32s(&a), &i32s(&b));
        let ba = plugins::combine(DType::I32, ReduceFn::Sum, &i32s(&b), &i32s(&a));
        prop_assert_eq!(&ab, &ba);
        // Elementwise: ab[i] == a[i] + b[i] (wrapping).
        for (i, chunk) in ab.chunks_exact(4).enumerate() {
            let v = i32::from_le_bytes(chunk.try_into().unwrap());
            prop_assert_eq!(v, a[i].wrapping_add(b[i]));
        }
    }

    #[test]
    fn prop_max_min_bracket_inputs(
        a in proptest::collection::vec(any::<i32>(), 1..64),
        b in proptest::collection::vec(any::<i32>(), 1..64),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mx = plugins::combine(DType::I32, ReduceFn::Max, &i32s(a), &i32s(b));
        let mn = plugins::combine(DType::I32, ReduceFn::Min, &i32s(a), &i32s(b));
        for i in 0..n {
            let vmx = i32::from_le_bytes(mx[i*4..i*4+4].try_into().unwrap());
            let vmn = i32::from_le_bytes(mn[i*4..i*4+4].try_into().unwrap());
            prop_assert_eq!(vmx, a[i].max(b[i]));
            prop_assert_eq!(vmn, a[i].min(b[i]));
            prop_assert!(vmn <= vmx);
        }
    }

    #[test]
    fn prop_rle_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let packed = plugins::unary(plugins::UnaryFn::RleCompress, &data);
        let unpacked = plugins::unary(plugins::UnaryFn::RleDecompress, &packed);
        prop_assert_eq!(&unpacked[..], &data[..]);
    }

    #[test]
    fn prop_addr_space_never_overlaps(
        ops in proptest::collection::vec((1u64..10_000, 0u8..4), 1..40),
    ) {
        let mut space = acclplus::mem::AddrSpace::new(0x1000, 1 << 22);
        let mut live: Vec<acclplus::mem::Region> = Vec::new();
        for (len, action) in ops {
            if action == 0 && !live.is_empty() {
                let r = live.remove(len as usize % live.len());
                space.free(r);
            } else if let Some(r) = space.alloc(len, 64) {
                for other in &live {
                    prop_assert!(
                        r.end() <= other.addr || other.end() <= r.addr,
                        "overlap: {:?} vs {:?}", r, other
                    );
                }
                live.push(r);
            }
        }
    }

    #[test]
    fn prop_pipe_reservations_are_fifo_and_additive(
        sizes in proptest::collection::vec(1u64..100_000, 1..50),
    ) {
        use acclplus::sim::pipe::Pipe;
        use acclplus::sim::time::Time;
        let mut p = Pipe::gbps(100.0);
        let mut last_end = Time::ZERO;
        let mut total = 0u64;
        for s in &sizes {
            let (start, end) = p.reserve(Time::ZERO, *s);
            prop_assert!(start >= last_end || last_end == Time::ZERO || start == last_end);
            prop_assert!(end > start);
            last_end = end;
            total += s;
        }
        prop_assert_eq!(p.bytes_moved(), total);
        // Total busy time equals the serialization time of the total bytes.
        let expect = acclplus::sim::time::Dur::for_bytes_gbps(total, 100.0);
        let diff = p.busy_time().as_ps().abs_diff(expect.as_ps());
        // Rounding is at most 1 ps per reservation.
        prop_assert!(diff <= sizes.len() as u64);
    }
}

/// TCP delivers exactly-once, in-order, under arbitrary drop patterns —
/// the crown-jewel reliability property, at the POE level.
#[test]
fn prop_tcp_survives_arbitrary_loss_patterns() {
    use acclplus::net::{FaultPlan, NetConfig, Network};
    use acclplus::poe::iface::{
        ports, PoeRxMeta, PoeTxCmd, PoeTxDone, RxChunk, SessionId, SessionTable, StreamChunk,
        TxKind,
    };
    use acclplus::poe::tcp::{TcpConfig, TcpPoe};
    use acclplus::poe::PoeUpward;
    use acclplus::sim::prelude::*;
    use bytes::Bytes;

    let mut runner = proptest::test_runner::TestRunner::new(ProptestConfig::with_cases(24));
    runner
        .run(
            &(proptest::collection::vec(0u64..200, 0..24), 1usize..80_000),
            |(drops, len)| {
                let mut sim = Simulator::new(9);
                let net = Network::build(&mut sim, NetConfig::default(), 2);
                let mut poes = Vec::new();
                let mut datas = Vec::new();
                for i in 0..2 {
                    let meta = sim.add(format!("m{i}"), Mailbox::<PoeRxMeta>::new());
                    let data = sim.add(format!("d{i}"), Mailbox::<RxChunk>::new());
                    let done = sim.add(format!("x{i}"), Mailbox::<PoeTxDone>::new());
                    let mut sessions = SessionTable::new();
                    sessions.connect(
                        SessionId(1 - i as u32),
                        net.addr(1 - i),
                        SessionId(i as u32),
                    );
                    let poe = sim.add(
                        format!("tcp{i}"),
                        TcpPoe::new(
                            TcpConfig::default(),
                            net.tx(i),
                            PoeUpward {
                                rx_meta: Endpoint::of(meta),
                                rx_data: Endpoint::of(data),
                                tx_done: Endpoint::of(done),
                            },
                            sessions,
                        ),
                    );
                    net.attach_rx(&mut sim, i, Endpoint::new(poe, ports::NET_RX));
                    poes.push(poe);
                    datas.push(data);
                }
                net.set_fault_plan(&mut sim, FaultPlan::drop_frames(drops));
                let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                sim.post(
                    Endpoint::new(poes[0], ports::TX_CMD),
                    Time::ZERO,
                    PoeTxCmd {
                        session: SessionId(1),
                        len: len as u64,
                        kind: TxKind::Send,
                        tag: 0,
                        span: acclplus::sim::trace::SpanId::NONE,
                    },
                );
                sim.post(
                    Endpoint::new(poes[0], ports::TX_DATA),
                    Time::ZERO,
                    StreamChunk {
                        data: Bytes::from(payload.clone()),
                        last: true,
                    },
                );
                sim.run();
                let mut got = vec![0u8; len];
                let mut total = 0usize;
                for (_, c) in sim.component::<Mailbox<RxChunk>>(datas[1]).items() {
                    got[c.offset as usize..c.offset as usize + c.data.len()]
                        .copy_from_slice(&c.data);
                    total += c.data.len();
                }
                assert_eq!(total, len, "exactly-once delivery");
                assert_eq!(got, payload, "in-order, uncorrupted");
                Ok(())
            },
        )
        .unwrap();
}

/// RDMA SEND delivery is complete and correct under wire reordering
/// (delayed frames) with small token windows forcing credit round trips.
#[test]
fn prop_rdma_survives_reordering_with_tight_tokens() {
    use acclplus::net::{FaultPlan, NetConfig, Network};
    use acclplus::poe::iface::{
        ports, PoeRxMeta, PoeTxCmd, PoeTxDone, RxChunk, SessionId, SessionTable, StreamChunk,
        TxKind,
    };
    use acclplus::poe::rdma::{RdmaConfig, RdmaPoe};
    use acclplus::poe::PoeUpward;
    use acclplus::sim::prelude::*;
    use acclplus::sim::time::Dur as SimDur;
    use bytes::Bytes;

    let mut runner = proptest::test_runner::TestRunner::new(ProptestConfig::with_cases(16));
    runner
        .run(
            &(
                proptest::collection::vec(0u64..120, 0..12),
                1usize..60_000,
                2u32..16,
            ),
            |(delays, len, window)| {
                let mut sim = Simulator::new(11);
                let net = Network::build(&mut sim, NetConfig::default(), 2);
                let cfg = RdmaConfig {
                    token_window: window,
                    credit_batch: (window / 2).max(1),
                    ..RdmaConfig::default()
                };
                let mut poes = Vec::new();
                let mut datas = Vec::new();
                for i in 0..2 {
                    let meta = sim.add(format!("m{i}"), Mailbox::<PoeRxMeta>::new());
                    let data = sim.add(format!("d{i}"), Mailbox::<RxChunk>::new());
                    let done = sim.add(format!("x{i}"), Mailbox::<PoeTxDone>::new());
                    let mut sessions = SessionTable::new();
                    sessions.connect(
                        SessionId(1 - i as u32),
                        net.addr(1 - i),
                        SessionId(i as u32),
                    );
                    let poe = sim.add(
                        format!("rdma{i}"),
                        RdmaPoe::new(
                            cfg,
                            net.tx(i),
                            PoeUpward {
                                rx_meta: Endpoint::of(meta),
                                rx_data: Endpoint::of(data),
                                tx_done: Endpoint::of(done),
                            },
                            sessions,
                        ),
                    );
                    net.attach_rx(&mut sim, i, Endpoint::new(poe, ports::NET_RX));
                    poes.push(poe);
                    datas.push(data);
                }
                net.set_fault_plan(
                    &mut sim,
                    FaultPlan::delay_frames(delays, SimDur::from_us(20)),
                );
                let payload: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
                sim.post(
                    Endpoint::new(poes[0], ports::TX_CMD),
                    Time::ZERO,
                    PoeTxCmd {
                        session: SessionId(1),
                        len: len as u64,
                        kind: TxKind::Send,
                        tag: 0,
                        span: acclplus::sim::trace::SpanId::NONE,
                    },
                );
                sim.post(
                    Endpoint::new(poes[0], ports::TX_DATA),
                    Time::ZERO,
                    StreamChunk {
                        data: Bytes::from(payload.clone()),
                        last: true,
                    },
                );
                sim.run();
                let mut got = vec![0u8; len];
                let mut total = 0usize;
                for (_, c) in sim.component::<Mailbox<RxChunk>>(datas[1]).items() {
                    got[c.offset as usize..c.offset as usize + c.data.len()]
                        .copy_from_slice(&c.data);
                    total += c.data.len();
                }
                assert_eq!(total, len, "complete delivery despite reordering");
                assert_eq!(got, payload);
                Ok(())
            },
        )
        .unwrap();
}
