//! # acclplus — an FPGA-based collective engine, reproduced in Rust
//!
//! A full reproduction of **"ACCL+: an FPGA-Based Collective Engine for
//! Distributed Applications" (OSDI 2024)** as a deterministic discrete-event
//! simulation: the CCLO collective engine (firmware-driven control plane,
//! microcoded data plane), UDP/TCP/RDMA protocol offload engines, Coyote and
//! Vitis/XRT platform models, a packet-level 100 Gb/s switched fabric, a
//! software-MPI baseline, and the paper's two use cases (distributed GEMV
//! and 10-FPGA DLRM inference).
//!
//! This crate is the facade: it re-exports every layer. Start with
//! [`AcclCluster`] and the examples:
//!
//! ```
//! use acclplus::{AcclCluster, BufLoc, ClusterConfig, CollOp, CollSpec, DType};
//!
//! // Two FPGA nodes on a simulated 100 Gb/s fabric (Coyote + RDMA).
//! let mut cluster = AcclCluster::build(ClusterConfig::coyote_rdma(2));
//! let src = cluster.alloc(0, BufLoc::Device, 1024);
//! let dst = cluster.alloc(1, BufLoc::Device, 1024);
//! cluster.write(&src, &[42u8; 1024]);
//! cluster.host_collective(vec![
//!     CollSpec::new(CollOp::Send, 256, DType::I32).root(1).src(src),
//!     CollSpec::new(CollOp::Recv, 256, DType::I32).root(0).dst(dst),
//! ]);
//! assert_eq!(cluster.read(&dst), vec![42u8; 1024]);
//! ```

#![warn(missing_docs)]

pub use accl_core::driver::CollSpec;
pub use accl_core::host::{HostOp, Program};
pub use accl_core::kernel::KernelOp;
pub use accl_core::{
    AcclCluster, AlgoConfig, Algorithm, BufLoc, BufferHandle, CclError, CcloConfig, ClusterConfig,
    CollOp, CollectiveProgram, Communicator, DType, Platform, ReduceFn, RetryPolicy, SyncProto,
    Transport,
};

/// The CCLO engine internals (firmware, DMP, RBM, Tx/Rx).
pub use accl_cclo as cclo;
/// The public driver layer.
pub use accl_core as core_api;
/// The DLRM use case.
pub use accl_dlrm as dlrm;
/// Dense kernels and CPU cost models.
pub use accl_linalg as linalg;
/// The memory substrate (host/device, TLB, XDMA).
pub use accl_mem as mem;
/// The packet-level network substrate.
pub use accl_net as net;
/// The protocol offload engines.
pub use accl_poe as poe;
/// FPGA resource accounting.
pub use accl_resource as resource;
/// The discrete-event simulation kernel.
pub use accl_sim as sim;
/// The software-MPI baseline.
pub use accl_swmpi as swmpi;
